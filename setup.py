"""Legacy setup shim for environments whose setuptools lacks PEP 517 wheels."""

from setuptools import setup

setup()
