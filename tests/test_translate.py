"""Unit tests for the tr translation and the mod/incl/ownExcl macros."""

import pytest

from repro.errors import VerificationError
from repro.logic.nnf import FreshNames
from repro.logic.terms import (
    App,
    Const,
    Eq,
    FalseF,
    Forall,
    IntLit,
    Not,
    Or,
    Pred,
    TrueF,
    Var,
)
from repro.oolong.ast import Designator
from repro.oolong.parser import parse_expression
from repro.vcgen.translate import (
    TranslationContext,
    incl_formula,
    mod_formula,
    own_excl_formula,
    tr_designator_prefix,
    tr_formula,
    tr_term,
    welldef_premises,
)
from repro.vcgen.vocab import NULL, TRUE_CONST, attr_const, entry_store, sel

S0 = entry_store()


def ctx_with(*names):
    return TranslationContext(env={name: Const(name) for name in names})


class TestTrTerm:
    def test_constants(self):
        ctx = ctx_with()
        assert tr_term(parse_expression("null"), S0, ctx) == NULL
        assert tr_term(parse_expression("true"), S0, ctx) == TRUE_CONST
        assert tr_term(parse_expression("7"), S0, ctx) == IntLit(7)

    def test_variable_lookup(self):
        ctx = ctx_with("t")
        assert tr_term(parse_expression("t"), S0, ctx) == Const("t")

    def test_unbound_variable_raises(self):
        with pytest.raises(VerificationError):
            tr_term(parse_expression("ghost"), S0, ctx_with())

    def test_field_access_becomes_sel(self):
        ctx = ctx_with("t")
        term = tr_term(parse_expression("t.f"), S0, ctx)
        assert term == sel(S0, Const("t"), attr_const("f"))

    def test_nested_field_access(self):
        ctx = ctx_with("t")
        term = tr_term(parse_expression("t.c.d"), S0, ctx)
        inner = sel(S0, Const("t"), attr_const("c"))
        assert term == sel(S0, inner, attr_const("d"))

    def test_arithmetic(self):
        ctx = ctx_with("x")
        term = tr_term(parse_expression("x + 1"), S0, ctx)
        assert term == App("+", (Const("x"), IntLit(1)))

    def test_unary_minus_encodes_as_subtraction(self):
        ctx = ctx_with("x")
        assert tr_term(parse_expression("-x"), S0, ctx) == App(
            "-", (IntLit(0), Const("x"))
        )

    def test_boolean_op_in_term_position_is_uninterpreted(self):
        ctx = ctx_with("x", "y")
        term = tr_term(parse_expression("x = y"), S0, ctx)
        assert term == App("@=", (Const("x"), Const("y")))


class TestTrFormula:
    def test_equality(self):
        ctx = ctx_with("x", "y")
        assert tr_formula(parse_expression("x = y"), S0, ctx) == Eq(
            Const("x"), Const("y")
        )

    def test_disequality(self):
        ctx = ctx_with("x")
        formula = tr_formula(parse_expression("x != null"), S0, ctx)
        assert formula == Not(Eq(Const("x"), NULL))

    def test_comparison(self):
        ctx = ctx_with("x")
        formula = tr_formula(parse_expression("x < 3"), S0, ctx)
        assert formula == Pred("<", (Const("x"), IntLit(3)))

    def test_connectives(self):
        ctx = ctx_with("a", "b")
        formula = tr_formula(parse_expression("a = 1 && !(b = 2)"), S0, ctx)
        assert "Eq" in type(formula.conjuncts[0]).__name__
        assert isinstance(formula.conjuncts[1], Not)

    def test_boolean_constants(self):
        ctx = ctx_with()
        assert tr_formula(parse_expression("true"), S0, ctx) == TrueF()
        assert tr_formula(parse_expression("false"), S0, ctx) == FalseF()

    def test_boolean_variable_reads_as_eq_true(self):
        ctx = ctx_with("b")
        formula = tr_formula(parse_expression("b"), S0, ctx)
        assert formula == Eq(Const("b"), TRUE_CONST)


class TestWellDef:
    def test_no_dereference_no_premise(self):
        ctx = ctx_with("x")
        assert welldef_premises([parse_expression("x + 1")], S0, ctx) == TrueF()

    def test_single_dereference(self):
        ctx = ctx_with("t")
        premise = welldef_premises([parse_expression("t.f")], S0, ctx)
        parts = premise.conjuncts
        assert Not(Eq(Const("t"), NULL)) in parts
        assert Pred("alive", (S0, Const("t"))) in parts

    def test_chain_covers_every_prefix(self):
        ctx = ctx_with("t")
        premise = welldef_premises([parse_expression("t.c.d")], S0, ctx)
        inner = sel(S0, Const("t"), attr_const("c"))
        assert Not(Eq(inner, NULL)) in premise.conjuncts
        assert Not(Eq(Const("t"), NULL)) in premise.conjuncts

    def test_duplicates_collapsed(self):
        ctx = ctx_with("t")
        premise = welldef_premises(
            [parse_expression("t.f"), parse_expression("t.g")], S0, ctx
        )
        count = sum(1 for c in premise.conjuncts if c == Not(Eq(Const("t"), NULL)))
        assert count == 1


class TestDesignators:
    def test_root_only(self):
        designator = Designator("t", (), "g")
        term = tr_designator_prefix(designator, {"t": Const("t")}, S0)
        assert term == Const("t")

    def test_path_reads_through_store(self):
        designator = Designator("t", ("c", "d"), "g")
        term = tr_designator_prefix(designator, {"t": Const("t")}, S0)
        inner = sel(S0, Const("t"), attr_const("c"))
        assert term == sel(S0, inner, attr_const("d"))

    def test_unbound_root_raises(self):
        with pytest.raises(VerificationError):
            tr_designator_prefix(Designator("t", (), "g"), {}, S0)


class TestMacros:
    W = (Designator("t", (), "g"),)
    ENV = {"t": Const("t")}

    def test_incl_is_disjunction_of_inc(self):
        formula = incl_formula(Const("x"), attr_const("f"), self.W, self.ENV, S0)
        assert formula == Pred(
            "inc", (S0, Const("t"), attr_const("g"), Const("x"), attr_const("f"))
        )

    def test_incl_empty_modifies_is_false(self):
        assert incl_formula(Const("x"), attr_const("f"), (), self.ENV, S0) == FalseF()

    def test_mod_adds_unallocated_escape(self):
        formula = mod_formula(Const("x"), attr_const("f"), self.W, self.ENV, S0)
        assert isinstance(formula, Or)
        assert formula.disjuncts[0] == Not(Pred("alive", (S0, Const("x"))))

    def test_mod_with_empty_modifies(self):
        formula = mod_formula(Const("x"), attr_const("f"), (), self.ENV, S0)
        assert formula == Not(Pred("alive", (S0, Const("x"))))

    def test_own_excl_shape(self):
        formula = own_excl_formula(Const("t"), self.W, self.ENV, S0, FreshNames())
        assert isinstance(formula, Forall)
        assert len(formula.vars) == 4
        assert formula.name == "ownExcl"
        assert formula.triggers  # hand-written trigger present

    def test_own_excl_empty_modifies_is_trivial(self):
        formula = own_excl_formula(Const("t"), (), self.ENV, S0, FreshNames())
        assert formula == TrueF()

    def test_own_excl_fresh_vars_distinct_between_calls(self):
        fresh = FreshNames()
        first = own_excl_formula(Const("t"), self.W, self.ENV, S0, fresh)
        second = own_excl_formula(Const("t"), self.W, self.ENV, S0, fresh)
        assert set(first.vars).isdisjoint(set(second.vars))
