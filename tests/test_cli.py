"""Tests for the oolong-check command line interface."""

import pytest

from repro.cli import build_parser, main
from repro.corpus.programs import RATIONAL, SECTION3_CLIENT, SECTION3_LEAKING_M


@pytest.fixture
def write_source(tmp_path):
    def write(name, content):
        path = tmp_path / name
        path.write_text(content)
        return str(path)

    return write


class TestArguments:
    def test_requires_files(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["x.oolong"])
        assert args.time_budget == 30.0
        assert not args.no_restrictions
        assert not args.stats

    def test_flags(self):
        args = build_parser().parse_args(
            ["--time-budget", "5", "--stats", "--no-restrictions", "a", "b"]
        )
        assert args.time_budget == 5.0
        assert args.stats and args.no_restrictions
        assert args.files == ["a", "b"]


class TestExitCodes:
    def test_ok_program_exits_zero(self, write_source, capsys):
        path = write_source("good.oolong", RATIONAL)
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "verified" in out and "OK" in out

    def test_failing_program_exits_one(self, write_source, capsys):
        source = """
        field f
        proc p(t)
        impl p(t) { assume t != null ; t.f := 1 }
        """
        path = write_source("bad.oolong", source)
        assert main([path]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_restriction_violation_reported(self, write_source, capsys):
        client = write_source("client.oolong", SECTION3_CLIENT)
        private = write_source("private.oolong", SECTION3_LEAKING_M)
        code = main([client, private, "--time-budget", "60"])
        out = capsys.readouterr().out
        assert code == 1
        assert "restriction violation" in out

    def test_no_restrictions_flag_skips_pivot_pass(self, write_source, capsys):
        client = write_source("client.oolong", SECTION3_CLIENT)
        private = write_source("private.oolong", SECTION3_LEAKING_M)
        main([client, private, "--no-restrictions", "--time-budget", "60"])
        out = capsys.readouterr().out
        assert "restriction violation" not in out

    def test_missing_file_exits_two(self, capsys):
        assert main(["/nonexistent/path.oolong"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_parse_error_exits_two(self, write_source, capsys):
        path = write_source("broken.oolong", "group group group")
        assert main([path]) == 2
        assert "error" in capsys.readouterr().err

    def test_ill_formed_exits_two(self, write_source, capsys):
        path = write_source("illformed.oolong", "field f in missing")
        assert main([path]) == 2

    def test_stats_flag_prints_counters(self, write_source, capsys):
        path = write_source("good.oolong", RATIONAL)
        main([path, "--stats"])
        out = capsys.readouterr().out
        assert "instances=" in out and "branches=" in out

    def test_multiple_files_concatenate(self, write_source, capsys):
        a = write_source("a.oolong", "group value\nproc normalize(r) modifies r.value")
        b = write_source(
            "b.oolong",
            "field num in value\nimpl normalize(r) { assume r != null ; r.num := 1 }",
        )
        assert main([a, b, "--time-budget", "60"]) == 0
