"""Tests for the oolong-check command line interface."""

import json

import pytest

from repro.cli import build_lint_parser, build_parser, lint_main, main
from repro.corpus.programs import (
    RATIONAL,
    RATIONAL_OVERBROAD,
    SECTION3_CLIENT,
    SECTION3_LAUNDERED_M,
    SECTION3_LEAKING_M,
)


@pytest.fixture
def write_source(tmp_path):
    def write(name, content):
        path = tmp_path / name
        path.write_text(content)
        return str(path)

    return write


class TestArguments:
    def test_requires_files(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["x.oolong"])
        assert args.time_budget == 30.0
        assert not args.no_restrictions
        assert not args.stats

    def test_flags(self):
        args = build_parser().parse_args(
            ["--time-budget", "5", "--stats", "--no-restrictions", "a", "b"]
        )
        assert args.time_budget == 5.0
        assert args.stats and args.no_restrictions
        assert args.files == ["a", "b"]


class TestExitCodes:
    def test_ok_program_exits_zero(self, write_source, capsys):
        path = write_source("good.oolong", RATIONAL)
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "verified" in out and "OK" in out

    def test_failing_program_exits_one(self, write_source, capsys):
        source = """
        field f
        proc p(t)
        impl p(t) { assume t != null ; t.f := 1 }
        """
        path = write_source("bad.oolong", source)
        assert main([path]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_restriction_violation_reported(self, write_source, capsys):
        client = write_source("client.oolong", SECTION3_CLIENT)
        private = write_source("private.oolong", SECTION3_LEAKING_M)
        code = main([client, private, "--time-budget", "60"])
        out = capsys.readouterr().out
        assert code == 1
        assert "restriction violation" in out

    def test_no_restrictions_flag_skips_pivot_pass(self, write_source, capsys):
        client = write_source("client.oolong", SECTION3_CLIENT)
        private = write_source("private.oolong", SECTION3_LEAKING_M)
        main([client, private, "--no-restrictions", "--time-budget", "60"])
        out = capsys.readouterr().out
        assert "restriction violation" not in out

    def test_missing_file_exits_two(self, capsys):
        assert main(["/nonexistent/path.oolong"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_parse_error_exits_two(self, write_source, capsys):
        path = write_source("broken.oolong", "group group group")
        assert main([path]) == 2
        assert "error" in capsys.readouterr().err

    def test_ill_formed_exits_two(self, write_source, capsys):
        path = write_source("illformed.oolong", "field f in missing")
        assert main([path]) == 2

    def test_stats_flag_prints_counters(self, write_source, capsys):
        path = write_source("good.oolong", RATIONAL)
        main([path, "--stats"])
        out = capsys.readouterr().out
        assert "instances=" in out and "branches=" in out

    def test_multiple_files_concatenate(self, write_source, capsys):
        a = write_source("a.oolong", "group value\nproc normalize(r) modifies r.value")
        b = write_source(
            "b.oolong",
            "field num in value\nimpl normalize(r) { assume r != null ; r.num := 1 }",
        )
        assert main([a, b, "--time-budget", "60"]) == 0

    def test_fail_on_warning_rejects_overbroad_modifies(self, write_source, capsys):
        path = write_source("overbroad.oolong", RATIONAL_OVERBROAD)
        # OL302 is a warning: clean exit by default...
        assert main([path, "--time-budget", "60"]) == 0
        # ...but --fail-on warning turns it into a failure
        assert main([path, "--time-budget", "60", "--fail-on", "warning"]) == 1
        assert "OL302" in capsys.readouterr().out

    def test_no_lint_flag_suppresses_diagnostics(self, write_source, capsys):
        path = write_source("overbroad.oolong", RATIONAL_OVERBROAD)
        assert main([path, "--time-budget", "60", "--no-lint"]) == 0
        assert "OL302" not in capsys.readouterr().out


class TestMultiFilePositions:
    def test_diagnostic_names_the_offending_file(self, write_source, capsys):
        client = write_source("client.oolong", SECTION3_CLIENT)
        private = write_source("private.oolong", SECTION3_LEAKING_M)
        lint_main([client, private])
        out = capsys.readouterr().out
        # the leak is in the private file, at its own (small) line number
        assert "private.oolong:" in out
        leak_lines = [
            l
            for l in out.splitlines()
            if "private.oolong:" in l and not l.startswith(" ")
        ]
        assert leak_lines
        for line in leak_lines:
            path, line_no, _rest = line.split(":", 2)
            assert path.endswith("private.oolong")
            assert int(line_no) <= SECTION3_LEAKING_M.count("\n") + 1

    def test_parse_error_names_the_broken_file(self, write_source, capsys):
        good = write_source("good.oolong", RATIONAL)
        broken = write_source("broken.oolong", "group group group")
        assert main([good, broken]) == 2
        assert "broken.oolong" in capsys.readouterr().err


class TestCheckJson:
    def test_json_report_structure(self, write_source, capsys):
        path = write_source("good.oolong", RATIONAL)
        assert main([path, "--format", "json", "--time-budget", "60"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["diagnostics"] == []
        assert data["restriction_violations"] == []
        (verdict,) = data["verdicts"]
        assert verdict["impl"] == "normalize"
        assert verdict["status"] == "verified"

    def test_json_reports_failure(self, write_source, capsys):
        client = write_source("client.oolong", SECTION3_CLIENT)
        private = write_source("private.oolong", SECTION3_LEAKING_M)
        code = main([client, private, "--format", "json", "--time-budget", "60"])
        data = json.loads(capsys.readouterr().out)
        assert code == 1
        assert data["ok"] is False
        assert data["restriction_violations"]
        codes = {d["code"] for d in data["diagnostics"]}
        assert "OL110" in codes


class TestLintSubcommand:
    def test_lint_parser_defaults(self):
        args = build_lint_parser().parse_args(["x.oolong"])
        assert args.format == "text" and args.fail_on == "error"

    def test_clean_program_exits_zero(self, write_source, capsys):
        path = write_source("good.oolong", RATIONAL)
        assert lint_main([path]) == 0
        assert "0 diagnostic(s)" in capsys.readouterr().out

    def test_subcommand_dispatch_through_main(self, write_source, capsys):
        path = write_source("good.oolong", RATIONAL)
        assert main(["lint", path]) == 0

    def test_leak_exits_one_with_caret_snippet(self, write_source, capsys):
        client = write_source("client.oolong", SECTION3_CLIENT)
        private = write_source("private.oolong", SECTION3_LAUNDERED_M)
        assert lint_main([client, private]) == 1
        out = capsys.readouterr().out
        assert "error[OL110]" in out
        assert "  | " in out  # caret snippet from the right file
        assert "note:" in out  # the flow path

    def test_warning_needs_fail_on_warning(self, write_source, capsys):
        path = write_source("overbroad.oolong", RATIONAL_OVERBROAD)
        assert lint_main([path]) == 0
        assert lint_main([path, "--fail-on", "warning"]) == 1

    def test_no_restrictions_skips_ol1xx(self, write_source, capsys):
        client = write_source("client.oolong", SECTION3_CLIENT)
        private = write_source("private.oolong", SECTION3_LEAKING_M)
        assert lint_main([client, private, "--no-restrictions"]) == 0
        out = capsys.readouterr().out
        assert "OL102" not in out and "OL110" not in out

    def test_missing_file_exits_two(self, capsys):
        assert lint_main(["/nonexistent/path.oolong"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_parse_error_exits_two(self, write_source, capsys):
        path = write_source("broken.oolong", "group group group")
        assert lint_main([path]) == 2

    def test_json_golden(self, write_source, capsys):
        client = write_source("client.oolong", SECTION3_CLIENT)
        private = write_source("private.oolong", SECTION3_LAUNDERED_M)
        assert lint_main([client, private, "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        codes = [d["code"] for d in data["diagnostics"]]
        assert "OL102" in codes and "OL110" in codes
        (leak,) = [d for d in data["diagnostics"] if d["code"] == "OL110"]
        assert leak["severity"] == "error"
        assert leak["impl"] == "m"
        assert leak["file"].endswith("private.oolong")
        assert len(leak["notes"]) >= 2  # the copy and the store
        assert "inferred_modifies" in data

    def test_json_inferred_modifies(self, write_source, capsys):
        path = write_source("good.oolong", RATIONAL)
        lint_main([path, "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert set(data["inferred_modifies"]["normalize"]) == {"r.num", "r.den"}


class TestResilience:
    """Parser recovery and failure semantics at the CLI surface."""

    def test_all_syntax_errors_reported_in_one_run(self, write_source, capsys):
        source = "group value\nfield 1 in value\ngroup 2\nproc p(t)\n"
        path = write_source("multi.oolong", source)
        assert main([path]) == 2
        err = capsys.readouterr().err
        assert err.count("error[OL002]") == 2
        assert "multi.oolong:2" in err and "multi.oolong:3" in err

    def test_errors_collected_across_files(self, write_source, capsys):
        a = write_source("a.oolong", "group 1\n")
        b = write_source("b.oolong", "field 2\n")
        assert main([a, b]) == 2
        err = capsys.readouterr().err
        assert "a.oolong:1" in err and "b.oolong:1" in err

    def test_json_frontend_errors_are_machine_readable(
        self, write_source, capsys
    ):
        path = write_source("multi.oolong", "group 1\ngroup 2\n")
        assert main([path, "--format", "json"]) == 2
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        assert [d["code"] for d in data["diagnostics"]] == ["OL002", "OL002"]

    def test_lint_subcommand_also_recovers(self, write_source, capsys):
        path = write_source("multi.oolong", "group 1\nfield 2\n")
        assert lint_main([path]) == 2
        assert capsys.readouterr().err.count("error[OL002]") == 2

    def test_scope_time_budget_flag(self):
        args = build_parser().parse_args(
            ["--scope-time-budget", "0.5", "x.oolong"]
        )
        assert args.scope_time_budget == 0.5
        assert build_parser().parse_args(["x.oolong"]).scope_time_budget is None

    def test_exhausted_scope_budget_times_out_not_hangs(
        self, write_source, capsys
    ):
        from repro.corpus.programs import STACK_VECTOR

        path = write_source("stack.oolong", STACK_VECTOR)
        code = main([path, "--scope-time-budget", "0.000001"])
        out = capsys.readouterr().out
        assert code == 1
        assert out.count("timed out") == 3
        assert "scope time budget exhausted" in out
        assert "FAILED" in out

    def test_timed_out_json_carries_ol901(self, write_source, capsys):
        from repro.corpus.programs import RATIONAL as R

        path = write_source("good.oolong", R)
        code = main(
            [path, "--scope-time-budget", "0.000001", "--format", "json"]
        )
        data = json.loads(capsys.readouterr().out)
        assert code == 1
        (verdict,) = data["verdicts"]
        assert verdict["status"] == "timed out"
        assert verdict["error"]["code"] == "OL901"

    def test_generous_scope_budget_is_invisible(self, write_source, capsys):
        path = write_source("good.oolong", RATIONAL)
        assert main([path, "--scope-time-budget", "300", "--time-budget", "60"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_internal_crash_exits_two_cleanly(self, write_source, capsys):
        from repro.testing.faults import Fault, FaultPlan, inject

        path = write_source("good.oolong", RATIONAL)
        with inject(FaultPlan((Fault("lex", "raise", hit=0),))):
            code = main([path])
        assert code == 2
        err = capsys.readouterr().err
        assert "internal error" in err and "FaultError" in err

    def test_internal_error_verdict_exits_one(self, write_source, capsys):
        from repro.testing.faults import Fault, FaultPlan, inject

        path = write_source("good.oolong", RATIONAL)
        with inject(FaultPlan((Fault("prove", "raise", hit=0),))):
            code = main([path, "--time-budget", "60"])
        out = capsys.readouterr().out
        assert code == 1
        assert "internal error" in out
        assert "verification failed internally" in out
