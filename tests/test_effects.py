"""Tests for the interprocedural effect analyzer (``repro.analysis.effects``
and ``repro.analysis.inclusion``).

Covers the static-discharge PR's analysis layer:

* the obligation enumerator is a faithful mirror of wlp — same
  obligations, same order, same descriptions — on every example and on
  the generator corpora (the soundness cornerstone: a misaligned index
  would discharge the wrong obligation);
* the precomputed inclusion lattice decides ``covers`` exactly like
  ``repro.analysis.modifies.covers``;
* cyclic rep inclusions (``field next maps g into g``) terminate and
  agree with the runtime inclusion monitor;
* SCC condensation order, self/mutual recursion, and missing (opaque)
  implementations in the summary fixpoint;
* per-declaration interface hashes: stable across recomputation,
  sensitive to interface changes.
"""

import glob
import os

import pytest

from repro.analysis.callgraph import CallGraph
from repro.analysis.effects import (
    Outcome,
    compute_summaries,
    discharge_scope,
    enumerate_obligations,
    interface_hashes,
    scope_interface_hash,
)
from repro.analysis.inclusion import InclusionLattice
from repro.analysis.modifies import covers
from repro.corpus.generators import (
    generate_call_chain,
    generate_impl_farm,
    generate_pivot_tower,
)
from repro.oolong.ast import Designator
from repro.oolong.contracts import desugar_contracts
from repro.oolong.program import Scope
from repro.semantics.inclusion import included_locations
from repro.semantics.store import RuntimeStore
from repro.vcgen.vc import vc_for_impl

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def example_sources():
    paths = sorted(
        glob.glob(os.path.join(EXAMPLES_DIR, "*.oolong"))
    ) + sorted(glob.glob(os.path.join(EXAMPLES_DIR, "failing", "*.oolong")))
    assert paths, "example corpus is empty"
    return [(os.path.basename(p), open(p).read()) for p in paths]


CORPUS = example_sources() + [
    ("impl_farm", generate_impl_farm(6, fields=4)),
    ("call_chain", generate_call_chain(5)),
    ("pivot_tower", generate_pivot_tower(4)),
]


# ----------------------------------------------------------------------
# Obligation enumeration mirrors wlp
# ----------------------------------------------------------------------


class TestObligationMirror:
    @pytest.mark.parametrize("name,source", CORPUS)
    def test_same_obligations_same_order(self, name, source):
        """For every implementation, the static enumerator must produce
        the exact ObligationInfo sequence vcgen registers — idents,
        kinds, descriptions, positions, everything."""
        scope = desugar_contracts(Scope.from_source(source))
        checked = 0
        for impls in scope.impls.values():
            for impl in impls:
                proc = scope.proc(impl.name)
                bundle = vc_for_impl(scope, impl)
                assert (
                    enumerate_obligations(scope, proc, impl)
                    == bundle.obligations
                ), f"obligation mismatch for {impl.name} in {name}"
                checked += 1
        assert checked, f"{name} has no implementations"


# ----------------------------------------------------------------------
# The inclusion lattice agrees with modifies.covers
# ----------------------------------------------------------------------


SCOPES = {
    "stack": """
group contents
group elems
field cnt in elems
field data in elems
field vec in contents maps elems into contents
field other
""",
    "nested": """
group outer
group inner in outer
field f in inner
field g
""",
    "cyclic": """
group g
field val in g
field next in g maps g into g
""",
    "diamond": """
group a
group b in a
group c in a
field f in b
field f2 in c
field p in a maps b into a
field q in a maps c into b
""",
}


def all_designators(scope, max_path=2):
    attrs = list(scope.attribute_names())
    fields = [a for a in attrs if scope.is_field(a)]
    out = []
    for root in ("x", "y"):
        for attr in attrs:
            out.append(Designator(root, (), attr))
            for f1 in fields:
                out.append(Designator(root, (f1,), attr))
                if max_path >= 2:
                    for f2 in fields:
                        out.append(Designator(root, (f1, f2), attr))
    return out


class TestLatticeCovers:
    @pytest.mark.parametrize("name", sorted(SCOPES))
    def test_covers_matches_reference(self, name):
        scope = Scope.from_source(SCOPES[name])
        lattice = InclusionLattice(scope)
        designators = all_designators(scope)
        agreements = 0
        for declared in designators:
            for required in designators:
                assert lattice.covers(declared, required) == covers(
                    scope, declared, required
                ), f"{declared} vs {required} in {name}"
                agreements += 1
        assert agreements > 0

    def test_downward_is_reflexive(self):
        scope = Scope.from_source(SCOPES["stack"])
        lattice = InclusionLattice(scope)
        for attr in scope.attribute_names():
            assert attr in lattice.downward(attr)

    def test_writable_fields_follow_pivots(self):
        scope = Scope.from_source(SCOPES["stack"])
        lattice = InclusionLattice(scope)
        writable = lattice.writable_fields([Designator("s", (), "contents")])
        # contents ≽ vec, and vec pivots into elems ≽ {cnt, data}.
        assert writable == frozenset({"vec", "cnt", "data"})
        assert "other" not in writable


# ----------------------------------------------------------------------
# Cyclic rep inclusions (the Simplify-divergence scope family)
# ----------------------------------------------------------------------


class TestCyclicRepInclusion:
    def test_reachability_terminates_and_is_closed(self):
        scope = Scope.from_source(SCOPES["cyclic"])
        lattice = InclusionLattice(scope)
        reach = lattice.reachable("g")
        # The cycle g -next-> g keeps folding back onto the same finite set.
        assert reach == frozenset({"g", "val", "next"})

    def test_static_closure_matches_runtime_monitor(self):
        """On a store where the pivot cycles back to its own holder, the
        runtime monitor's attribute projection must equal the static
        closure — the analyzer may not under- or over-shoot the monitor
        on the scope family the paper reports divergence for."""
        scope = Scope.from_source(SCOPES["cyclic"])
        lattice = InclusionLattice(scope)
        store = RuntimeStore()
        obj = store.allocate()
        store.write(obj, "next", obj)
        runtime = included_locations(scope, store, obj, "g")
        assert {attr for _, attr in runtime} == set(lattice.reachable("g"))
        # Every runtime location stays on the single object of the cycle.
        assert {holder for holder, _ in runtime} == {obj}

    def test_static_overapproximates_chain_store(self):
        """On an acyclic two-object chain, the runtime attrs are a subset
        of the static closure (the static side ignores the store)."""
        scope = Scope.from_source(SCOPES["cyclic"])
        lattice = InclusionLattice(scope)
        store = RuntimeStore()
        first, second = store.allocate(), store.allocate()
        store.write(first, "next", second)
        runtime = included_locations(scope, store, first, "g")
        assert {attr for _, attr in runtime} <= set(lattice.reachable("g"))

    def test_cyclic_scope_discharges_without_divergence(self):
        """The whole discharge pipeline runs on a cyclic-rep scope — the
        in-frame write is statically valid, no fixpoint spins."""
        scope = Scope.from_source(
            SCOPES["cyclic"]
            + """
proc touch(o) modifies o.g
impl touch(o) {
  assume o != null ;
  o.val := 1
}
"""
        )
        result = discharge_scope(scope)
        assert result.outcome_of("touch", 0) is Outcome.STATIC_VALID


# ----------------------------------------------------------------------
# SCC condensation and the summary fixpoint
# ----------------------------------------------------------------------


def graph_of(edges):
    graph = CallGraph.__new__(CallGraph)
    graph.edges = {name: frozenset(succ) for name, succ in edges.items()}
    return graph


class TestSccs:
    def test_singletons_emitted_callees_first(self):
        graph = graph_of({"a": ("b",), "b": ("c",), "c": ()})
        order = graph.sccs()
        assert order == [("c",), ("b",), ("a",)]

    def test_mutual_recursion_is_one_component(self):
        graph = graph_of({"a": ("b",), "b": ("a",), "c": ("a",)})
        order = graph.sccs()
        assert ("a", "b") in order
        assert order.index(("a", "b")) < order.index(("c",))

    def test_cycles_unchanged_by_generalization(self):
        graph = graph_of({"a": ("b",), "b": ("a",), "c": ("c",), "d": ()})
        assert graph.cycles() == [("a", "b"), ("c",)]


RECURSIVE = """
group g
field f in g
proc self_rec(o) modifies o.g
impl self_rec(o) {
  assume o != null ;
  o.f := 1 ;
  self_rec(o)
}
"""

MUTUAL = """
group g
field f in g
proc ping(o) modifies o.g
proc pong(o) modifies o.g
impl ping(o) {
  assume o != null ;
  o.f := 1 ;
  pong(o)
}
impl pong(o) {
  assume o != null ;
  ping(o)
}
"""

OPAQUE_CALLEE = """
group g
field f in g
proc helper(o) modifies o.g
proc driver(o) modifies o.g
impl driver(o) {
  assume o != null ;
  helper(o)
}
"""


class TestSummaries:
    def test_self_recursion_reaches_fixpoint(self):
        scope = desugar_contracts(Scope.from_source(RECURSIVE))
        summaries = compute_summaries(scope, CallGraph(scope))
        summary = summaries["self_rec"]
        assert not summary.opaque
        assert Designator("o", (), "f") in summary.writes

    def test_mutual_recursion_reaches_fixpoint(self):
        scope = desugar_contracts(Scope.from_source(MUTUAL))
        summaries = compute_summaries(scope, CallGraph(scope))
        for name in ("ping", "pong"):
            assert not summaries[name].opaque
            assert Designator("o", (), "f") in summaries[name].writes

    def test_recursive_impls_still_discharge(self):
        """Recursion is not a soundness cliff: the write and the
        recursive call are both within the declared frame."""
        for source in (RECURSIVE, MUTUAL):
            scope = Scope.from_source(source)
            result = discharge_scope(scope)
            for (name, index), entry in result.impls.items():
                assert entry.outcome in (
                    Outcome.STATIC_VALID,
                    Outcome.UNKNOWN,
                ), (name, index, entry.reason)

    def test_missing_impl_is_opaque(self):
        scope = desugar_contracts(Scope.from_source(OPAQUE_CALLEE))
        summaries = compute_summaries(scope, CallGraph(scope))
        assert summaries["helper"].opaque

    def test_strict_never_validates_through_opaque_callee(self):
        """Under strict mode a caller of an implementation-less procedure
        must not be STATIC_VALID — there is no summary to trust."""
        scope = Scope.from_source(OPAQUE_CALLEE)
        result = discharge_scope(scope, mode="strict")
        assert result.outcome_of("driver", 0) is not Outcome.STATIC_VALID


# ----------------------------------------------------------------------
# Interface hashes
# ----------------------------------------------------------------------


class TestInterfaceHashes:
    SOURCE = """
group g
field f in g
proc bump(o) modifies o.g
impl bump(o) {
  assume o != null ;
  o.f := 1
}
"""

    def test_stable_across_recomputation(self):
        scope = desugar_contracts(Scope.from_source(self.SOURCE))
        graph = CallGraph(scope)
        first = interface_hashes(scope, compute_summaries(scope, graph))
        second = interface_hashes(scope, compute_summaries(scope, graph))
        assert first == second
        assert scope_interface_hash(scope) == scope_interface_hash(scope)

    def test_sensitive_to_interface_change(self):
        base = desugar_contracts(Scope.from_source(self.SOURCE))
        widened = desugar_contracts(
            Scope.from_source(self.SOURCE.replace("field f in g", "field f"))
        )
        h1 = interface_hashes(base, compute_summaries(base, CallGraph(base)))
        h2 = interface_hashes(
            widened, compute_summaries(widened, CallGraph(widened))
        )
        assert h1["f"] != h2["f"]
        assert scope_interface_hash(base) != scope_interface_hash(widened)
