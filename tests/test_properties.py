"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.logic.nnf import FreshNames, negate, skolemize, to_nnf
from repro.logic.subst import formula_free_vars, subst_formula
from repro.logic.terms import (
    And,
    App,
    Const,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    IntLit,
    Not,
    Or,
    Pred,
    TrueF,
    Var,
)
from repro.oolong.ast import (
    Assert,
    Assign,
    AssignNew,
    Assume,
    BinOp,
    BoolConst,
    Call,
    Choice,
    FieldAccess,
    Id,
    IntConst,
    NullConst,
    Seq,
    Skip,
    UnOp,
    VarCmd,
)
from repro.oolong.parser import parse_command, parse_expression, parse_program_text
from repro.oolong.pretty import pretty_cmd, pretty_expr, pretty_program
from repro.prover.egraph import EGraph

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4).filter(
    lambda s: s
    not in {
        "group", "field", "proc", "impl", "in", "maps", "into", "modifies",
        "assert", "assume", "var", "end", "new", "if", "then", "else",
        "skip", "null", "true", "false",
    }
)


def exprs(depth=3):
    base = st.one_of(
        st.builds(NullConst),
        st.builds(BoolConst, st.booleans()),
        st.builds(IntConst, st.integers(min_value=0, max_value=99)),
        st.builds(Id, names),
    )
    if depth == 0:
        return base
    sub = exprs(depth - 1)
    return st.one_of(
        base,
        st.builds(FieldAccess, sub, names),
        st.builds(
            BinOp,
            st.sampled_from(["+", "-", "*", "=", "!=", "<", "<=", ">", ">=", "&&", "||"]),
            sub,
            sub,
        ),
        st.builds(UnOp, st.sampled_from(["!", "-"]), sub),
    )


def commands(depth=3):
    base = st.one_of(
        st.builds(Skip),
        st.builds(Assert, exprs(1)),
        st.builds(Assume, exprs(1)),
        st.builds(Assign, st.builds(Id, names), exprs(1)),
        st.builds(AssignNew, st.builds(Id, names)),
        st.builds(
            Assign, st.builds(FieldAccess, st.builds(Id, names), names), exprs(1)
        ),
        st.builds(Call, names, st.lists(exprs(1), max_size=2).map(tuple)),
    )
    if depth == 0:
        return base
    sub = commands(depth - 1)
    return st.one_of(
        base,
        st.builds(Seq, sub, sub),
        st.builds(Choice, sub, sub),
        st.builds(VarCmd, names, sub),
    )


def terms(depth=2):
    base = st.one_of(
        st.builds(Const, names),
        st.builds(IntLit, st.integers(min_value=-50, max_value=50)),
        st.builds(Var, names.map(lambda n: n.upper())),
    )
    if depth == 0:
        return base
    sub = terms(depth - 1)
    return st.one_of(
        base,
        st.builds(App, names, st.lists(sub, min_size=1, max_size=3).map(tuple)),
    )


def formulas(depth=2):
    atoms = st.one_of(
        st.builds(TrueF),
        st.builds(FalseF),
        st.builds(Eq, terms(1), terms(1)),
        st.builds(Pred, names, st.lists(terms(1), min_size=1, max_size=2).map(tuple)),
    )
    if depth == 0:
        return atoms
    sub = formulas(depth - 1)
    return st.one_of(
        atoms,
        st.builds(Not, sub),
        st.builds(And, st.lists(sub, min_size=2, max_size=3).map(tuple)),
        st.builds(Or, st.lists(sub, min_size=2, max_size=3).map(tuple)),
        st.builds(Implies, sub, sub),
        st.builds(Iff, sub, sub),
        st.builds(
            Forall, st.lists(names.map(str.upper), min_size=1, max_size=2).map(tuple), sub
        ),
        st.builds(
            Exists, st.lists(names.map(str.upper), min_size=1, max_size=2).map(tuple), sub
        ),
    )


# ---------------------------------------------------------------------------
# Frontend round-trips
# ---------------------------------------------------------------------------


class TestFrontendProperties:
    @given(exprs())
    @settings(max_examples=200)
    def test_expression_round_trip(self, expr):
        assert parse_expression(pretty_expr(expr)) == expr

    @given(commands())
    @settings(max_examples=200)
    def test_command_round_trip(self, cmd):
        assert parse_command(pretty_cmd(cmd)) == cmd

    @given(st.lists(commands(1), min_size=1, max_size=3))
    @settings(max_examples=50)
    def test_program_round_trip(self, bodies):
        from repro.oolong.ast import ImplDecl, ProcDecl

        decls = []
        for index, body in enumerate(bodies):
            decls.append(ProcDecl(f"p{index}", ("t",)))
            decls.append(ImplDecl(f"p{index}", ("t",), body))
        text = pretty_program(decls)
        assert parse_program_text(text) == tuple(decls)


# ---------------------------------------------------------------------------
# Logic transforms
# ---------------------------------------------------------------------------


def assert_nnf(formula: Formula) -> None:
    """NNF: negation only on atoms; no Implies/Iff."""
    if isinstance(formula, Not):
        assert isinstance(formula.body, (Eq, Pred)), formula
        return
    assert not isinstance(formula, (Implies, Iff)), formula
    if isinstance(formula, And):
        for c in formula.conjuncts:
            assert_nnf(c)
    elif isinstance(formula, Or):
        for d in formula.disjuncts:
            assert_nnf(d)
    elif isinstance(formula, (Forall, Exists)):
        assert_nnf(formula.body)


def assert_no_exists(formula: Formula) -> None:
    assert not isinstance(formula, Exists), formula
    if isinstance(formula, And):
        for c in formula.conjuncts:
            assert_no_exists(c)
    elif isinstance(formula, Or):
        for d in formula.disjuncts:
            assert_no_exists(d)
    elif isinstance(formula, Forall):
        assert_no_exists(formula.body)
    elif isinstance(formula, Not):
        assert_no_exists(formula.body)


class TestLogicProperties:
    @given(formulas())
    @settings(max_examples=200)
    def test_nnf_shape(self, formula):
        assert_nnf(to_nnf(formula))

    @given(formulas())
    @settings(max_examples=200)
    def test_negate_shape(self, formula):
        assert_nnf(negate(formula))

    @given(formulas())
    @settings(max_examples=200)
    def test_nnf_never_invents_free_vars(self, formula):
        # Absorption (e.g. `false & P` ~> `false`) may legitimately *drop*
        # variables; it must never introduce new ones.
        assert formula_free_vars(to_nnf(formula)) <= formula_free_vars(formula)

    @given(formulas())
    @settings(max_examples=200)
    def test_skolemization_removes_exists_and_keeps_free_vars(self, formula):
        nnf = to_nnf(formula)
        skolemized = skolemize(nnf, FreshNames())
        assert_no_exists(skolemized)
        assert formula_free_vars(skolemized) <= formula_free_vars(nnf)

    @given(formulas(), terms(1))
    @settings(max_examples=200)
    def test_substitution_eliminates_target_variable(self, formula, value):
        from repro.logic.subst import term_free_vars

        free = formula_free_vars(formula)
        if not free:
            return
        target = sorted(free)[0]
        result = subst_formula(formula, {target: value})
        if target in term_free_vars(value):
            return  # the value itself reintroduces the name
        assert target not in formula_free_vars(result)

    @given(formulas())
    @settings(max_examples=100)
    def test_nnf_is_idempotent(self, formula):
        once = to_nnf(formula)
        assert to_nnf(once) == once


# ---------------------------------------------------------------------------
# E-graph invariants under random workloads
# ---------------------------------------------------------------------------

ground_terms = st.recursive(
    st.one_of(
        st.builds(Const, st.sampled_from("abcde")),
        st.builds(IntLit, st.integers(min_value=0, max_value=3)),
    ),
    lambda sub: st.builds(
        App,
        st.sampled_from(["f", "g"]),
        st.lists(sub, min_size=1, max_size=2).map(tuple),
    ),
    max_leaves=6,
)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("eq"), ground_terms, ground_terms),
        st.tuples(st.just("diseq"), ground_terms, ground_terms),
        st.tuples(st.just("intern"), ground_terms, ground_terms),
    ),
    max_size=20,
)


class TestEGraphProperties:
    @given(operations)
    @settings(max_examples=150)
    def test_equality_is_equivalence_and_congruent(self, ops):
        eg = EGraph()
        for op, left, right in ops:
            a, b = eg.intern(left), eg.intern(right)
            if op == "eq":
                eg.assert_eq(a, b)
            elif op == "diseq":
                eg.assert_diseq(a, b)
            if eg.in_conflict:
                return
        # Reflexivity/symmetry via find; congruence: equal children =>
        # equal parents for freshly interned terms.
        for op, left, right in ops:
            a, b = eg.intern(left), eg.intern(right)
            if eg.are_equal(a, b):
                fa = eg.intern(App("f", (left,)))
                fb = eg.intern(App("f", (right,)))
                assert eg.are_equal(fa, fb)

    @given(operations, operations)
    @settings(max_examples=100)
    def test_push_pop_restores_state(self, prefix, scoped):
        eg = EGraph()
        for op, left, right in prefix:
            a, b = eg.intern(left), eg.intern(right)
            if op == "eq":
                eg.assert_eq(a, b)
            elif op == "diseq":
                eg.assert_diseq(a, b)
        before = {
            (l, r): eg.are_equal(eg.intern(l), eg.intern(r))
            for _, l, r in prefix + scoped
        }
        conflict_before = eg.in_conflict
        mark = eg.push()
        for op, left, right in scoped:
            a, b = eg.intern(left), eg.intern(right)
            if op == "eq":
                eg.assert_eq(a, b)
            elif op == "diseq":
                eg.assert_diseq(a, b)
        eg.pop(mark)
        after = {
            (l, r): eg.are_equal(eg.intern(l), eg.intern(r))
            for _, l, r in prefix + scoped
        }
        assert before == after
        assert eg.in_conflict == conflict_before

    @given(st.lists(ground_terms, min_size=1, max_size=10))
    @settings(max_examples=150)
    def test_interning_is_stable(self, term_list):
        eg = EGraph()
        first = [eg.intern(t) for t in term_list]
        second = [eg.intern(t) for t in term_list]
        assert first == second
