"""Differential test: flow-sensitive escape analysis vs. ground truth.

Two bounds pin the analysis between the runtime monitor and the syntactic
pass:

* **soundness** — every scope whose execution actually violates pivot
  uniqueness (as witnessed by :mod:`repro.semantics.interp`) must be
  flagged by the flow analysis (a superset of the real leaks);
* **precision** — on the benign-copy programs from
  :mod:`repro.corpus.generators` the flow analysis reports strictly fewer
  spurious sites than the syntactic pass (namely: none).
"""

from repro.analysis.escape import check_pivot_escapes
from repro.corpus.generators import generate_benign_copies
from repro.corpus.programs import (
    SECTION3_CLIENT_INIT,
    SECTION3_UNSOUND_IMPLS,
)
from repro.oolong.program import Scope
from repro.restrictions.pivot import check_pivot_uniqueness
from repro.semantics.interp import OutcomeKind, explore_program

#: The laundered variant of the unsound module: same runtime behaviour,
#: but the leak flows through an intermediate local.
SECTION3_UNSOUND_LAUNDERED = SECTION3_UNSOUND_IMPLS.replace(
    "impl m(st, r) {\n  assume r != null ;\n  r.obj := st.vec\n}",
    "impl m(st, r) {\n  assume r != null ;\n  var tmp in tmp := st.vec ; r.obj := tmp end\n}",
)


def runtime_pivot_violation(scope, entry):
    outcomes = explore_program(scope, entry)
    return [o for o in outcomes if o.kind is OutcomeKind.PIVOT_VIOLATION]


class TestSoundnessBound:
    def test_real_leak_is_caught_by_flow_analysis(self):
        scope = Scope.from_source(SECTION3_CLIENT_INIT + SECTION3_UNSOUND_IMPLS)
        # ground truth: running q2 really does break pivot uniqueness
        assert runtime_pivot_violation(scope, "q2")
        # the flow analysis flags the leaking impl
        escapes = check_pivot_escapes(scope)
        assert any(d.impl == "m" and d.code == "OL110" for d in escapes)

    def test_laundered_leak_still_caught(self):
        assert "var tmp in" in SECTION3_UNSOUND_LAUNDERED  # replace() took
        scope = Scope.from_source(SECTION3_CLIENT_INIT + SECTION3_UNSOUND_LAUNDERED)
        assert runtime_pivot_violation(scope, "q2")
        escapes = check_pivot_escapes(scope)
        assert any(d.impl == "m" and d.code == "OL110" for d in escapes)
        # the flow path names the laundering copy
        (leak,) = [d for d in escapes if d.impl == "m"]
        assert any("tmp := st.vec" in note.message for note in leak.notes)


class TestPrecisionBound:
    def test_strictly_fewer_spurious_sites_than_syntactic_pass(self):
        for copies in (1, 2, 4, 8):
            source = generate_benign_copies(copies)
            # make the probe executable so the interpreter can vouch for it
            driver = source + (
                "\nproc drive()\n"
                "impl drive() { var x in x := new() ; probe(x) end }\n"
            )
            scope = Scope.from_source(driver)

            # ground truth: no execution goes wrong
            outcomes = explore_program(scope, "drive")
            assert outcomes and not any(o.wrong for o in outcomes)

            syntactic_sites = {
                (v.position.line, v.position.column)
                for v in check_pivot_uniqueness(scope)
            }
            flow_sites = {
                (d.position.line, d.position.column)
                for d in check_pivot_escapes(scope)
            }
            # strictly fewer spurious sites: the flow analysis is silent
            assert len(flow_sites) < len(syntactic_sites)
            assert flow_sites == set()


class TestAgreementOnCleanPrograms:
    def test_no_flow_findings_where_runtime_is_clean(self):
        # programs the interpreter certifies clean stay clean under flow
        source = generate_benign_copies(3) + (
            "\nproc drive()\n"
            "impl drive() { var x in x := new() ; probe(x) end }\n"
        )
        scope = Scope.from_source(source)
        assert not any(o.wrong for o in explore_program(scope, "drive"))
        assert check_pivot_escapes(scope) == []
