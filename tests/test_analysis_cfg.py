"""Tests for the CFG builder and the generic forward-dataflow engine."""

from repro.analysis.cfg import (
    ASSERT,
    ASSIGN,
    ASSUME,
    CALL,
    VAR_ENTER,
    VAR_EXIT,
    build_cfg,
)
from repro.analysis.dataflow import ForwardAnalysis, run_forward, statement_states
from repro.corpus.programs import SECTION3_CLIENT, STACK_VECTOR
from repro.oolong.program import Scope


def impl_of(source, proc):
    return Scope.from_source(source).impls_of(proc)[0]


def kinds(cfg):
    return [stmt.kind for _, stmt in cfg.statements()]


class TestBuildCfg:
    def test_straight_line_is_one_chain(self):
        impl = impl_of(
            "group g\nfield f in g\nproc p(t) modifies t.g\n"
            "impl p(t) { assume t != null ; t.f := 1 ; t.f := 2 }",
            "p",
        )
        cfg = build_cfg(impl)
        assert kinds(cfg) == [ASSUME, ASSIGN, ASSIGN]
        order = cfg.reverse_postorder()
        assert order[0] == cfg.entry and order[-1] == cfg.exit

    def test_choice_splits_and_joins(self):
        impl = impl_of(STACK_VECTOR, "push")
        cfg = build_cfg(impl)
        # the [] in push produces a block with two successors...
        forks = [b for b in cfg.blocks.values() if len(b.succs) == 2]
        assert forks
        # ...and a join block with two predecessors that reaches the call.
        joins = [b for b in cfg.blocks.values() if len(b.preds) == 2]
        assert joins
        assert CALL in kinds(cfg)

    def test_var_blocks_bracket_the_body(self):
        impl = impl_of(SECTION3_CLIENT, "q")
        cfg = build_cfg(impl)
        seq = [(stmt.kind, stmt.var) for _, stmt in cfg.statements()]
        enters = [var for kind, var in seq if kind == VAR_ENTER]
        exits = [var for kind, var in seq if kind == VAR_EXIT]
        assert enters == ["st", "result", "v", "n"]
        assert sorted(exits) == sorted(enters)
        # exits come in reverse nesting order after the body
        assert seq.index((VAR_EXIT, "n")) < seq.index((VAR_EXIT, "st"))
        assert ASSERT in [kind for kind, _ in seq]

    def test_every_block_reachable_in_rpo(self):
        for proc in ("push", "vec_add", "new_stack"):
            cfg = build_cfg(impl_of(STACK_VECTOR, proc))
            assert sorted(cfg.reverse_postorder()) == sorted(
                b.bid for b in cfg.blocks.values()
            )

    def test_positions_flow_from_source(self):
        impl = impl_of(
            "group g\nfield f in g\nproc p(t) modifies t.g\n"
            "impl p(t) { assume t != null ; t.f := 1 }",
            "p",
        )
        cfg = build_cfg(impl)
        positions = [stmt.position for _, stmt in cfg.statements()]
        assert all(pos is not None for pos in positions)
        assert positions[0].line == 4


class _CountingAnalysis(ForwardAnalysis):
    """Counts statements seen along the longest path (max-join)."""

    def initial_state(self, cfg):
        return 0

    def join(self, states):
        return max(states)

    def transfer(self, stmt, state):
        return state + 1


class TestForwardEngine:
    def test_counts_longest_path_through_choice(self):
        impl = impl_of(STACK_VECTOR, "push")
        cfg = build_cfg(impl)
        result = run_forward(cfg, _CountingAnalysis())
        # assume + (assume ; assign | assume ; skip-elided) + call
        assert result.block_out[cfg.exit] == 4

    def test_statement_states_replays_ins(self):
        impl = impl_of(STACK_VECTOR, "vec_add")
        cfg = build_cfg(impl)
        analysis = _CountingAnalysis()
        result = run_forward(cfg, analysis)
        states = [state for _, _, state in statement_states(cfg, analysis, result)]
        assert states == [0, 1, 2]

    def test_fixpoint_reaches_all_blocks(self):
        impl = impl_of(SECTION3_CLIENT, "q")
        cfg = build_cfg(impl)
        result = run_forward(cfg, _CountingAnalysis())
        assert set(result.block_in) == {b.bid for b in cfg.blocks.values()}
