"""Direct tests of the background predicates: each axiom proves what it
should and nothing it shouldn't, via small hand-built queries."""

import pytest

from repro.logic.terms import (
    And,
    Const,
    Eq,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Pred,
    TrueF,
    conj,
    neq,
)
from repro.oolong.program import Scope
from repro.prover.core import Limits, prove_valid
from repro.vcgen.background import scope_background, universal_background
from repro.vcgen.vocab import (
    NULL,
    alive,
    attr_const,
    inc,
    linc,
    new,
    rinc,
    sel,
    succ,
    upd,
)

LIMITS = Limits(time_budget=30.0)

S0 = Const("$0")
x, y, v = Const("x"), Const("y"), Const("v")


def valid(axioms, goal):
    return prove_valid(list(axioms), goal, LIMITS).valid


STACK = Scope.from_source(
    """
    group contents
    group elems
    field cnt in elems
    field data in elems
    field vec in contents maps elems into contents
    field plain
    """
)


def stack_axioms():
    return universal_background() + scope_background(STACK)


class TestStoreAxioms:
    def test_select_over_update_same(self):
        goal = Eq(sel(upd(S0, x, attr_const("cnt"), v), x, attr_const("cnt")), v)
        assert valid(universal_background(), goal)

    def test_select_over_update_other_field(self):
        axioms = stack_axioms()
        goal = Eq(
            sel(upd(S0, x, attr_const("cnt"), v), x, attr_const("data")),
            sel(S0, x, attr_const("data")),
        )
        assert valid(axioms, goal)

    def test_select_over_update_other_object(self):
        axioms = stack_axioms() + [neq(x, y)]
        goal = Eq(
            sel(upd(S0, x, attr_const("cnt"), v), y, attr_const("cnt")),
            sel(S0, y, attr_const("cnt")),
        )
        assert valid(axioms, goal)

    def test_update_does_not_leak_to_same_slot_without_info(self):
        # Without x != y, the value may or may not be overwritten.
        axioms = stack_axioms()
        goal = Eq(
            sel(upd(S0, x, attr_const("cnt"), v), y, attr_const("cnt")),
            sel(S0, y, attr_const("cnt")),
        )
        assert not valid(axioms, goal)

    def test_allocation_axioms(self):
        ubp = universal_background()
        assert valid(ubp, Not(alive(S0, new(S0))))
        assert valid(ubp, alive(succ(S0), new(S0)))
        assert valid(ubp, Implies(alive(S0, x), alive(succ(S0), x)))
        assert valid(ubp, Eq(sel(succ(S0), x, attr_const("cnt")), sel(S0, x, attr_const("cnt"))))

    def test_new_object_is_not_null(self):
        assert valid(universal_background(), neq(new(S0), NULL))

    def test_unallocated_fields_are_null(self):
        ubp = universal_background()
        goal = Implies(
            Not(alive(S0, x)), Eq(sel(S0, x, attr_const("cnt")), NULL)
        )
        assert valid(ubp, goal)

    def test_fresh_object_fields_are_null(self):
        ubp = universal_background()
        goal = Eq(sel(succ(S0), new(S0), attr_const("cnt")), NULL)
        assert valid(ubp, goal)


class TestScopeAxioms:
    def test_local_inclusion_facts(self):
        axioms = stack_axioms()
        assert valid(axioms, linc(attr_const("elems"), attr_const("cnt")))
        assert valid(axioms, linc(attr_const("cnt"), attr_const("cnt")))

    def test_local_inclusion_completeness(self):
        axioms = stack_axioms()
        assert valid(axioms, Not(linc(attr_const("contents"), attr_const("plain"))))
        assert valid(axioms, Not(linc(attr_const("elems"), attr_const("plain"))))

    def test_rep_inclusion_facts(self):
        axioms = stack_axioms()
        assert valid(
            axioms,
            rinc(attr_const("vec"), attr_const("contents"), attr_const("elems")),
        )

    def test_rep_inclusion_completeness(self):
        axioms = stack_axioms()
        assert valid(
            axioms,
            Not(rinc(attr_const("cnt"), attr_const("contents"), attr_const("elems"))),
        )
        assert valid(
            axioms,
            Not(rinc(attr_const("vec"), attr_const("elems"), attr_const("cnt"))),
        )

    def test_attribute_distinctness(self):
        axioms = stack_axioms()
        assert valid(axioms, neq(attr_const("cnt"), attr_const("data")))

    def test_fields_are_local_leaves(self):
        axioms = stack_axioms()
        goal = Implies(linc(attr_const("cnt"), Const("someattr")), Eq(Const("someattr"), attr_const("cnt")))
        assert valid(axioms, goal)

    def test_nothing_maps_into_fields(self):
        axioms = stack_axioms()
        goal = Not(rinc(Const("somefield"), attr_const("cnt"), Const("someattr")))
        assert valid(axioms, goal)


class TestInclusionAxioms:
    def test_local_inclusion_lifts_to_inc(self):
        axioms = stack_axioms()
        goal = inc(S0, x, attr_const("elems"), x, attr_const("cnt"))
        assert valid(axioms, goal)

    def test_rep_step_through_pivot(self):
        axioms = stack_axioms()
        vec_val = sel(S0, x, attr_const("vec"))
        hypotheses = [neq(x, vec_val)]
        goal = inc(S0, x, attr_const("contents"), vec_val, attr_const("cnt"))
        assert valid(axioms + hypotheses, goal)

    def test_unrelated_groups_not_included(self):
        axioms = stack_axioms()
        goal = Not(inc(S0, x, attr_const("elems"), x, attr_const("plain")))
        assert valid(axioms, goal)

    def test_no_cycle_axiom(self):
        axioms = stack_axioms()
        vec_val = sel(S0, x, attr_const("vec"))
        hypotheses = [neq(vec_val, NULL)]
        goal = Not(inc(S0, vec_val, attr_const("elems"), x, attr_const("contents")))
        assert valid(axioms + hypotheses, goal)

    def test_pivot_uniqueness_axiom(self):
        axioms = stack_axioms()
        vec_x = sel(S0, x, attr_const("vec"))
        vec_y = sel(S0, y, attr_const("vec"))
        hypotheses = [neq(vec_x, NULL), Eq(vec_x, vec_y)]
        assert valid(axioms + hypotheses, Eq(x, y))

    def test_pivot_value_differs_from_other_fields(self):
        axioms = stack_axioms()
        vec_x = sel(S0, x, attr_const("vec"))
        plain_y = sel(S0, y, attr_const("plain"))
        hypotheses = [neq(vec_x, NULL)]
        assert valid(axioms + hypotheses, neq(vec_x, plain_y))

    def test_null_groups_include_only_null_locations(self):
        axioms = stack_axioms()
        hypotheses = [neq(y, NULL)]
        goal = Not(inc(S0, NULL, attr_const("contents"), y, attr_const("cnt")))
        assert valid(axioms + hypotheses, goal)

    def test_fresh_object_not_included_in_old_group(self):
        # The crux of EX-3.0's proof: a just-allocated object's locations
        # cannot be part of any existing object's groups.
        axioms = stack_axioms()
        hypotheses = [alive(S0, x), neq(x, new(S0))]
        goal = Not(inc(S0, x, attr_const("contents"), new(S0), attr_const("cnt")))
        assert valid(axioms + hypotheses, goal)
