"""Unit tests for the logic layer: substitution, NNF, skolemization."""

import pytest

from repro.logic import (
    And,
    App,
    Const,
    Eq,
    Exists,
    FalseF,
    Forall,
    FreshNames,
    Iff,
    Implies,
    IntLit,
    Not,
    Or,
    Pred,
    TrueF,
    Var,
    conj,
    disj,
    distinct_pairs,
    formula_free_vars,
    negate,
    neq,
    skolemize,
    subst_formula,
    subst_term,
    term_free_vars,
    to_nnf,
)

a, b, c = Const("a"), Const("b"), Const("c")
x, y = Var("x"), Var("y")
P = Pred("P", (x,))
Q = Pred("Q", (x, y))


class TestConstructors:
    def test_conj_flattens_and_absorbs(self):
        assert conj([TrueF(), P]) == P
        assert conj([]) == TrueF()
        assert conj([P, FalseF()]) == FalseF()
        assert conj([And((P, Q)), P]) == And((P, Q, P))

    def test_disj_flattens_and_absorbs(self):
        assert disj([FalseF(), P]) == P
        assert disj([]) == FalseF()
        assert disj([P, TrueF()]) == TrueF()
        assert disj([Or((P, Q)), P]) == Or((P, Q, P))

    def test_distinct_pairs(self):
        formula = distinct_pairs([a, b, c])
        assert formula == And((neq(a, b), neq(a, c), neq(b, c)))

    def test_distinct_pairs_short(self):
        assert distinct_pairs([a]) == TrueF()
        assert distinct_pairs([a, b]) == neq(a, b)


class TestFreeVars:
    def test_term_free_vars(self):
        term = App("f", (x, App("g", (y, a))))
        assert term_free_vars(term) == {"x", "y"}

    def test_const_has_no_free_vars(self):
        assert term_free_vars(a) == frozenset()
        assert term_free_vars(IntLit(3)) == frozenset()

    def test_quantifier_binds(self):
        formula = Forall(("x",), Q)
        assert formula_free_vars(formula) == {"y"}

    def test_nested_binders(self):
        formula = Forall(("x",), Exists(("y",), Q))
        assert formula_free_vars(formula) == frozenset()

    def test_connectives_union(self):
        formula = Implies(P, Iff(Q, Not(Eq(x, y))))
        assert formula_free_vars(formula) == {"x", "y"}


class TestSubstitution:
    def test_subst_term(self):
        term = App("f", (x, y))
        assert subst_term(term, {"x": a}) == App("f", (a, y))

    def test_subst_formula_atom(self):
        assert subst_formula(Q, {"x": a, "y": b}) == Pred("Q", (a, b))

    def test_bound_variable_shadowing(self):
        formula = Forall(("x",), Q)
        result = subst_formula(formula, {"x": a, "y": b})
        assert result == Forall(("x",), Pred("Q", (x, b)))

    def test_capture_avoidance_renames_binder(self):
        # substituting y := x under a binder for x must rename the binder.
        formula = Forall(("x",), Q)
        result = subst_formula(formula, {"y": x})
        assert isinstance(result, Forall)
        (bound,) = result.vars
        assert bound != "x"
        assert result.body == Pred("Q", (Var(bound), x))

    def test_triggers_substituted(self):
        trigger = (App("f", (x, y)),)
        formula = Forall(("x",), Q, (trigger,))
        result = subst_formula(formula, {"y": b})
        assert result.triggers == ((App("f", (x, b)),),)

    def test_empty_mapping_is_identity(self):
        formula = Forall(("x",), Q)
        assert subst_formula(formula, {}) is formula


class TestNNF:
    def test_double_negation(self):
        assert to_nnf(Not(Not(P))) == P

    def test_demorgan_or(self):
        assert to_nnf(Not(Or((P, Q)))) == And((Not(P), Not(Q)))

    def test_implies_positive(self):
        assert to_nnf(Implies(P, Q)) == Or((Not(P), Q))

    def test_implies_negative(self):
        assert to_nnf(Not(Implies(P, Q))) == And((P, Not(Q)))

    def test_iff_positive(self):
        result = to_nnf(Iff(P, Q))
        assert result == Or((And((P, Q)), And((Not(P), Not(Q)))))

    def test_quantifier_flip(self):
        assert to_nnf(Not(Forall(("x",), P))) == Exists(("x",), Not(P))
        assert to_nnf(Not(Exists(("x",), P))) == Forall(("x",), Not(P))

    def test_constants(self):
        assert to_nnf(Not(TrueF())) == FalseF()
        assert to_nnf(Not(FalseF())) == TrueF()

    def test_unordered_negated_and(self):
        result = to_nnf(Not(And((P, Q))), ordered=False)
        assert result == Or((Not(P), Not(Q)))

    def test_ordered_negated_and(self):
        R = Pred("R", ())
        result = negate(And((P, Q, R)), ordered=True)
        assert result == Or(
            (
                Not(P),
                And((P, Not(Q))),
                And((P, Q, Not(R))),
            )
        )

    def test_ordered_negation_of_implication(self):
        result = negate(Implies(P, Q))
        assert result == And((P, Not(Q)))


class TestSkolemize:
    def test_top_level_exists_becomes_constant(self):
        formula = Exists(("x",), P)
        result = skolemize(formula, FreshNames())
        assert isinstance(result, Pred)
        (arg,) = result.args
        assert isinstance(arg, Const)

    def test_exists_under_forall_becomes_function(self):
        formula = Forall(("y",), Exists(("x",), Q))
        result = skolemize(formula, FreshNames())
        assert isinstance(result, Forall)
        body = result.body
        assert isinstance(body, Pred)
        skolem_term, plain = body.args
        assert isinstance(skolem_term, App)
        assert skolem_term.args == (Var("y"),)
        assert plain == Var("y")

    def test_nested_exists_share_universals(self):
        formula = Forall(("y",), Exists(("x", "z"), Pred("R", (x, Var("z"), y))))
        result = skolemize(formula, FreshNames())
        r = result.body
        assert all(
            isinstance(t, App) and t.args == (Var("y"),) for t in r.args[:2]
        )

    def test_rejects_non_nnf(self):
        with pytest.raises(ValueError):
            skolemize(Implies(P, Q), FreshNames())

    def test_fresh_names_deterministic(self):
        fresh = FreshNames()
        assert fresh.fresh("sk") == "sk!1"
        assert fresh.fresh("sk") == "sk!2"
        assert fresh.fresh("other") == "other!1"
