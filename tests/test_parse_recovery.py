"""Golden tests for panic-mode parser error recovery.

The contract: with ``recover=True`` (or through
``parse_program_recovering``) one parse surfaces *every* syntax error in
a source as an ``OL001``/``OL002`` diagnostic with a stable span, while
every healthy declaration — before, between, and after the errors —
survives. Fail-fast mode stays the default and is unchanged.
"""

import random
import re
from pathlib import Path

import pytest

from repro.errors import ParseError
from repro.oolong.ast import ImplDecl
from repro.oolong.parser import (
    MAX_RECOVERED_ERRORS,
    parse_program_recovering,
    parse_program_text,
)
from repro.oolong.program import Scope

EXAMPLES = sorted(Path(__file__).parent.parent.glob("examples/*.oolong"))

THREE_ERRORS = """group value
field num in value
field bad in
proc normalize(r) modifies r.value
impl normalize(r) {
  assume r != null ;
  r.num := ;
  r.num := 1
}
group 7
field den in value
"""


class TestFailFastDefault:
    def test_default_raises_on_first_error(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program_text(THREE_ERRORS, "demo.oolong")
        # fail-fast stops at the FIRST error
        assert excinfo.value.position.line == 4

    def test_recover_flag_collects_into_caller_list(self):
        errors = []
        decls = parse_program_text(
            THREE_ERRORS, "demo.oolong", recover=True, errors=errors
        )
        assert len(errors) == 3
        assert [d.name for d in decls] == [
            "value",
            "num",
            "normalize",
            "normalize",
            "den",
        ]


class TestMultiErrorGolden:
    def test_three_errors_three_diagnostics_stable_spans(self):
        outcome = parse_program_recovering(THREE_ERRORS, "demo.oolong")
        assert not outcome.ok
        diags = outcome.diagnostics()
        assert [d.code for d in diags] == ["OL002", "OL002", "OL002"]
        spans = [(d.position.line, d.position.column) for d in diags]
        assert spans == [(4, 1), (7, 12), (10, 7)]
        assert all(d.position.file == "demo.oolong" for d in diags)

    def test_healthy_decls_survive_around_errors(self):
        outcome = parse_program_recovering(THREE_ERRORS)
        names = [d.name for d in outcome.decls]
        # the broken `field bad in` and `group 7` are dropped; everything
        # else — including the impl whose body had a hole — survives
        assert names == ["value", "num", "normalize", "normalize", "den"]
        impls = [d for d in outcome.decls if isinstance(d, ImplDecl)]
        assert len(impls) == 1

    def test_command_level_recovery_finds_every_bad_statement(self):
        source = """proc p(t)
impl p(t) {
  assume t != ;
  skip ;
  t := := 1 ;
  skip
}
"""
        outcome = parse_program_recovering(source)
        assert len(outcome.errors) == 2
        lines = sorted(e.position.line for e in outcome.errors)
        assert lines == [3, 5]
        # the impl is kept, with skip holes standing in for the bad atoms
        assert [d.name for d in outcome.decls] == ["p", "p"]

    def test_two_broken_impl_bodies_both_reported(self):
        source = """proc a(t)
proc b(t)
impl a(t) { t := }
impl b(t) { assert }
"""
        outcome = parse_program_recovering(source)
        assert len(outcome.errors) == 2
        assert sorted(e.position.line for e in outcome.errors) == [3, 4]

    def test_lex_error_is_a_single_ol001(self):
        outcome = parse_program_recovering("group value\nfield n@m\n", "x.oolong")
        assert outcome.decls == ()
        (diag,) = outcome.diagnostics()
        assert diag.code == "OL001"
        assert diag.position.line == 2

    def test_diagnostics_are_rendered_through_the_engine(self):
        from repro.analysis.diagnostics import render_text

        outcome = parse_program_recovering(THREE_ERRORS, "demo.oolong")
        text = render_text(outcome.diagnostics(), {"demo.oolong": THREE_ERRORS})
        assert text.count("error[OL002]") == 3
        assert "  | " in text  # caret snippets resolve against the source

    def test_error_cascade_is_capped(self):
        source = "group 1\n" * (MAX_RECOVERED_ERRORS + 20)
        outcome = parse_program_recovering(source)
        assert len(outcome.errors) == MAX_RECOVERED_ERRORS

    def test_clean_source_roundtrips_identically(self):
        source = Path(EXAMPLES[0]).read_text()
        fail_fast = parse_program_text(source)
        recovered = parse_program_recovering(source)
        assert recovered.ok
        assert recovered.decls == fail_fast


def _corrupt_decl_names(source: str, seed: int, count: int):
    """Replace the name of ``count`` rng-chosen declarations with ``0``.

    Each corruption sits at a declaration boundary, so recovery yields
    exactly one diagnostic per corruption with a predictable span.
    """
    pattern = re.compile(
        r"^(\s*(?:group|field|proc|impl)\s+)(\w+)", re.MULTILINE
    )
    matches = list(pattern.finditer(source))
    rng = random.Random(seed)
    chosen = sorted(rng.sample(range(len(matches)), count))
    # Apply replacements right-to-left so earlier offsets stay valid; the
    # chosen declarations sit on distinct lines, so each error's expected
    # (line, column) can be read off the original source.
    corrupted = source
    for index in reversed(chosen):
        match = matches[index]
        corrupted = corrupted[: match.start(2)] + "0" + corrupted[match.end(2) :]
    expected = []
    for index in chosen:
        prefix = source[: matches[index].start(2)]
        expected.append((prefix.count("\n") + 1, len(prefix) - prefix.rfind("\n")))
    return corrupted, expected


class TestSeededExampleCorruption:
    """Every shipped example, corrupted in k>=2 places, yields k parse
    diagnostics at exactly the corrupted positions — in one run."""

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_k_corruptions_k_diagnostics(self, path, seed):
        source = path.read_text()
        corrupted, expected = _corrupt_decl_names(source, seed, count=2)
        outcome = parse_program_recovering(corrupted, path.name)
        diags = outcome.diagnostics()
        assert len(diags) == 2, [str(d) for d in diags]
        spans = sorted((d.position.line, d.position.column) for d in diags)
        assert spans == sorted(expected)

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
    )
    def test_corruption_is_deterministic(self, path):
        source = path.read_text()
        first, _ = _corrupt_decl_names(source, seed=7, count=2)
        second, _ = _corrupt_decl_names(source, seed=7, count=2)
        assert first == second
        a = parse_program_recovering(first, path.name)
        b = parse_program_recovering(second, path.name)
        assert [str(e) for e in a.errors] == [str(e) for e in b.errors]


class TestScopeFromSourcesRecovering:
    def test_collects_across_files(self):
        scope, diags = Scope.from_sources_recovering(
            [
                ("a.oolong", "group value\nfield 1 in value\n"),
                ("b.oolong", "proc p(t)\nimpl p(t) { skip }\nfield 2\n"),
            ]
        )
        assert len(diags) == 2
        assert {d.position.file for d in diags} == {"a.oolong", "b.oolong"}
        assert set(scope.procs) == {"p"}
        assert set(scope.groups) == {"value"}

    def test_duplicate_collision_degrades_to_ol100(self):
        scope, diags = Scope.from_sources_recovering(
            [(None, "group g\ngroup g\n")]
        )
        assert [d.code for d in diags] == ["OL100"]
        assert len(scope) == 0
