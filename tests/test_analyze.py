"""The journal-analytics layer: ``events report``/``export`` and the
fleet-wide trace assembly.

* **Golden fleet report** — a seeded 4-worker *external-pool* fleet run
  with planted OL901 (hard timeout), OL902 (quarantine), and OL904
  (cache degradation) faults: the report names a non-empty critical
  path and per-worker utilization, its OL901–OL904 counts exactly match
  the run's ``CheckReport`` tallies, the quarantine and degradation
  rows appear in the text rendering, and the journal's Chrome trace
  export validates. The same run exercises the clock-offset handshake:
  remote worker spans are rebased onto the coordinator's clock, so the
  assembled tracer trace validates with no negative or pre-run-start
  timestamps.
* **Fuzzed fault matrix** — ``report`` never crashes on any
  schema-valid journal a faulted run can produce, and its JSON always
  validates against ``report.schema.json``.
* **Clock rebase** — ``Tracer.absorb(offset=...)`` lands remote spans
  in the local clock domain and clamps estimation jitter at the
  tracer's origin; ``transport.clock_offset`` is ~0 on the same host.
* **CLI** — ``events report``/``events export`` round-trip through
  files; error paths exit 2.
"""

import io
import json
import os
import socket
from contextlib import redirect_stdout

import pytest

from repro import obs
from repro.cli import main
from repro.corpus.generators import generate_impl_farm
from repro.obs.analyze import AnalysisError, analyze_journal
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.parallel.fleet import FleetOptions, WorkerPool
from repro.parallel.transport import clock_offset, clock_sample
from repro.prover.core import Limits
from repro.testing.faults import (
    FLEET_STAGES,
    SUPERVISOR_STAGES,
    Fault,
    FaultPlan,
    inject,
)
from repro.vcgen.checker import check_scope

LIMITS = Limits(time_budget=120.0)

SEED_OFFSET = int(os.environ.get("FAULT_SEED_OFFSET", "0"))


def _farm_scope(impls=4, fields=4):
    scope = Scope.from_source(generate_impl_farm(impls, fields))
    check_well_formed(scope)
    return scope


def _fleet_fast(**overrides) -> FleetOptions:
    defaults = dict(
        workers=2,
        lease_duration=2.0,
        renew_interval=0.1,
        backoff_base=0.01,
        poll_interval=0.02,
        registration_wait=30.0,
        max_retries=4,
    )
    defaults.update(overrides)
    return FleetOptions(**defaults)


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _synthetic_fleet_journal():
    """A hand-driven journal shaped like a 2-worker fleet run."""
    journal = obs.EventJournal()
    journal.emit("check-start", impls=3, backend="fleet")
    journal.emit("worker-registered", worker="remote-1", kind="remote")
    journal.emit("worker-registered", worker="remote-2", kind="remote")
    for lease, (impl, worker) in enumerate(
        [("a", "remote-1"), ("b", "remote-2"), ("c", "remote-1")]
    ):
        journal.emit(
            "lease-granted",
            lease=lease,
            job=lease,
            impl=impl,
            index=0,
            worker=worker,
            attempt=0,
        )
        journal.emit("lease-renewed", lease=lease, job=lease, worker=worker)
        journal.emit(
            "impl-checked",
            impl=impl,
            index=0,
            status="verified",
            lease=lease,
            worker=worker,
            attempt=0,
        )
    journal.emit("check-end", ok=True, impls=3)
    return journal


class TestAnalyzeUnit:
    def test_empty_journal_raises(self):
        with pytest.raises(AnalysisError):
            analyze_journal([])

    def test_unknown_run_raises(self):
        journal = _synthetic_fleet_journal()
        with pytest.raises(AnalysisError):
            analyze_journal(journal.records, "no-such-run")

    def test_synthetic_run_reconstructs(self):
        journal = _synthetic_fleet_journal()
        report = analyze_journal(journal.records)
        assert obs.validate_events_report(report) == []
        assert report["run_id"] == journal.run_id
        assert report["ok"] is True
        assert report["backend"] == "fleet"
        assert report["impls"] == 3
        workers = {row["worker"]: row for row in report["workers"]}
        assert workers["remote-1"]["jobs"] == 2
        assert workers["remote-2"]["jobs"] == 1
        leases = report["leases"]
        assert leases["counts"]["granted"] == 3
        assert leases["grant_to_first_heartbeat"]["count"] == 3
        assert leases["grant_to_result"]["count"] == 3
        assert report["statuses"] == {"verified": 3}
        # Three sequential grants chain back-to-back.
        assert len(report["critical_path"]["chain"]) >= 1

    def test_multi_run_files_analyze_per_run(self):
        first = _synthetic_fleet_journal()
        second = _synthetic_fleet_journal()
        merged = first.records + second.records
        assert obs.validate_event_journal(merged) == []
        assert obs.run_ids(merged) == [first.run_id, second.run_id]
        for run in (first.run_id, second.run_id):
            report = analyze_journal(merged, run)
            assert report["run_id"] == run
            assert report["events"] == len(first.records)

    def test_preresolved_reannouncements_dedupe(self):
        journal = obs.EventJournal()
        journal.emit("check-start", impls=1, backend="fleet")
        journal.emit(
            "impl-checked", impl="a", index=0, status="timeout", code="OL901"
        )
        # The degraded supervisor re-announces the same decided impl.
        journal.emit(
            "impl-checked",
            impl="a",
            index=0,
            status="timeout",
            code="OL901",
            preresolved=True,
        )
        report = analyze_journal(journal.records)
        assert report["statuses"] == {"timeout": 2} or report["statuses"] == {
            "timeout": 1
        }
        assert report["faults"]["by_code"]["OL901"] == 1

    def test_journal_trace_of_synthetic_run_validates(self):
        journal = _synthetic_fleet_journal()
        payload = obs.journal_chrome_trace(journal.records)
        assert obs.validate_chrome_trace(payload) is None
        spans = [
            e
            for e in payload["traceEvents"]
            if e.get("ph") == "X" and e.get("cat") == "implementation"
        ]
        assert len(spans) == 3
        assert {e["args"]["worker"] for e in spans} == {
            "remote-1",
            "remote-2",
        }


class TestClockAlignment:
    def test_same_host_offset_is_negligible(self):
        assert abs(clock_offset(clock_sample())) < 0.5

    def test_absorb_rebases_remote_domains(self):
        tracer = obs.Tracer()
        # A remote perf domain wildly different from ours: spans at
        # 1e6 seconds land near our origin after rebasing.
        remote_start = 1_000_000.0
        shift = (tracer.origin + 0.5) - remote_start
        exported = [
            {
                "name": "prove",
                "category": "implementation",
                "start": remote_start,
                "end": remote_start + 0.25,
                "parent": None,
                "args": {},
                "error": None,
            }
        ]
        tracer.absorb(exported, offset=shift)
        span = tracer.spans[-1]
        assert span.start >= tracer.origin
        assert abs(span.start - (tracer.origin + 0.5)) < 1e-6
        assert abs((span.end - span.start) - 0.25) < 1e-6
        assert obs.validate_chrome_trace(obs.chrome_trace(tracer)) is None

    def test_absorb_clamps_jitter_at_origin(self):
        tracer = obs.Tracer()
        exported = [
            {
                "name": "early",
                "category": "implementation",
                "start": tracer.origin - 10.0,
                "end": tracer.origin - 9.0,
                "parent": None,
                "args": {},
                "error": None,
            }
        ]
        # A nonzero offset that still lands the span before our origin
        # (clock skew mis-estimated): the span is clamped, never
        # negative in the trace.
        tracer.absorb(exported, offset=1.0)
        span = tracer.spans[-1]
        assert span.start == tracer.origin
        assert span.end == span.start
        payload = obs.chrome_trace(tracer)
        assert obs.validate_chrome_trace(payload) is None
        assert all(e.get("ts", 0) >= 0 for e in payload["traceEvents"])


class TestGoldenFleetReport:
    """The acceptance-criteria run: external 4-worker pool, planted
    OL901 + OL902 faults, cache degradation (OL904)."""

    @pytest.fixture(scope="class")
    def golden(self):
        scope = _farm_scope(impls=8, fields=4)
        port = _free_port()
        pool = WorkerPool(("127.0.0.1", port), jobs=4)
        pool.start()
        plan = FaultPlan(
            (
                Fault("worker-hang", "raise", hit=0),  # job 0 -> OL901
                Fault("worker-kill", "raise", hit=1),  # job 1 -> OL902
            )
        )
        journal = obs.EventJournal()
        tracer = obs.Tracer()
        try:
            with obs.journaling(journal), obs.tracing(tracer), inject(plan):
                report = check_scope(
                    scope,
                    LIMITS,
                    fleet=_fleet_fast(
                        workers=0,
                        address=("127.0.0.1", port),
                        lease_duration=30.0,
                        max_retries=0,
                    ),
                    job_timeout=0.5,
                    max_retries=0,
                    # Nobody listens here: the run degrades the shared
                    # cache with OL904 but keeps checking on the fleet.
                    cache_url="127.0.0.1:1",
                )
        finally:
            pool.stop()
        return scope, journal, tracer, report

    def test_journal_validates(self, golden):
        _, journal, _, _ = golden
        assert obs.validate_event_journal(journal.records) == []

    def test_report_counts_match_checkreport(self, golden):
        _, journal, _, report = golden
        analyzed = analyze_journal(journal.records)
        assert obs.validate_events_report(analyzed) == []
        ol901 = sum(
            1
            for v in report.verdicts
            if v.error is not None and v.error.code == "OL901"
        )
        ol902 = sum(
            1
            for v in report.verdicts
            if v.error is not None and v.error.code == "OL902"
        )
        ol903 = sum(1 for d in report.diagnostics if d.code == "OL903")
        ol904 = sum(1 for d in report.diagnostics if d.code == "OL904")
        assert ol901 >= 1 and ol902 >= 1 and ol904 >= 1
        assert analyzed["faults"]["by_code"] == {
            "OL901": ol901,
            "OL902": ol902,
            "OL903": ol903,
            "OL904": ol904,
        }
        assert analyzed["backend"] == "fleet"
        assert analyzed["impls"] == len(report.verdicts)

    def test_report_names_critical_path_and_utilization(self, golden):
        _, journal, _, _ = golden
        analyzed = analyze_journal(journal.records)
        chain = analyzed["critical_path"]["chain"]
        assert chain, "critical path must be non-empty for a fleet run"
        assert all(link["impl"] for link in chain)
        assert analyzed["critical_path"]["seconds"] > 0
        workers = analyzed["workers"]
        assert workers, "per-worker utilization must be reported"
        assert sum(row["jobs"] for row in workers) >= len(chain)
        assert any(row["busy_seconds"] > 0 for row in workers)

    def test_text_rendering_shows_fault_rows(self, golden):
        _, journal, _, _ = golden
        text = obs.render_report_text(analyze_journal(journal.records))
        assert "[OL901] job-hard-timeout" in text
        assert "[OL902] job-quarantined" in text
        assert "[OL904] degraded" in text
        assert "critical path" in text
        assert "workers" in text

    def test_journal_trace_export_validates(self, golden):
        _, journal, _, _ = golden
        payload = obs.journal_chrome_trace(journal.records)
        assert obs.validate_chrome_trace(payload) is None
        lanes = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        }
        assert any(lane.startswith("worker remote-") for lane in lanes)

    def test_assembled_tracer_trace_is_rebased(self, golden):
        """Remote worker spans (shipped through the clock-offset
        handshake) assemble into one coherent, valid trace."""
        _, _, tracer, _ = golden
        payload = obs.chrome_trace(tracer)
        assert obs.validate_chrome_trace(payload) is None
        spans = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        assert all(e["ts"] >= 0 for e in spans)
        assert all(e["dur"] >= 0 for e in spans)
        # The shipped worker spans really came home: job spans have
        # children absorbed from the remote tracers.
        impl_spans = [s for s in tracer.spans if s.category == "implementation"]
        assert impl_spans
        assert all(s.start >= tracer.origin for s in tracer.spans)


class TestFuzzedReports:
    @pytest.mark.parametrize("seed", range(SEED_OFFSET, SEED_OFFSET + 3))
    def test_report_never_crashes_on_faulted_journals(self, seed):
        scope = _farm_scope()
        plan = FaultPlan.fuzz(
            seed, stages=SUPERVISOR_STAGES + FLEET_STAGES, max_hit=3
        )
        journal = obs.EventJournal()
        with obs.journaling(journal), inject(plan):
            check_scope(scope, LIMITS, fleet=_fleet_fast())
        detail = f"seed {seed}: {plan.describe()}"
        assert obs.validate_event_journal(journal.records) == [], detail
        report = analyze_journal(journal.records)
        assert obs.validate_events_report(report) == [], detail
        text = obs.render_report_text(report)
        assert report["run_id"] in text, detail
        payload = obs.journal_chrome_trace(journal.records)
        assert obs.validate_chrome_trace(payload) is None, detail


class TestCliEvents:
    def _journal_file(self, tmp_path):
        journal = _synthetic_fleet_journal()
        path = tmp_path / "events.jsonl"
        journal.write(str(path))
        return str(path), journal.run_id

    def test_report_text_to_stdout(self, tmp_path, capsys):
        path, run_id = self._journal_file(tmp_path)
        assert main(["events", "report", path]) == 0
        out = capsys.readouterr().out
        assert run_id in out
        assert "critical path" in out

    def test_report_json_validates(self, tmp_path, capsys):
        path, _ = self._journal_file(tmp_path)
        assert main(["events", "report", path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert obs.validate_events_report(payload) == []

    def test_report_out_file_and_run_selection(self, tmp_path, capsys):
        path, run_id = self._journal_file(tmp_path)
        out_path = tmp_path / "report.json"
        assert (
            main(
                [
                    "events",
                    "report",
                    path,
                    "--format",
                    "json",
                    "--run",
                    run_id,
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["run_id"] == run_id

    def test_export_trace(self, tmp_path, capsys):
        path, _ = self._journal_file(tmp_path)
        trace_path = tmp_path / "trace.json"
        assert (
            main(["events", "export", path, "--trace", str(trace_path)]) == 0
        )
        capsys.readouterr()
        payload = json.loads(trace_path.read_text())
        assert obs.validate_chrome_trace(payload) is None

    def test_error_paths_exit_2(self, tmp_path, capsys):
        path, _ = self._journal_file(tmp_path)
        assert main(["events", "report", str(tmp_path / "nope.jsonl")]) == 2
        assert main(["events", "export", path]) == 2  # missing --trace
        assert main(["events", "report", path, "--run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_report_on_real_fleet_run(self, tmp_path, capsys):
        source = tmp_path / "farm.oolong"
        source.write_text(generate_impl_farm(4, 3))
        events = tmp_path / "events.jsonl"
        out = io.StringIO()
        with redirect_stdout(out):
            rc = main(
                [
                    str(source),
                    "--events",
                    str(events),
                    "--fleet",
                    "2",
                    "--time-budget",
                    "120",
                ]
            )
        assert rc == 0
        assert main(["events", "report", str(events)]) == 0
        text = capsys.readouterr().out
        assert "backend=fleet" in text
        assert "critical path" in text
