"""Tests for the high-level package API and report objects."""

import pytest

from repro import CheckReport, check_program, parse_program
from repro.errors import ParseError, WellFormednessError
from repro.prover.core import Limits
from repro.vcgen.checker import ImplStatus

LIMITS = Limits(time_budget=60.0)


class TestParseProgram:
    def test_returns_validated_scope(self):
        scope = parse_program("group g\nfield f in g")
        assert scope.is_group("g")

    def test_rejects_syntax_errors(self):
        with pytest.raises(ParseError):
            parse_program("group")

    def test_rejects_ill_formed(self):
        with pytest.raises(WellFormednessError):
            parse_program("field f in nowhere")


class TestCheckProgram:
    GOOD = """
    group g
    field f in g
    proc p(t) modifies t.g
    impl p(t) { assume t != null ; t.f := 1 }
    """

    def test_ok_report(self):
        report = check_program(self.GOOD, LIMITS)
        assert report.ok
        assert isinstance(report, CheckReport)
        assert report.elapsed > 0

    def test_verdict_lookup_by_name(self):
        report = check_program(self.GOOD, LIMITS)
        assert report.verdict_for("p").status is ImplStatus.VERIFIED
        assert report.verdict_for("missing") is None

    def test_verdict_lookup_by_index(self):
        source = self.GOOD + "\nimpl p(t) { skip }"
        report = check_program(source, LIMITS)
        assert report.verdict_for("p", 0) is not None
        assert report.verdict_for("p", 1) is not None
        assert report.verdict_for("p", 2) is None

    def test_describe_lists_every_impl(self):
        source = self.GOOD + "\nimpl p(t) { skip }"
        text = check_program(source, LIMITS).describe()
        assert "p#0" in text and "p#1" in text
        assert text.endswith("OK")

    def test_lazy_attribute_error(self):
        import repro

        with pytest.raises(AttributeError):
            repro.not_a_real_symbol

    def test_version_present(self):
        import repro

        assert repro.__version__

    def test_report_not_ok_on_any_failure(self):
        source = self.GOOD + "\nproc q(t)\nimpl q(t) { assert false }"
        report = check_program(source, LIMITS)
        assert not report.ok
        assert report.verdict_for("p").ok
        assert not report.verdict_for("q").ok

    def test_empty_program_is_ok(self):
        report = check_program("", LIMITS)
        assert report.ok
        assert report.verdicts == []
