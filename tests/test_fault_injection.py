"""The fault-injection harness and the resilience invariants it enforces.

Two layers of tests:

* **Direct** — a specific fault at a specific stage produces the exact
  degradation the design promises (one INTERNAL_ERROR verdict, an OL900
  warning, TIMED_OUT for starved implementations, ...).
* **Fuzzed** — for a matrix of seeded plans (the CI job sweeps seed
  offsets via ``FAULT_SEED_OFFSET``), the driver always terminates
  within its deadline, reports a verdict for every implementation,
  healthy implementations keep their true verdicts, and the report
  renders in both text and JSON.
"""

import json
import os
import time

import pytest

from repro.corpus.programs import STACK_VECTOR
from repro.oolong.program import Scope
from repro.prover.core import Limits
from repro.testing.faults import (
    ACTIONS,
    STAGES,
    Corrupted,
    Fault,
    FaultError,
    FaultPlan,
    fault_point,
    inject,
)
from repro.vcgen.checker import ImplStatus, check_scope

#: Stages exercised *inside* ``check_scope`` (the frontend stages are
#: driven separately through ``check_program_resilient``).
CHECK_STAGES = ("wellformed", "pivot", "lint", "vcgen", "prove")

#: Seeds swept per run; CI shifts the window with FAULT_SEED_OFFSET.
SEED_OFFSET = int(os.environ.get("FAULT_SEED_OFFSET", "0"))
SEEDS = range(SEED_OFFSET, SEED_OFFSET + 25)

#: Injected delays stay far under this scope budget so the cooperative
#: deadline remains observable despite uninterruptible sleeps.
SCOPE_BUDGET = 20.0
MAX_DELAY = 0.02

LIMITS = Limits(time_budget=60.0, scope_time_budget=SCOPE_BUDGET)


@pytest.fixture(scope="module")
def stack_scope():
    return Scope.from_source(STACK_VECTOR)


@pytest.fixture(scope="module")
def baseline(stack_scope):
    report = check_scope(stack_scope, Limits(time_budget=60.0))
    return {
        (v.impl.name, v.index): v.status for v in report.verdicts
    }


class TestHarness:
    def test_inactive_fault_point_is_identity(self):
        sentinel = object()
        assert fault_point("prove", sentinel) is sentinel
        assert fault_point("lex") is None

    def test_fuzz_is_deterministic(self):
        assert FaultPlan.fuzz(42) == FaultPlan.fuzz(42)
        assert FaultPlan.fuzz(42) != FaultPlan.fuzz(43)

    def test_fuzz_respects_stage_restriction(self):
        for seed in range(50):
            plan = FaultPlan.fuzz(seed, stages=CHECK_STAGES)
            assert all(f.stage in CHECK_STAGES for f in plan.faults)

    def test_unknown_stage_and_action_rejected(self):
        with pytest.raises(ValueError):
            Fault("frobnicate", "raise")
        with pytest.raises(ValueError):
            Fault("prove", "explode")

    def test_corrupted_poisons_every_use(self):
        poison = Corrupted("prove#0")
        with pytest.raises(FaultError):
            poison.verdict
        with pytest.raises(FaultError):
            bool(poison)

    def test_nested_injection_rejected(self):
        with inject(FaultPlan()):
            with pytest.raises(RuntimeError):
                with inject(FaultPlan()):
                    pass

    def test_injector_counts_and_fires(self):
        plan = FaultPlan((Fault("prove", "raise", hit=1),))
        with inject(plan) as injector:
            assert fault_point("prove", "first") == "first"
            with pytest.raises(FaultError):
                fault_point("prove", "second")
        assert injector.counts["prove"] == 2
        assert injector.fired == [("prove", 1, "raise")]

    def test_plan_describe_names_faults(self):
        plan = FaultPlan(
            (Fault("lint", "raise"), Fault("prove", "delay", hit=2, delay=0.5))
        )
        assert plan.describe() == "raise@lint#0, delay@prove#2(0.500s)"


class TestDirectIsolation:
    def test_prover_crash_isolates_to_one_impl(self, stack_scope, baseline):
        with inject(FaultPlan((Fault("prove", "raise", hit=1),))):
            report = check_scope(stack_scope, LIMITS)
        statuses = [v.status for v in report.verdicts]
        assert statuses.count(ImplStatus.INTERNAL_ERROR) == 1
        victim = report.verdicts[1]
        assert victim.status is ImplStatus.INTERNAL_ERROR
        assert victim.error is not None and victim.error.code == "OL900"
        assert "FaultError" in victim.error.message
        assert victim.error.notes  # captured traceback rides along
        for verdict in report.verdicts:
            if verdict is not victim:
                assert verdict.status is baseline[
                    (verdict.impl.name, verdict.index)
                ]
        assert not report.ok

    def test_vcgen_corruption_isolates_to_one_impl(self, stack_scope, baseline):
        with inject(FaultPlan((Fault("vcgen", "corrupt", hit=0),))):
            report = check_scope(stack_scope, LIMITS)
        assert report.verdicts[0].status is ImplStatus.INTERNAL_ERROR
        for verdict in report.verdicts[1:]:
            assert verdict.status is baseline[(verdict.impl.name, verdict.index)]

    def test_lint_crash_degrades_to_warning(self, stack_scope, baseline):
        with inject(FaultPlan((Fault("lint", "raise", hit=0),))):
            report = check_scope(stack_scope, LIMITS)
        warnings = [d for d in report.diagnostics if d.code == "OL900"]
        assert len(warnings) == 1
        assert warnings[0].severity.value == "warning"
        assert "lint pre-filter" in warnings[0].message
        # advisory-pass crash never changes verdicts or the overall outcome
        assert all(
            v.status is baseline[(v.impl.name, v.index)] for v in report.verdicts
        )
        assert report.ok

    def test_pivot_crash_degrades_to_warning(self, stack_scope):
        with inject(FaultPlan((Fault("pivot", "raise", hit=0),))):
            report = check_scope(stack_scope, LIMITS)
        warnings = [d for d in report.diagnostics if d.code == "OL900"]
        assert any("pivot" in w.message for w in warnings)
        assert len(report.verdicts) == 3

    def test_wellformed_crash_degrades_to_warning(self, stack_scope):
        with inject(FaultPlan((Fault("wellformed", "raise", hit=0),))):
            report = check_scope(stack_scope, LIMITS)
        warnings = [d for d in report.diagnostics if d.code == "OL900"]
        assert warnings and len(report.verdicts) == 3

    def test_scope_deadline_starves_gracefully(self, stack_scope):
        # a "hang" (delay) during the first proof exhausts the scope
        # budget: later impls must report TIMED_OUT, not block
        plan = FaultPlan((Fault("prove", "delay", hit=0, delay=0.2),))
        limits = Limits(time_budget=60.0, scope_time_budget=0.1)
        start = time.monotonic()
        with inject(plan):
            report = check_scope(stack_scope, limits)
        elapsed = time.monotonic() - start
        assert elapsed < 5.0
        assert len(report.verdicts) == 3
        late = report.verdicts[1:]
        assert all(v.status is ImplStatus.TIMED_OUT for v in late)
        for verdict in late:
            assert verdict.error is not None
            assert verdict.error.code == "OL901"
        assert not report.ok

    def test_zero_scope_budget_times_out_everything(self, stack_scope):
        report = check_scope(
            stack_scope, Limits(time_budget=60.0, scope_time_budget=0.0)
        )
        assert [v.status for v in report.verdicts] == [ImplStatus.TIMED_OUT] * 3
        assert report.elapsed < 1.0

    def test_timed_out_renders_in_text_and_json(self, stack_scope):
        report = check_scope(
            stack_scope, Limits(time_budget=60.0, scope_time_budget=0.0)
        )
        text = report.describe()
        assert "timed out" in text and text.endswith("FAILED")
        data = json.loads(json.dumps(report.to_dict()))
        assert all(v["status"] == "timed out" for v in data["verdicts"])
        assert all(v["error"]["code"] == "OL901" for v in data["verdicts"])


def _assert_well_formed_report(report):
    text = report.describe()
    assert isinstance(text, str)
    assert text.splitlines()[-1] in ("OK", "FAILED")
    json.dumps(report.to_dict())  # must be JSON-serializable end to end


class TestFuzzedPlans:
    """The acceptance invariants, over a seeded plan matrix."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_check_scope_survives_any_plan(self, seed, stack_scope, baseline):
        plan = FaultPlan.fuzz(
            seed, stages=CHECK_STAGES, max_faults=3, max_delay=MAX_DELAY
        )
        start = time.monotonic()
        with inject(plan) as injector:
            report = check_scope(stack_scope, LIMITS)
        elapsed = time.monotonic() - start
        context = f"seed={seed} plan=[{plan.describe()}] fired={injector.fired}"

        # terminates within the scope deadline (plus injected sleeps and
        # slack: sleeps are uninterruptible, the deadline is cooperative)
        budget = SCOPE_BUDGET + 3 * MAX_DELAY + 5.0
        assert elapsed < budget, context

        # a verdict for every implementation, none lost
        assert len(report.verdicts) == 3, context

        # healthy impls keep their true verdicts
        for verdict in report.verdicts:
            if verdict.status in (
                ImplStatus.INTERNAL_ERROR,
                ImplStatus.TIMED_OUT,
            ):
                continue
            assert verdict.status is baseline[
                (verdict.impl.name, verdict.index)
            ], context + f" impl={verdict.impl.name}#{verdict.index}"

        _assert_well_formed_report(report)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_full_pipeline_never_raises(self, seed):
        from repro.api import check_program_resilient

        plan = FaultPlan.fuzz(
            seed, stages=STAGES, max_faults=3, max_delay=MAX_DELAY
        )
        with inject(plan):
            report = check_program_resilient(STACK_VECTOR, LIMITS)
        _assert_well_formed_report(report)

    @pytest.mark.parametrize("action", ACTIONS)
    @pytest.mark.parametrize("stage", STAGES)
    def test_every_stage_action_pair_is_contained(self, stage, action):
        from repro.api import check_program_resilient

        plan = FaultPlan(
            (Fault(stage, action, hit=0, delay=0.01 if action == "delay" else 0.0),)
        )
        with inject(plan) as injector:
            report = check_program_resilient(STACK_VECTOR, LIMITS)
        assert injector.fired, f"{stage}/{action} never fired"
        _assert_well_formed_report(report)
        if action == "delay":
            # a pure delay must not change the outcome at this budget
            assert report.ok


class TestResilientApiFrontend:
    def test_syntax_errors_become_fatal_diagnostics(self):
        from repro.api import check_program_resilient

        report = check_program_resilient("group value\nfield 1 in value\n")
        assert not report.ok
        assert [d.code for d in report.fatal] == ["OL002"]
        assert report.verdicts == []
        _assert_well_formed_report(report)

    def test_multiple_syntax_errors_all_reported(self):
        from repro.api import check_program_resilient

        report = check_program_resilient("group 1\nfield 2\nproc p(t)\n")
        assert len(report.fatal) == 2
        assert {d.code for d in report.fatal} == {"OL002"}

    def test_clean_program_still_verifies(self):
        from repro.api import check_program_resilient
        from repro.corpus.programs import RATIONAL

        report = check_program_resilient(RATIONAL, Limits(time_budget=60.0))
        assert report.ok
        assert [v.status for v in report.verdicts] == [ImplStatus.VERIFIED]

    def test_ill_formed_scope_becomes_fatal(self):
        from repro.api import check_program_resilient

        report = check_program_resilient("field f in missing\n")
        assert not report.ok
        assert [d.code for d in report.fatal] == ["OL100"]
