"""Tests for SARIF rendering and the CLI surface of static discharge.

Covers the static-discharge PR's reporting layer:

* the SARIF v2.1.0 document structure (schema, rules, levels, physical
  locations, relatedLocations for blame notes);
* ``oolong-check --format sarif`` and ``oolong-lint --format sarif``;
* ``--static-discharge`` / ``--check-discharge`` on the CLI;
* ``--fail-on`` accepting OLxxx codes and rule aliases, and rejecting
  unknown codes with a clear parse-time error.
"""

import json

import pytest

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    Note,
    Severity,
)
from repro.analysis.sarif import (
    SARIF_VERSION,
    render_report_sarif,
    render_sarif,
    sarif_log,
)
from repro.api import check_program
from repro.cli import build_lint_parser, build_parser, lint_main, main
from repro.corpus.programs import RATIONAL
from repro.errors import SourcePosition
from repro.prover.core import Limits

BAD_WRITE = """
group w
field cnt in w
field outside
proc trim(t) modifies t.w
impl trim(t) {
  assume t != null ;
  t.cnt := 0 ;
  t.outside := 1
}
"""

LIMITS = ["--time-budget", "60"]


# ----------------------------------------------------------------------
# Document structure
# ----------------------------------------------------------------------


class TestSarifDocument:
    def test_skeleton(self):
        log = sarif_log([])
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "oolong-check"
        assert run["results"] == []

    def test_every_code_is_a_rule(self):
        (run,) = sarif_log([])["runs"]
        rules = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert rules == set(CODES)

    def test_levels_map_severities(self):
        (run,) = sarif_log([])["runs"]
        levels = {
            rule["id"]: rule["defaultConfiguration"]["level"]
            for rule in run["tool"]["driver"]["rules"]
        }
        assert levels["OL401"] == "error"
        assert levels["OL201"] == "warning"
        assert levels["OL403"] == "note"

    def test_result_carries_location_and_notes(self):
        diag = Diagnostic(
            code="OL401",
            message="frame obligation refuted statically",
            position=SourcePosition(line=9, column=3, file="bad.oolong"),
            impl="trim",
            notes=(
                Note(
                    "declared t.w: no declared inclusion chain",
                    SourcePosition(line=5, column=1, file="bad.oolong"),
                ),
            ),
        )
        (run,) = sarif_log([diag])["runs"]
        (result,) = run["results"]
        assert result["ruleId"] == "OL401"
        assert result["level"] == "error"
        assert "impl trim:" in result["message"]["text"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 9, "startColumn": 3}
        assert (
            result["locations"][0]["physicalLocation"]["artifactLocation"][
                "uri"
            ]
            == "bad.oolong"
        )
        (related,) = result["relatedLocations"]
        assert "inclusion chain" in related["message"]["text"]

    def test_render_is_valid_json(self):
        parsed = json.loads(render_sarif([]))
        assert parsed["version"] == "2.1.0"


ASSERT_FAIL = """
field f
proc check_it(o)
impl check_it(o) {
  assume o != null ;
  assert o.f = 1
}
"""


class TestReportSarif:
    def test_failed_verdict_becomes_ol310(self):
        """A NOT_PROVED verdict with no diagnostic naming its impl gets
        a synthesized OL310 result."""
        report = check_program(ASSERT_FAIL, Limits(time_budget=60.0))
        assert not report.diagnostics
        document = json.loads(render_report_sarif(report))
        (run,) = document["runs"]
        assert any(
            result["ruleId"] == "OL310" for result in run["results"]
        )

    def test_discharge_diagnostics_ride_along(self):
        report = check_program(
            BAD_WRITE, Limits(time_budget=60.0), static_discharge="on"
        )
        document = json.loads(render_report_sarif(report))
        (run,) = document["runs"]
        rules = [result["ruleId"] for result in run["results"]]
        assert "OL401" in rules
        # The OL401 already names the impl, so no duplicate OL310.
        assert "OL310" not in rules


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestCliSarif:
    def test_check_format_sarif(self, tmp_path, capsys):
        path = tmp_path / "good.oolong"
        path.write_text(RATIONAL)
        assert main([str(path), "--format", "sarif"] + LIMITS) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"

    def test_check_format_sarif_failing(self, tmp_path, capsys):
        path = tmp_path / "bad.oolong"
        path.write_text(BAD_WRITE)
        assert main([str(path), "--format", "sarif"] + LIMITS) == 1
        document = json.loads(capsys.readouterr().out)
        (run,) = document["runs"]
        assert run["results"]

    def test_lint_format_sarif(self, tmp_path, capsys):
        path = tmp_path / "good.oolong"
        path.write_text(RATIONAL)
        lint_main([str(path), "--format", "sarif"])
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"


class TestCliStaticDischarge:
    def test_flag_defaults_off(self):
        args = build_parser().parse_args(["x.oolong"])
        assert args.static_discharge == "off"
        assert not args.check_discharge

    def test_discharge_run_matches_plain_run(self, tmp_path, capsys):
        path = tmp_path / "bad.oolong"
        path.write_text(BAD_WRITE)
        plain = main([str(path)] + LIMITS)
        capsys.readouterr()
        discharged = main(
            [str(path), "--static-discharge", "on"] + LIMITS
        )
        out = capsys.readouterr().out
        assert discharged == plain == 1
        assert "OL401" in out

    def test_check_discharge_flag(self, tmp_path, capsys):
        path = tmp_path / "bad.oolong"
        path.write_text(BAD_WRITE)
        assert main([str(path), "--check-discharge"] + LIMITS) == 1
        assert "OL402" not in capsys.readouterr().out


class TestFailOnCodes:
    def test_severities_still_accepted(self):
        args = build_parser().parse_args(["x.oolong", "--fail-on", "warning"])
        assert args.fail_on == "warning"

    def test_codes_accepted(self):
        args = build_parser().parse_args(
            ["x.oolong", "--fail-on", "OL401,OL402"]
        )
        assert args.fail_on == "OL401,OL402"

    def test_aliases_accepted(self):
        args = build_parser().parse_args(
            ["x.oolong", "--fail-on", "static-refuted"]
        )
        assert args.fail_on == "static-refuted"

    def test_unknown_code_is_a_parse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["x.oolong", "--fail-on", "OL999"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "OL999" in err and "known codes" in err

    def test_lint_parser_validates_too(self, capsys):
        with pytest.raises(SystemExit):
            build_lint_parser().parse_args(["x.oolong", "--fail-on", "bogus"])

    def test_fail_on_code_gates_exit(self, tmp_path, capsys):
        path = tmp_path / "bad.oolong"
        path.write_text(BAD_WRITE)
        # OL401 fires only with discharge on; gating on it alone ignores
        # the OL310-worthy failure in text mode (exit reflects verdicts
        # separately), but the diagnostic gate must trip exactly when
        # the code is present.
        with_code = main(
            [
                str(path),
                "--static-discharge",
                "on",
                "--fail-on",
                "OL401",
            ]
            + LIMITS
        )
        assert with_code == 1
        capsys.readouterr()

    def test_fail_on_unrelated_code_passes_clean_program(
        self, tmp_path, capsys
    ):
        path = tmp_path / "good.oolong"
        path.write_text(RATIONAL)
        assert (
            main([str(path), "--fail-on", "OL401"] + LIMITS) == 0
        )
