"""Unit tests for weakest-liberal-precondition generation (Figures 2-3)."""

import pytest

from repro.logic.nnf import FreshNames
from repro.logic.subst import formula_free_vars
from repro.logic.terms import (
    And,
    App,
    Const,
    Eq,
    Forall,
    Implies,
    IntLit,
    Not,
    Or,
    Pred,
    TrueF,
    Var,
)
from repro.oolong.parser import parse_command
from repro.oolong.program import Scope
from repro.vcgen.translate import TranslationContext
from repro.vcgen.vocab import attr_const, entry_store, new, sel, succ, upd
from repro.vcgen.wlp import WlpContext, wlp

SCOPE_SRC = """
group g
field f in g
field h
proc self(t) modifies t.g
proc callee(u) modifies u.g
proc silent(u)
"""


def make_wctx(scope_src=SCOPE_SRC, proc_name="self"):
    scope = Scope.from_source(scope_src)
    proc = scope.proc(proc_name)
    ctx = TranslationContext(env={p: Const(p) for p in proc.params})
    return WlpContext(scope=scope, proc=proc, ctx=ctx, entry_store=entry_store())


def wlp_of(command_text, post=TrueF(), wctx=None):
    wctx = wctx or make_wctx()
    return wlp(parse_command(command_text), post, wctx)


STORE = Var("$")
Q = Pred("Q", (Var("$"),))


def unmarked(formula):
    """Drop the inert @obligation marker atoms from a conjunction."""
    from repro.logic.terms import OBLIGATION_MARKER, conj

    if isinstance(formula, And):
        kept = tuple(
            c
            for c in formula.conjuncts
            if not (isinstance(c, Pred) and c.name == OBLIGATION_MARKER)
        )
        return conj(kept)
    return formula


class TestBasicCommands:
    def test_skip(self):
        assert wlp_of("skip", Q) == Q

    def test_assert_conjoins(self):
        result = wlp_of("assert t != null", Q)
        assert isinstance(result, And)
        assert result.conjuncts[-1] == Q

    def test_assume_implies(self):
        result = wlp_of("assume t != null", Q)
        assert isinstance(result, Implies)
        assert result.consequent == Q

    def test_seq_composes_backwards(self):
        # wlp(x:=1 ; assert x=1, true) substitutes before asserting.
        result = wlp_of("var x in x := 1 ; assert x = 1 end")
        assert unmarked(result.body) == Eq(IntLit(1), IntLit(1))

    def test_choice_is_conjunction(self):
        result = wlp_of("skip [] skip", Q)
        assert result == And((Q, Q))

    def test_var_quantifies(self):
        result = wlp_of("var x in skip end", Q)
        assert result == Forall(("x",), Q)

    def test_local_assign_substitutes(self):
        post = Pred("P", (Var("x"),))
        result = wlp_of("var x in x := 5 end", post)
        assert result == Forall(("x",), Pred("P", (IntLit(5),)))


class TestHeapCommands:
    def test_field_write_licence_and_update(self):
        post = Pred("P", (STORE,))
        result = wlp_of("t.f := 1", post)
        # guard => (marker & mod & P[upd])
        assert isinstance(result, Implies)
        body = unmarked(result.consequent)
        licence, updated = body.conjuncts
        assert isinstance(licence, Or)  # mod = !alive | incl
        expected_store = upd(STORE, Const("t"), attr_const("f"), IntLit(1))
        assert updated == Pred("P", (expected_store,))

    def test_field_write_licence_against_entry_store(self):
        result = wlp_of("t.f := 1", Q)
        licence = unmarked(result.consequent).conjuncts[0]
        inc_atom = licence.disjuncts[1]
        assert inc_atom.args[0] == entry_store()

    def test_local_alloc_simultaneous_substitution(self):
        post = Pred("P", (Var("x"), STORE))
        result = wlp_of("var x in x := new() end", post)
        assert result == Forall(("x",), Pred("P", (new(STORE), succ(STORE))))

    def test_field_alloc_allocates_then_writes(self):
        post = Pred("P", (STORE,))
        result = wlp_of("t.f := new()", post)
        updated = unmarked(result.consequent).conjuncts[1]
        expected = upd(succ(STORE), Const("t"), attr_const("f"), new(STORE))
        assert updated == Pred("P", (expected,))

    def test_welldef_guard_on_read(self):
        result = wlp_of("var x in x := t.f end", TrueF())
        inner = result.body
        assert isinstance(inner, Implies)
        premise = inner.antecedent
        assert Not(Eq(Const("t"), Const("null"))) in premise.conjuncts


class TestCalls:
    def test_call_emits_caller_licence(self):
        result = unmarked(wlp_of("callee(t)", Q))
        licence = result.conjuncts[0]
        assert isinstance(licence, Or)
        # callee may modify t.g; caller's own list is t.g — inc(…t g t g).
        inc_atom = licence.disjuncts[1]
        assert inc_atom.name == "inc"
        assert inc_atom.args[1:] == (
            Const("t"),
            attr_const("g"),
            Const("t"),
            attr_const("g"),
        )

    def test_call_emits_owner_exclusion(self):
        result = unmarked(wlp_of("callee(t)", Q))
        own = result.conjuncts[1]
        assert isinstance(own, Forall)
        assert own.name == "ownExcl"

    def test_call_to_silent_proc_has_no_licence_or_ownexcl(self):
        result = wlp_of("silent(t)", Q)
        # Only the frame quantifier remains.
        assert isinstance(result, Forall)
        assert isinstance(result.body, Implies)

    def test_frame_shifts_post_to_fresh_store(self):
        result = wlp_of("silent(t)", Q)
        post_store = result.vars[0]
        shifted = result.body.consequent
        assert shifted == Pred("Q", (Var(post_store),))

    def test_frame_carries_named_quantifiers(self):
        result = wlp_of("silent(t)", Q)
        frame = result.body.antecedent
        names = {q.name for q in frame.conjuncts}
        assert names == {"call-frame-alive", "call-frame-sel"}

    def test_naive_mode_drops_owner_exclusion(self):
        wctx = make_wctx()
        wctx.owner_exclusion = False
        result = wlp(parse_command("callee(t)"), Q, wctx)
        assert not any(
            isinstance(c, Forall) and c.name == "ownExcl"
            for c in (result.conjuncts if isinstance(result, And) else [result])
        )

    def test_actuals_substituted_into_callee_modifies(self):
        # callee's u.g with actual t.h: designator owner is sel($, t, h).
        result = wlp_of("callee(t.h)", Q)
        body = result.consequent if isinstance(result, Implies) else result
        licence = unmarked(body).conjuncts[0]
        inc_atom = licence.disjuncts[1]
        assert inc_atom.args[3] == sel(STORE, Const("t"), attr_const("h"))


class TestClosedness:
    def test_wlp_is_closed_after_store_substitution(self):
        from repro.logic.subst import subst_formula

        for text in (
            "t.f := 1",
            "var x in x := t.f ; callee(t) ; assert x = t.f end",
            "t.f := new() [] skip",
        ):
            formula = wlp_of(text)
            closed = subst_formula(formula, {"$": entry_store()})
            assert formula_free_vars(closed) == frozenset(), text
