"""Tests for the runtime inclusion-closure computation."""

from repro.oolong.program import Scope
from repro.semantics.inclusion import included_locations, location_covered
from repro.semantics.store import ObjRef, RuntimeStore


def setup_stack():
    scope = Scope.from_source(
        """
        group contents
        group elems
        field cnt in elems
        field data in elems
        field vec in contents maps elems into contents
        field other
        """
    )
    store = RuntimeStore()
    stack, vector = store.allocate(), store.allocate()
    store.write(stack, "vec", vector)
    return scope, store, stack, vector


class TestLocalInclusions:
    def test_group_covers_included_fields(self):
        scope = Scope.from_source("group g\nfield a in g\nfield b in g\nfield c")
        store = RuntimeStore()
        obj = store.allocate()
        covered = included_locations(scope, store, obj, "g")
        assert (obj, "a") in covered
        assert (obj, "b") in covered
        assert (obj, "c") not in covered

    def test_reflexive(self):
        scope = Scope.from_source("field f")
        store = RuntimeStore()
        obj = store.allocate()
        assert (obj, "f") in included_locations(scope, store, obj, "f")

    def test_transitive_groups(self):
        scope = Scope.from_source(
            "group outer\ngroup inner in outer\nfield f in inner"
        )
        store = RuntimeStore()
        obj = store.allocate()
        covered = included_locations(scope, store, obj, "outer")
        assert (obj, "f") in covered
        assert (obj, "inner") in covered

    def test_field_covers_only_itself(self):
        scope = Scope.from_source("group g\nfield f in g")
        store = RuntimeStore()
        obj = store.allocate()
        assert included_locations(scope, store, obj, "f") == {(obj, "f")}


class TestRepInclusions:
    def test_pivot_extends_to_target_object(self):
        scope, store, stack, vector = setup_stack()
        covered = included_locations(scope, store, stack, "contents")
        assert (vector, "cnt") in covered
        assert (vector, "data") in covered
        assert (vector, "elems") in covered

    def test_pivot_does_not_cover_unrelated_fields(self):
        scope, store, stack, vector = setup_stack()
        covered = included_locations(scope, store, stack, "contents")
        assert (vector, "other") not in covered
        assert (stack, "other") not in covered

    def test_null_pivot_contributes_nothing(self):
        scope, store, stack, vector = setup_stack()
        store.write(stack, "vec", None)
        covered = included_locations(scope, store, stack, "contents")
        assert all(obj != vector for obj, _ in covered)

    def test_inclusion_is_store_dependent(self):
        scope, store, stack, vector = setup_stack()
        replacement = store.allocate()
        store.write(stack, "vec", replacement)
        covered = included_locations(scope, store, stack, "contents")
        assert (replacement, "cnt") in covered
        assert (vector, "cnt") not in covered

    def test_cyclic_rep_inclusion_terminates(self):
        scope = Scope.from_source(
            "group g\nfield value in g\nfield next maps g into g"
        )
        store = RuntimeStore()
        a, b = store.allocate(), store.allocate()
        store.write(a, "next", b)
        store.write(b, "next", a)  # a genuine cycle in the store
        covered = included_locations(scope, store, a, "g")
        assert (a, "value") in covered
        assert (b, "value") in covered

    def test_linked_list_chain(self):
        scope = Scope.from_source(
            "group g\nfield value in g\nfield next maps g into g"
        )
        store = RuntimeStore()
        nodes = [store.allocate() for _ in range(4)]
        for first, second in zip(nodes, nodes[1:]):
            store.write(first, "next", second)
        covered = included_locations(scope, store, nodes[0], "g")
        for node in nodes:
            assert (node, "value") in covered

    def test_location_covered_helper(self):
        scope, store, stack, vector = setup_stack()
        assert location_covered(scope, store, stack, "contents", vector, "cnt")
        assert not location_covered(scope, store, vector, "elems", stack, "vec")
