"""Tests for the interface/implementation module system."""

import pytest

from repro.errors import WellFormednessError
from repro.modular.modules import Module, ModuleSystem
from repro.oolong.parser import parse_program_text
from repro.prover.core import Limits
from repro.semantics.interp import OutcomeKind, explore_program

LIMITS = Limits(time_budget=120.0)

VECTOR_IFACE = """
group elems
field cnt in elems
proc vec_bump(v) modifies v.elems requires v != null
"""

VECTOR_IMPL = """
impl vec_bump(v) { v.cnt := 1 }
"""

STACK_IFACE = """
group contents
proc push(s) modifies s.contents requires s != null
proc new_stack(r) modifies r.contents requires r != null
"""

STACK_IMPL = """
field vec in contents maps elems into contents
impl new_stack(r) { r.vec := new() }
impl push(s) {
  ( assume s.vec = null ; s.vec := new()
    []
    assume s.vec != null ; skip ) ;
  vec_bump(s.vec)
}
"""

CLIENT_IFACE = "proc main()"

CLIENT_IMPL = """
impl main() {
  var s in
    s := new() ;
    new_stack(s) ;
    push(s) ;
    push(s)
  end
}
"""


def build_system() -> ModuleSystem:
    system = ModuleSystem()
    system.define("vector", interface=VECTOR_IFACE, implementation=VECTOR_IMPL)
    system.define(
        "stack",
        interface=STACK_IFACE,
        implementation=STACK_IMPL,
        imports=["vector"],
    )
    system.define(
        "client",
        interface=CLIENT_IFACE,
        implementation=CLIENT_IMPL,
        imports=["stack"],
    )
    return system


class TestScopeConstruction:
    def test_interface_scope_excludes_private_decls(self):
        system = build_system()
        scope = system.interface_scope("stack")
        assert scope.is_group("contents")
        assert not scope.is_field("vec")  # private to the stack module

    def test_interface_scope_includes_transitive_imports(self):
        system = build_system()
        scope = system.interface_scope("client")
        assert scope.proc("push") is not None
        assert scope.proc("vec_bump") is not None  # via stack -> vector

    def test_implementation_scope_adds_private_decls(self):
        system = build_system()
        scope = system.implementation_scope("stack")
        assert scope.is_field("vec")
        assert scope.impls_of("push")

    def test_implementation_scope_excludes_other_modules_privates(self):
        system = build_system()
        scope = system.implementation_scope("client")
        assert not scope.is_field("vec")
        assert scope.impls_of("push") == ()

    def test_whole_program_scope_has_everything(self):
        system = build_system()
        scope = system.whole_program_scope()
        assert scope.is_field("vec")
        assert scope.impls_of("push")
        assert scope.impls_of("main")

    def test_interfaces_reject_impls(self):
        with pytest.raises(WellFormednessError):
            Module("m", interface=parse_program_text("proc p()\nimpl p() { skip }"))

    def test_import_cycle_rejected(self):
        system = ModuleSystem()
        system.define("a", interface="group ga", imports=["b"])
        system.define("b", interface="group gb", imports=["a"])
        with pytest.raises(WellFormednessError):
            system.interface_scope("a")

    def test_unknown_import_rejected(self):
        system = ModuleSystem()
        system.define("a", interface="group ga", imports=["ghost"])
        with pytest.raises(WellFormednessError):
            system.interface_scope("a")

    def test_duplicate_module_rejected(self):
        system = ModuleSystem()
        system.define("a", interface="group ga")
        with pytest.raises(WellFormednessError):
            system.define("a", interface="group gb")


class TestModularChecking:
    def test_every_module_checks_in_its_own_scope(self):
        system = build_system()
        reports = system.check_all(LIMITS)
        for name, report in reports.items():
            assert report.ok, f"{name}: {report.describe()}"

    def test_client_checks_without_stack_privates(self):
        # The point of modular checking: the client never sees `vec`.
        system = build_system()
        report = system.check_module("client", LIMITS)
        assert report.ok, report.describe()

    def test_broken_private_impl_caught_in_its_module_only(self):
        system = ModuleSystem()
        system.define("vector", interface=VECTOR_IFACE, implementation=VECTOR_IMPL)
        system.define(
            "stack",
            interface=STACK_IFACE,
            implementation=STACK_IMPL.replace(
                "impl new_stack(r) { r.vec := new() }",
                # Writes a location outside its licence.
                "field rogue\nimpl new_stack(r) { r.vec := new() ; r.rogue := 1 }",
            ),
            imports=["vector"],
        )
        system.define(
            "client",
            interface=CLIENT_IFACE,
            implementation=CLIENT_IMPL,
            imports=["stack"],
        )
        reports = system.check_all(LIMITS)
        assert not reports["stack"].ok
        assert reports["vector"].ok
        assert reports["client"].ok

    def test_linked_program_runs_clean(self):
        system = build_system()
        scope = system.whole_program_scope()
        outcomes = explore_program(scope, "main")
        assert any(o.kind is OutcomeKind.NORMAL for o in outcomes)
        assert not any(o.wrong for o in outcomes)
