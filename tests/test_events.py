"""The fleet-wide event journal, progress renderer, and status endpoints.

* **Journal core** — kinds are validated at emit time, sequence numbers
  are a total order, listeners observe records in order, JSONL round
  trips, and the disabled path stays a no-op.
* **Schema** — every journal a real run produces (serial, ``-j``,
  ``--fleet``, seeded fault matrices) validates against the in-tree
  ``events.schema.json``, including the journal-level seq/t_mono
  invariants; hand-built garbage is rejected.
* **Correlation** — OL901/OL902/OL903/OL904 outcomes each appear as the
  matching journal event carrying the code, correlated to jobs/leases.
* **Prometheus** — ``MetricsRegistry.to_prometheus`` renders counters,
  labelled counters, and timers in the text exposition format;
  ``--metrics-format prom`` writes it from the CLI.
* **Status** — a :class:`StatusServer` answers ``query_status`` round
  trips; the cache server answers natively; ``workers status`` /
  ``cache status`` print the payloads.
"""

import json
import os

import pytest

from repro import obs
from repro.api import check_program, check_program_resilient
from repro.cli import (
    EXIT_STATUS_DOWN,
    EXIT_STATUS_REJECTED,
    cache_main,
    main,
    workers_main,
)
from repro.corpus.generators import generate_impl_farm
from repro.obs import events as events_module
from repro.obs.metrics import MetricsRegistry, prometheus_name
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.parallel import FleetOptions
from repro.parallel.cache import cache_key
from repro.parallel.cacheserver import CacheServer, cache_status
from repro.parallel.transport import (
    StatusServer,
    TransportError,
    query_status,
)
from repro.prover.core import Limits
from repro.testing.faults import (
    FLEET_STAGES,
    SUPERVISOR_STAGES,
    Fault,
    FaultPlan,
    inject,
)
from repro.vcgen.checker import check_scope

LIMITS = Limits(time_budget=60.0)

RATIONAL = """
group value
field num in value
field den in value
proc normalize(r) modifies r.value
impl normalize(r) {
  assume r != null ;
  r.num := 1 ;
  r.den := 1
}
"""

SEED_OFFSET = int(os.environ.get("FAULT_SEED_OFFSET", "0"))


def _farm_scope(impls=4, fields=4):
    scope = Scope.from_source(generate_impl_farm(impls, fields))
    check_well_formed(scope)
    return scope


def _fleet_fast(**overrides) -> FleetOptions:
    defaults = dict(
        workers=2,
        lease_duration=2.0,
        renew_interval=0.1,
        backoff_base=0.01,
        poll_interval=0.02,
        registration_wait=30.0,
        max_retries=4,
    )
    defaults.update(overrides)
    return FleetOptions(**defaults)


def _journaled_check(source=RATIONAL, **kwargs):
    journal = obs.EventJournal()
    report = check_program(source, LIMITS, events=journal, **kwargs)
    return journal, report


@pytest.fixture
def write_source(tmp_path):
    def writer(name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return writer


# ----------------------------------------------------------------------
# Journal core
# ----------------------------------------------------------------------


class TestJournal:
    def test_emit_rejects_unknown_kinds(self):
        journal = obs.EventJournal()
        with pytest.raises(ValueError, match="unknown event kind"):
            journal.emit("lease-grunted")

    def test_none_fields_are_dropped(self):
        journal = obs.EventJournal()
        record = journal.emit("cache-hit", key="abc", worker=None)
        assert record["key"] == "abc"
        assert "worker" not in record

    def test_seq_is_a_total_order_and_t_mono_monotone(self):
        journal = obs.EventJournal()
        for _ in range(20):
            journal.emit("cache-miss")
        seqs = [record["seq"] for record in journal.records]
        assert seqs == list(range(20))
        monos = [record["t_mono"] for record in journal.records]
        assert monos == sorted(monos)

    def test_listeners_observe_in_sequence_order(self):
        journal = obs.EventJournal()
        seen = []
        journal.add_listener(lambda record: seen.append(record["seq"]))
        for _ in range(5):
            journal.emit("cache-hit")
        assert seen == [0, 1, 2, 3, 4]

    def test_broken_listener_never_fails_emit(self):
        journal = obs.EventJournal()
        journal.add_listener(lambda record: 1 / 0)
        journal.emit("cache-hit")
        assert len(journal) == 1

    def test_jsonl_round_trips(self, tmp_path):
        journal = obs.EventJournal(run_id="rt")
        journal.emit("check-start", impls=3, backend="serial")
        journal.emit("check-end", ok=True, impls=3)
        path = str(tmp_path / "deep" / "events.jsonl")
        journal.write(path)
        records = obs.read_journal(path)
        assert records == journal.records

    def test_counts_by_kind(self):
        journal = obs.EventJournal()
        journal.emit("cache-hit")
        journal.emit("cache-hit")
        journal.emit("cache-miss")
        assert journal.counts() == {"cache-hit": 2, "cache-miss": 1}

    def test_disabled_path_is_a_no_op(self):
        assert events_module.journal() is None
        events_module.emit("cache-hit", key="ignored")  # must not raise

    def test_journaling_installs_and_restores(self):
        outer, inner = obs.EventJournal(), obs.EventJournal()
        with obs.journaling(outer):
            with obs.journaling(inner):
                events_module.emit("cache-hit")
            events_module.emit("cache-miss")
        assert events_module.journal() is None
        assert inner.counts() == {"cache-hit": 1}
        assert outer.counts() == {"cache-miss": 1}

    def test_journaling_none_is_passthrough(self):
        with obs.journaling(None) as installed:
            assert installed is None
            assert events_module.journal() is None


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------


class TestSchema:
    def test_kinds_match_schema_enum(self):
        schema_path = os.path.join(
            os.path.dirname(events_module.__file__), "events.schema.json"
        )
        with open(schema_path) as handle:
            schema = json.load(handle)
        assert set(schema["properties"]["event"]["enum"]) == set(
            obs.EVENT_KINDS
        )

    def test_validator_rejects_garbage(self):
        base = {
            "event": "cache-hit",
            "run_id": "r",
            "seq": 0,
            "t_mono": 1.0,
            "t_wall": 2.0,
        }
        assert obs.validate_event(base) == []
        assert obs.validate_event({**base, "event": "nope"})
        missing = dict(base)
        del missing["seq"]
        assert obs.validate_event(missing)
        assert obs.validate_event({**base, "surprise": 1})
        assert obs.validate_event({**base, "seq": "zero"})

    def test_journal_invariants(self):
        def rec(seq, t_mono, run_id="r"):
            return {
                "event": "cache-hit",
                "run_id": run_id,
                "seq": seq,
                "t_mono": t_mono,
                "t_wall": 0.0,
            }

        assert obs.validate_event_journal([rec(0, 1.0), rec(1, 2.0)]) == []
        # seq must strictly increase per run_id
        assert (
            obs.validate_event_journal([rec(1, 1.0), rec(1, 2.0)])
        )
        # t_mono must not go backwards per run_id
        assert (
            obs.validate_event_journal([rec(0, 2.0), rec(1, 1.0)])
        )
        # independent run_ids are teased apart
        assert (
            obs.validate_event_journal(
                [rec(0, 5.0, "a"), rec(0, 1.0, "b"), rec(1, 6.0, "a")]
            )
            == []
        )


# ----------------------------------------------------------------------
# What real runs journal
# ----------------------------------------------------------------------


class TestRunJournals:
    def test_serial_run(self):
        journal, report = _journaled_check()
        assert report.ok
        assert obs.validate_event_journal(journal.records) == []
        counts = journal.counts()
        assert counts["check-start"] == 1
        assert counts["check-end"] == 1
        assert counts["impl-checked"] == 1
        start = journal.records[0]
        assert start["backend"] == "serial"
        assert start["impls"] == 1

    def test_parallel_run(self):
        scope = _farm_scope()
        journal = obs.EventJournal()
        with obs.journaling(journal):
            report = check_scope(scope, LIMITS, parallel=2)
        assert report.ok
        assert obs.validate_event_journal(journal.records) == []
        counts = journal.counts()
        assert counts["worker-spawn"] == 2
        assert counts["job-assigned"] >= len(report.verdicts)
        assert counts["impl-checked"] == len(report.verdicts)

    def test_fleet_run_correlates_leases(self):
        scope = _farm_scope()
        journal = obs.EventJournal()
        with obs.journaling(journal):
            report = check_scope(scope, LIMITS, fleet=_fleet_fast())
        assert report.ok
        assert obs.validate_event_journal(journal.records) == []
        counts = journal.counts()
        assert counts["server-start"] == 1
        assert counts["server-stop"] == 1
        assert counts["worker-registered"] >= 1
        grants = [
            r for r in journal.records if r["event"] == "lease-granted"
        ]
        assert len(grants) >= len(report.verdicts)
        checked = [
            r for r in journal.records if r["event"] == "impl-checked"
        ]
        # every verdict is announced, carrying the lease that decided it
        assert {(r["impl"], r["index"]) for r in checked} == {
            (v.impl.name, v.index) for v in report.verdicts
        }
        lease_ids = {r["lease"] for r in grants}
        for record in checked:
            assert record["lease"] in lease_ids

    def test_quarantine_appears_as_ol902_events(self):
        scope = _farm_scope()
        plan = FaultPlan((Fault("worker-kill", "raise", hit=1),))
        journal = obs.EventJournal()
        with obs.journaling(journal), inject(plan):
            check_scope(scope, LIMITS, fleet=_fleet_fast(), max_retries=0)
        assert obs.validate_event_journal(journal.records) == []
        quarantined = [
            r for r in journal.records if r["event"] == "job-quarantined"
        ]
        assert len(quarantined) == 1
        assert quarantined[0]["code"] == "OL902"
        reclaims = [
            r for r in journal.records if r["event"] == "lease-reclaimed"
        ]
        assert any(r["job"] == quarantined[0]["job"] for r in reclaims)
        checked = {
            (r["impl"], r["index"]): r
            for r in journal.records
            if r["event"] == "impl-checked"
        }
        key = (quarantined[0]["impl"], quarantined[0]["index"])
        assert checked[key]["code"] == "OL902"

    def test_hard_timeout_appears_as_ol901_event(self):
        scope = _farm_scope()
        plan = FaultPlan((Fault("worker-hang", "raise", hit=0),))
        journal = obs.EventJournal()
        with obs.journaling(journal), inject(plan):
            check_scope(
                scope,
                LIMITS,
                fleet=_fleet_fast(lease_duration=30.0),
                job_timeout=0.4,
            )
        assert obs.validate_event_journal(journal.records) == []
        timeouts = [
            r for r in journal.records if r["event"] == "job-hard-timeout"
        ]
        assert timeouts and all(r["code"] == "OL901" for r in timeouts)

    def test_degradation_appears_as_ol904_event(self):
        journal = obs.EventJournal()
        report = check_program_resilient(
            RATIONAL,
            LIMITS,
            events=journal,
            fleet=FleetOptions(workers=0, registration_wait=0.2),
        )
        assert report.ok
        assert obs.validate_event_journal(journal.records) == []
        degraded = [r for r in journal.records if r["event"] == "degraded"]
        assert len(degraded) == 1
        assert degraded[0]["code"] == "OL904"
        assert degraded[0]["reason"]

    def test_cache_traffic_appears_as_events(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        journal_cold = obs.EventJournal()
        check_program(
            RATIONAL, LIMITS, events=journal_cold, cache_dir=cache_dir
        )
        assert journal_cold.counts().get("cache-store", 0) == 1
        assert journal_cold.counts().get("cache-miss", 0) == 1
        journal_warm = obs.EventJournal()
        check_program(
            RATIONAL, LIMITS, events=journal_warm, cache_dir=cache_dir
        )
        warm = journal_warm.counts()
        assert warm.get("cache-hit", 0) == 1
        checked = [
            r for r in journal_warm.records if r["event"] == "impl-checked"
        ]
        assert checked[0].get("cache_hit") is True

    def test_corrupt_cache_entry_appears_as_ol903_event(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        check_program(RATIONAL, LIMITS, cache_dir=cache_dir)
        entries = [
            name
            for name in os.listdir(cache_dir)
            if name.endswith(".json") and name != "summary.json"
        ]
        assert entries
        with open(os.path.join(cache_dir, entries[0]), "r+") as handle:
            payload = json.load(handle)
            payload["checksum"] = "0" * 64
            handle.seek(0)
            handle.truncate()
            json.dump(payload, handle)
        journal = obs.EventJournal()
        check_program(RATIONAL, LIMITS, events=journal, cache_dir=cache_dir)
        rejects = [
            r for r in journal.records if r["event"] == "cache-reject"
        ]
        assert rejects and all(r["code"] == "OL903" for r in rejects)

    @pytest.mark.parametrize("seed", range(SEED_OFFSET, SEED_OFFSET + 3))
    def test_fault_matrix_journals_stay_schema_valid(self, seed):
        scope = _farm_scope()
        plan = FaultPlan.fuzz(
            seed, stages=SUPERVISOR_STAGES + FLEET_STAGES, max_hit=3
        )
        journal = obs.EventJournal()
        with obs.journaling(journal), inject(plan):
            report = check_scope(scope, LIMITS, fleet=_fleet_fast())
        detail = f"seed {seed}: {plan.describe()}"
        assert obs.validate_event_journal(journal.records) == [], detail
        # every OL9xx event kind carries its code, and every verdict is
        # announced at least once (degraded runs re-announce preresolved
        # jobs; consumers dedupe by (impl, index))
        codes = {
            "job-quarantined": "OL902",
            "job-hard-timeout": "OL901",
            "job-deadline": "OL901",
            "cache-reject": "OL903",
            "degraded": "OL904",
        }
        for record in journal.records:
            expected = codes.get(record["event"])
            if expected is not None:
                assert record["code"] == expected, detail
        announced = {
            (r["impl"], r["index"])
            for r in journal.records
            if r["event"] == "impl-checked"
        }
        assert announced == {
            (v.impl.name, v.index) for v in report.verdicts
        }, detail


# ----------------------------------------------------------------------
# Progress renderer
# ----------------------------------------------------------------------


class _FakeStream:
    def __init__(self, atty=False):
        self.chunks = []
        self.atty = atty

    def write(self, text):
        self.chunks.append(text)

    def flush(self):
        pass

    def isatty(self):
        return self.atty

    @property
    def text(self):
        return "".join(self.chunks)


class TestProgressRenderer:
    def test_counts_and_dedupes_impl_checked(self):
        stream = _FakeStream()
        renderer = obs.ProgressRenderer(stream, line_interval=0.0)
        journal = obs.EventJournal()
        journal.add_listener(renderer)
        journal.emit("check-start", impls=2, backend="fleet")
        journal.emit("lease-granted", lease=1, job=0)
        journal.emit("impl-checked", impl="a", index=0, lease=1, status="verified")
        journal.emit("impl-checked", impl="a", index=0, status="verified")
        journal.emit("impl-checked", impl="b", index=0, cache_hit=True, status="verified")
        assert renderer.total == 2
        assert len(renderer.done) == 2
        assert renderer.cache_hits == 1
        assert not renderer.leases
        line = renderer.status_line()
        assert "checked 2/2 impls" in line
        assert "1 cache hits" in line

    def test_quarantine_and_lease_accounting(self):
        renderer = obs.ProgressRenderer(_FakeStream(), line_interval=0.0)
        renderer({"event": "check-start", "impls": 3, "t_mono": 0.0})
        renderer({"event": "lease-granted", "lease": 7, "t_mono": 0.1})
        renderer({"event": "lease-granted", "lease": 8, "t_mono": 0.2})
        renderer({"event": "lease-expired", "lease": 7, "t_mono": 0.3})
        renderer({"event": "job-quarantined", "code": "OL902", "t_mono": 0.4})
        assert renderer.leases == {8}
        assert renderer.quarantined == 1
        assert "1 quarantined" in renderer.status_line()

    def test_check_end_finishes_once(self):
        stream = _FakeStream()
        renderer = obs.ProgressRenderer(stream, line_interval=0.0)
        renderer({"event": "check-start", "impls": 1, "t_mono": 0.0})
        renderer({"event": "check-end", "ok": True, "t_mono": 1.0})
        painted = stream.text
        renderer.finish()
        assert stream.text == painted  # idempotent
        assert painted.endswith("\n")

    def test_eta_appears_mid_run(self):
        renderer = obs.ProgressRenderer(_FakeStream(), line_interval=0.0)
        renderer({"event": "check-start", "impls": 4, "t_mono": 0.0})
        renderer(
            {"event": "impl-checked", "impl": "a", "index": 0, "t_mono": 2.0}
        )
        assert "eta" in renderer.status_line(2.0)

    def test_tty_repaints_in_place(self):
        stream = _FakeStream(atty=True)
        renderer = obs.ProgressRenderer(stream, min_interval=0.0)
        renderer({"event": "check-start", "impls": 2, "t_mono": 0.0})
        renderer(
            {"event": "impl-checked", "impl": "a", "index": 0, "t_mono": 1.0}
        )
        assert any(chunk.startswith("\r") for chunk in stream.chunks)
        assert all("\n" not in chunk for chunk in stream.chunks)

    def test_broken_stream_never_raises(self):
        class Exploding:
            def write(self, text):
                raise OSError("closed")

            def flush(self):
                raise OSError("closed")

            def isatty(self):
                return False

        renderer = obs.ProgressRenderer(Exploding(), line_interval=0.0)
        renderer({"event": "check-start", "impls": 1, "t_mono": 0.0})
        renderer.finish()


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------


class TestPrometheus:
    def test_names_are_mangled_and_prefixed(self):
        assert prometheus_name("prover.checks") == "oolong_prover_checks"
        assert (
            prometheus_name("checker.status.verified")
            == "oolong_checker_status_verified"
        )
        assert prometheus_name("9lives", prefix="") == "_9lives"

    def test_counters_labels_and_timers_render(self):
        registry = MetricsRegistry()
        registry.inc("prover.checks", 2)
        registry.inc_labelled(
            "prover.instantiations.by_quantifier", 'q"1\n', 5
        )
        registry.observe("prover.check_seconds", 0.25)
        registry.observe("prover.check_seconds", 0.75)
        text = registry.to_prometheus()
        assert "# TYPE oolong_prover_checks counter" in text
        assert "oolong_prover_checks 2" in text
        assert (
            'oolong_prover_instantiations{quantifier="q\\"1\\n"} 5' in text
        )
        assert "oolong_prover_check_count 2" in text
        assert "oolong_prover_check_seconds_total 1.0" in text
        assert "oolong_prover_check_seconds_max 0.75" in text
        assert "_seconds_seconds" not in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_unlabelled_convention_falls_back(self):
        registry = MetricsRegistry()
        registry.inc_labelled("odd.bucket", "x", 1)
        assert 'oolong_odd_bucket{label="x"} 1' in registry.to_prometheus()


# ----------------------------------------------------------------------
# Status endpoints
# ----------------------------------------------------------------------


class TestStatusEndpoints:
    def test_status_server_round_trip(self):
        server = StatusServer(
            ("127.0.0.1", 0), lambda: {"kind": "test", "n": 7}, token="s3"
        ).start()
        try:
            payload = query_status(server.address, token="s3")
            assert payload == {"kind": "test", "n": 7}
            with pytest.raises(TransportError):
                query_status(server.address, token="wrong")
        finally:
            server.stop()

    def test_cache_server_answers_status(self, tmp_path):
        with CacheServer(str(tmp_path / "cache")) as server:
            scope = Scope.from_source(RATIONAL)
            impl = next(iter(scope.impls.values()))[0]
            key = cache_key(scope, impl, 0, None)
            payload = cache_status(server.url)
            assert payload["kind"] == "cache-server"
            assert payload["address"] == server.url
            assert payload["metrics"]["counters"] == {}
            # traffic shows up in the served metrics
            from repro.parallel.cacheserver import RemoteCache

            client = RemoteCache.connect(server.url)
            assert client.load(key) is None
            client.close()
            payload = cache_status(server.url)
            assert payload["metrics"]["counters"]["cacheserver.gets"] == 1
            assert payload["metrics"]["counters"]["cacheserver.misses"] == 1
            assert payload["summary"]["misses"] == 1

    def test_cache_status_cli(self, tmp_path, capsys):
        with CacheServer(str(tmp_path / "cache")) as server:
            assert cache_main(["status", server.url]) == 0
            text = capsys.readouterr().out
            assert "cache-server" in text
            assert cache_main(
                ["status", server.url, "--metrics-format", "json"]
            ) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["kind"] == "cache-server"

    def test_workers_status_cli(self, capsys):
        snapshot = {
            "kind": "worker-pool",
            "coordinator": "127.0.0.1:1",
            "pid": 1,
            "uptime": 0.0,
            "workers": {"configured": 2, "alive": 2, "pids": [10, 11]},
            "jobs_served": 5,
            "metrics": {"counters": {"pool.jobs_served": 5}},
        }
        server = StatusServer(("127.0.0.1", 0), lambda: snapshot).start()
        try:
            host, port = server.address
            assert workers_main(["status", f"{host}:{port}"]) == 0
            text = capsys.readouterr().out
            assert "workers: 2/2 alive" in text
            assert "jobs served: 5" in text
            assert (
                workers_main(
                    ["status", f"{host}:{port}", "--metrics-format", "prom"]
                )
                == 0
            )
            prom = capsys.readouterr().out
            assert "oolong_pool_jobs_served 5" in prom
        finally:
            server.stop()

    def test_status_against_nothing_exits_down(self, capsys):
        """Connection-refused means "down": exit 3 plus a stderr hint."""
        assert (
            workers_main(["status", "127.0.0.1:1", "--timeout", "1"])
            == EXIT_STATUS_DOWN
        )
        assert (
            cache_main(["status", "127.0.0.1:1", "--timeout", "1"])
            == EXIT_STATUS_DOWN
        )
        err = capsys.readouterr().err
        assert "error:" in err
        assert "is the server running?" in err

    def test_status_handshake_rejection_exits_distinctly(self, capsys):
        """A live server with the wrong token is "wrong server", not
        "down": exit 4, and the hint names the token."""
        server = StatusServer(
            ("127.0.0.1", 0), lambda: {}, token="sekrit"
        ).start()
        try:
            host, port = server.address
            assert (
                workers_main(
                    ["status", f"{host}:{port}", "--timeout", "2"]
                )
                == EXIT_STATUS_REJECTED
            )
        finally:
            server.stop()
        err = capsys.readouterr().err
        assert "refused the handshake" in err

    def test_cache_status_rejection_exits_distinctly(self, tmp_path, capsys):
        with CacheServer(str(tmp_path / "cache"), token="sekrit") as server:
            assert (
                cache_main(["status", server.url, "--timeout", "2"])
                == EXIT_STATUS_REJECTED
            )
        err = capsys.readouterr().err
        assert "refused the handshake" in err


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------


class TestCli:
    def test_events_flag_writes_valid_journal(
        self, write_source, tmp_path, capsys
    ):
        source = write_source("good.oolong", RATIONAL)
        out = str(tmp_path / "events.jsonl")
        assert main([source, "--events", out]) == 0
        records = obs.read_journal(out)
        assert obs.validate_event_journal(records) == []
        kinds = {record["event"] for record in records}
        assert {"check-start", "impl-checked", "check-end"} <= kinds

    def test_events_written_even_on_syntax_error(
        self, write_source, tmp_path, capsys
    ):
        source = write_source("bad.oolong", "group group group")
        out = str(tmp_path / "events.jsonl")
        assert main([source, "--events", out]) == 2
        records = obs.read_journal(out)
        assert obs.validate_event_journal(records) == []

    def test_progress_flag_prints_final_line(self, write_source, capsys):
        source = write_source("good.oolong", RATIONAL)
        assert main([source, "--progress"]) == 0
        err = capsys.readouterr().err
        assert "checked 1/1 impls" in err

    def test_metrics_format_prom_writes_exposition(
        self, write_source, tmp_path, capsys
    ):
        source = write_source("good.oolong", RATIONAL)
        out = str(tmp_path / "metrics.prom")
        assert main(
            [source, "--metrics", out, "--metrics-format", "prom"]
        ) == 0
        with open(out) as handle:
            text = handle.read()
        assert "# TYPE oolong_prover_checks counter" in text
        assert "oolong_prover_checks 1" in text

    def test_fleet_run_with_events_and_progress(
        self, write_source, tmp_path, capsys
    ):
        source = write_source("good.oolong", RATIONAL)
        out = str(tmp_path / "events.jsonl")
        assert main([source, "--fleet", "2", "--events", out, "--progress"]) == 0
        records = obs.read_journal(out)
        assert obs.validate_event_journal(records) == []
        kinds = {record["event"] for record in records}
        assert {"server-start", "lease-granted", "server-stop"} <= kinds
        assert "checked 1/1 impls" in capsys.readouterr().err

    def test_events_default_truncates_previous_run(
        self, write_source, tmp_path, capsys
    ):
        source = write_source("good.oolong", RATIONAL)
        out = str(tmp_path / "events.jsonl")
        assert main([source, "--events", out]) == 0
        first = obs.read_journal(out)
        assert main([source, "--events", out]) == 0
        second = obs.read_journal(out)
        runs = {record["run_id"] for record in second}
        assert len(runs) == 1
        assert runs != {record["run_id"] for record in first}

    def test_events_append_accumulates_runs(
        self, write_source, tmp_path, capsys
    ):
        source = write_source("good.oolong", RATIONAL)
        out = str(tmp_path / "events.jsonl")
        assert main([source, "--events", out]) == 0
        assert main([source, "--events", out, "--events-append"]) == 0
        records = obs.read_journal(out)
        assert obs.validate_event_journal(records) == []
        assert len({record["run_id"] for record in records}) == 2


# ----------------------------------------------------------------------
# HTTP scraping
# ----------------------------------------------------------------------


def _http_get(url):
    import urllib.request

    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


class TestHttpEndpoints:
    def test_worker_pool_serves_http(self):
        from repro.obs.httpd import render_prometheus
        from repro.parallel.fleet import WorkerPool

        pool = WorkerPool(
            ("127.0.0.1", 1), jobs=0, http_address=("127.0.0.1", 0)
        ).start()
        try:
            base = f"http://{pool.http_url}"
            status, body = _http_get(base + "/healthz")
            assert status == 200 and body == "ok\n"
            status, body = _http_get(base + "/status")
            payload = json.loads(body)
            assert payload["kind"] == "worker-pool"
            status, body = _http_get(base + "/metrics")
            assert status == 200
            assert "oolong_pool_jobs_served 0" in body
            # The scrape endpoint and the status protocol render the
            # very same counters.
            assert body == render_prometheus(pool.status())
        finally:
            pool.stop()

    def test_cache_server_serves_http(self, tmp_path):
        with CacheServer(
            str(tmp_path / "cache"), http_address=("127.0.0.1", 0)
        ) as server:
            base = f"http://{server.http_url}"
            status, body = _http_get(base + "/healthz")
            assert status == 200 and body == "ok\n"
            status, body = _http_get(base + "/status")
            payload = json.loads(body)
            assert payload["kind"] == "cache-server"
            status, body = _http_get(base + "/metrics")
            assert status == 200
            # traffic shows up in later scrapes
            from repro.parallel.cacheserver import RemoteCache

            scope = Scope.from_source(RATIONAL)
            impl = next(iter(scope.impls.values()))[0]
            key = cache_key(scope, impl, 0, None)
            client = RemoteCache.connect(server.url)
            assert client.load(key) is None
            client.close()
            _, body = _http_get(base + "/metrics")
            assert "oolong_cacheserver_misses 1" in body

    def test_unknown_path_is_404(self):
        from repro.obs.httpd import TelemetryHTTPServer

        server = TelemetryHTTPServer(("127.0.0.1", 0), lambda: {}).start()
        try:
            import urllib.error
            import urllib.request

            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(
                    f"http://{server.url}/nope", timeout=5
                )
            assert exc_info.value.code == 404
        finally:
            server.stop()

    def test_snapshot_failure_is_500(self):
        from repro.obs.httpd import TelemetryHTTPServer

        def broken():
            raise RuntimeError("boom")

        server = TelemetryHTTPServer(("127.0.0.1", 0), broken).start()
        try:
            import urllib.error
            import urllib.request

            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(
                    f"http://{server.url}/status", timeout=5
                )
            assert exc_info.value.code == 500
        finally:
            server.stop()
