"""Golden tests for the logic printer's stable output format."""

from repro.logic.printer import format_formula, format_term
from repro.logic.terms import (
    And,
    App,
    Const,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    IntLit,
    Not,
    Or,
    Pred,
    TrueF,
    Var,
)


class TestTerms:
    def test_var(self):
        assert format_term(Var("X")) == "?X"

    def test_const(self):
        assert format_term(Const("null")) == "null"

    def test_int(self):
        assert format_term(IntLit(42)) == "42"

    def test_app(self):
        term = App("sel", (Const("$0"), Var("X"), Const("attr$f")))
        assert format_term(term) == "(sel $0 ?X attr$f)"

    def test_nested_app(self):
        term = App("f", (App("g", (Const("a"),)),))
        assert format_term(term) == "(f (g a))"


class TestFormulas:
    def test_atoms(self):
        assert format_formula(TrueF()) == "true"
        assert format_formula(Eq(Const("a"), Const("b"))) == "(= a b)"
        assert format_formula(Pred("alive", (Const("s"), Var("X")))) == "(alive s ?X)"

    def test_connectives_indent(self):
        formula = And((TrueF(), Not(TrueF())))
        assert format_formula(formula) == "(and\n  true\n  (not\n    true))"

    def test_implies(self):
        formula = Implies(TrueF(), TrueF())
        assert format_formula(formula) == "(=>\n  true\n  true)"

    def test_iff(self):
        formula = Iff(TrueF(), TrueF())
        assert format_formula(formula) == "(<=>\n  true\n  true)"

    def test_or(self):
        formula = Or((TrueF(), TrueF()))
        assert format_formula(formula) == "(or\n  true\n  true)"

    def test_forall_with_triggers(self):
        pattern = App("P", (Var("X"),))
        formula = Forall(("X",), Pred("P", (Var("X"),)), ((pattern,),))
        rendered = format_formula(formula)
        assert rendered.startswith("(forall (X) :pattern {(P ?X)}")

    def test_forall_without_triggers(self):
        formula = Forall(("X", "Y"), TrueF())
        assert ":pattern" not in format_formula(formula)

    def test_exists(self):
        formula = Exists(("X",), TrueF())
        assert format_formula(formula) == "(exists (X)\n  true)"

    def test_deterministic(self):
        formula = And(
            (
                Pred("inc", (Const("$0"), Var("X"), Const("g"), Var("Y"), Const("f"))),
                Not(Eq(Var("X"), Var("Y"))),
            )
        )
        assert format_formula(formula) == format_formula(formula)
