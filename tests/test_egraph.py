"""Unit tests for the E-graph (congruence closure, trail, folding)."""

from repro.logic.terms import App, Const, IntLit
from repro.prover.egraph import EGraph

a, b, c, d = Const("a"), Const("b"), Const("c"), Const("d")


def f(*args):
    return App("f", args)


def g(*args):
    return App("g", args)


class TestInterning:
    def test_same_term_same_node(self):
        eg = EGraph()
        assert eg.intern(a) == eg.intern(a)
        assert eg.intern(f(a, b)) == eg.intern(f(a, b))

    def test_distinct_terms_distinct_nodes(self):
        eg = EGraph()
        assert eg.intern(a) != eg.intern(b)
        assert eg.intern(f(a)) != eg.intern(g(a))

    def test_int_literals(self):
        eg = EGraph()
        three = eg.intern(IntLit(3))
        assert eg.int_value_of(three) == 3
        assert eg.intern(IntLit(3)) == three


class TestCongruence:
    def test_basic_congruence(self):
        eg = EGraph()
        fa, fb = eg.intern(f(a)), eg.intern(f(b))
        assert not eg.are_equal(fa, fb)
        assert eg.assert_eq(eg.intern(a), eg.intern(b))
        assert eg.are_equal(fa, fb)

    def test_congruence_is_transitive_through_nesting(self):
        eg = EGraph()
        ffa, ffb = eg.intern(f(f(a))), eg.intern(f(f(b)))
        eg.assert_eq(eg.intern(a), eg.intern(b))
        assert eg.are_equal(ffa, ffb)

    def test_congruence_on_intern_after_merge(self):
        eg = EGraph()
        eg.assert_eq(eg.intern(a), eg.intern(b))
        fa = eg.intern(f(a))
        fb = eg.intern(f(b))  # interned after the merge
        assert eg.are_equal(fa, fb)

    def test_multi_arg_congruence(self):
        eg = EGraph()
        n1 = eg.intern(f(a, c))
        n2 = eg.intern(f(b, d))
        eg.assert_eq(eg.intern(a), eg.intern(b))
        assert not eg.are_equal(n1, n2)
        eg.assert_eq(eg.intern(c), eg.intern(d))
        assert eg.are_equal(n1, n2)


class TestDisequality:
    def test_diseq_then_eq_conflicts(self):
        eg = EGraph()
        assert eg.assert_diseq(eg.intern(a), eg.intern(b))
        assert not eg.assert_eq(eg.intern(a), eg.intern(b))
        assert eg.in_conflict

    def test_eq_then_diseq_conflicts(self):
        eg = EGraph()
        assert eg.assert_eq(eg.intern(a), eg.intern(b))
        assert not eg.assert_diseq(eg.intern(a), eg.intern(b))

    def test_congruence_triggers_diseq_conflict(self):
        eg = EGraph()
        eg.assert_diseq(eg.intern(f(a)), eg.intern(f(b)))
        assert not eg.assert_eq(eg.intern(a), eg.intern(b))

    def test_are_diseq_via_int_values(self):
        eg = EGraph()
        assert eg.are_diseq(eg.intern(IntLit(1)), eg.intern(IntLit(2)))

    def test_int_merge_conflict(self):
        eg = EGraph()
        assert not eg.assert_eq(eg.intern(IntLit(1)), eg.intern(IntLit(2)))


class TestTruth:
    def test_true_false_distinct(self):
        eg = EGraph()
        assert eg.truth(eg.TRUE) is True
        assert eg.truth(eg.FALSE) is False

    def test_atom_unknown_then_true(self):
        eg = EGraph()
        atom = eg.intern(App("P", (a,)))
        assert eg.truth(atom) is None
        eg.assert_eq(atom, eg.TRUE)
        assert eg.truth(atom) is True


class TestFolding:
    def test_addition_folds(self):
        eg = EGraph()
        total = eg.intern(App("+", (IntLit(1), IntLit(2))))
        assert eg.int_value_of(total) == 3

    def test_fold_after_merge(self):
        eg = EGraph()
        total = eg.intern(App("+", (a, IntLit(2))))
        assert eg.int_value_of(total) is None
        eg.assert_eq(eg.intern(a), eg.intern(IntLit(1)))
        assert eg.int_value_of(total) == 3

    def test_comparison_folds_to_truth(self):
        eg = EGraph()
        lt = eg.intern(App("<", (IntLit(1), IntLit(2))))
        assert eg.truth(lt) is True
        ge = eg.intern(App(">=", (IntLit(1), IntLit(2))))
        assert eg.truth(ge) is False

    def test_fold_conflict_detected(self):
        eg = EGraph()
        total = eg.intern(App("+", (IntLit(1), IntLit(2))))
        assert not eg.assert_eq(total, eg.intern(IntLit(5)))


class TestBacktracking:
    def test_pop_undoes_merge(self):
        eg = EGraph()
        na, nb = eg.intern(a), eg.intern(b)
        mark = eg.push()
        eg.assert_eq(na, nb)
        assert eg.are_equal(na, nb)
        eg.pop(mark)
        assert not eg.are_equal(na, nb)

    def test_pop_undoes_congruence(self):
        eg = EGraph()
        fa, fb = eg.intern(f(a)), eg.intern(f(b))
        mark = eg.push()
        eg.assert_eq(eg.intern(a), eg.intern(b))
        assert eg.are_equal(fa, fb)
        eg.pop(mark)
        assert not eg.are_equal(fa, fb)

    def test_pop_undoes_conflict(self):
        eg = EGraph()
        eg.assert_diseq(eg.intern(a), eg.intern(b))
        mark = eg.push()
        eg.assert_eq(eg.intern(a), eg.intern(b))
        assert eg.in_conflict
        eg.pop(mark)
        assert not eg.in_conflict

    def test_nodes_survive_pop(self):
        eg = EGraph()
        mark = eg.push()
        node = eg.intern(f(a))
        eg.pop(mark)
        assert eg.intern(f(a)) == node
        assert not eg.in_conflict

    def test_nested_push_pop(self):
        eg = EGraph()
        na, nb, nc = eg.intern(a), eg.intern(b), eg.intern(c)
        m1 = eg.push()
        eg.assert_eq(na, nb)
        m2 = eg.push()
        eg.assert_eq(nb, nc)
        assert eg.are_equal(na, nc)
        eg.pop(m2)
        assert eg.are_equal(na, nb)
        assert not eg.are_equal(na, nc)
        eg.pop(m1)
        assert not eg.are_equal(na, nb)

    def test_merge_after_pop_works(self):
        eg = EGraph()
        na, nb = eg.intern(a), eg.intern(b)
        mark = eg.push()
        eg.assert_eq(na, nb)
        eg.pop(mark)
        assert eg.assert_eq(na, nb)
        assert eg.are_equal(na, nb)


class TestIntrospection:
    def test_apps_with_head(self):
        eg = EGraph()
        n1, n2 = eg.intern(f(a)), eg.intern(f(b))
        eg.intern(g(a))
        assert set(eg.apps_with_head("f")) == {n1, n2}

    def test_class_members_after_merge(self):
        eg = EGraph()
        na, nb = eg.intern(a), eg.intern(b)
        eg.assert_eq(na, nb)
        assert set(eg.class_members(na)) == {na, nb}

    def test_class_apps_with_head(self):
        eg = EGraph()
        fa = eg.intern(f(a))
        nc = eg.intern(c)
        eg.assert_eq(fa, nc)
        assert set(eg.class_apps_with_head(nc, "f")) == {fa}

    def test_term_of_round_trip(self):
        eg = EGraph()
        node = eg.intern(f(a, g(b)))
        assert eg.term_of(node) == f(a, g(b))
