"""Tests for the scope-monotonicity harness and modular soundness."""

import pytest

from repro.modular.monotonicity import check_monotonicity
from repro.oolong.parser import parse_program_text
from repro.oolong.program import Scope
from repro.prover.core import Limits, Verdict

LIMITS = Limits(time_budget=120.0)


def scope_of(source):
    return Scope.from_source(source)


BASE = """
group g
field f in g
proc p(t) modifies t.g
impl p(t) { assume t != null ; t.f := 1 }
"""


class TestHarness:
    def test_valid_stays_valid_under_neutral_extension(self):
        report = check_monotonicity(
            scope_of(BASE),
            parse_program_text("group other\nfield x in other"),
            LIMITS,
        )
        assert report.monotone
        (result,) = report.results
        assert result.base_verdict is Verdict.UNSAT
        assert result.extended_verdict is Verdict.UNSAT

    def test_extension_adding_inclusions_preserves_validity(self):
        # New fields in g and a new pivot into g: strictly more inclusions.
        extension = "field extra in g\nfield piv maps g into g"
        report = check_monotonicity(
            scope_of(BASE), parse_program_text(extension), LIMITS
        )
        assert report.monotone

    def test_extension_with_new_impls_preserves_validity(self):
        extension = "impl p(t) { skip }"
        report = check_monotonicity(
            scope_of(BASE), parse_program_text(extension), LIMITS
        )
        # Only base impls are compared; the extension's impl is irrelevant
        # to p#0's VC.
        assert report.monotone

    def test_invalid_stays_invalid(self):
        source = """
        group g
        field f
        proc p(t) modifies t.g
        impl p(t) { assume t != null ; t.f := 1 }
        """
        report = check_monotonicity(
            scope_of(source), parse_program_text("group other"), LIMITS
        )
        (result,) = report.results
        assert result.base_verdict is Verdict.SAT
        assert result.extended_verdict is Verdict.SAT
        assert report.monotone  # not a violation: never valid to begin with

    def test_extension_revealing_pivot_keeps_client_valid(self):
        # The Section 3.0 shape: hidden rep inclusion revealed later.
        from repro.corpus.programs import SECTION3_CLIENT, SECTION3_HONEST_IMPLS

        report = check_monotonicity(
            scope_of(SECTION3_CLIENT),
            parse_program_text(SECTION3_HONEST_IMPLS),
            LIMITS,
        )
        assert report.monotone, [
            (r.impl_name, r.base_verdict, r.extended_verdict)
            for r in report.results
        ]

    def test_ill_formed_extension_rejected(self):
        from repro.errors import WellFormednessError

        with pytest.raises(WellFormednessError):
            check_monotonicity(
                scope_of(BASE), parse_program_text("field dup in missing"), LIMITS
            )

    def test_report_shape(self):
        report = check_monotonicity(
            scope_of(BASE), parse_program_text("group other"), LIMITS
        )
        assert len(report.results) == 1
        assert report.results[0].impl_name == "p"
        assert not report.violations
