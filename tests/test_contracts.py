"""Tests for requires/ensures contracts and their paper-recipe desugaring."""

import pytest

from repro.api import check_program, parse_program
from repro.errors import WellFormednessError
from repro.oolong.ast import (
    Assert,
    Assume,
    BinOp,
    Call,
    Id,
    IntConst,
    NullConst,
    ProcDecl,
    Seq,
)
from repro.oolong.contracts import desugar_contracts, subst_expr
from repro.oolong.parser import parse_expression, parse_program_text
from repro.oolong.pretty import pretty_program
from repro.oolong.program import Scope
from repro.prover.core import Limits
from repro.semantics.interp import OutcomeKind, explore_program

LIMITS = Limits(time_budget=120.0)


class TestParsing:
    def test_requires_clause(self):
        (decl,) = parse_program_text("proc p(t) requires t != null")
        assert decl.requires == (parse_expression("t != null"),)
        assert decl.has_contract

    def test_ensures_clause(self):
        (decl,) = parse_program_text("proc p(t) ensures t != null")
        assert decl.ensures == (parse_expression("t != null"),)

    def test_all_clauses_in_any_order(self):
        (decl,) = parse_program_text(
            "group g\nproc p(t) requires t != null modifies t.g ensures true "
            "requires 1 < 2"
        )[1:]
        assert len(decl.requires) == 2
        assert len(decl.ensures) == 1
        assert len(decl.modifies) == 1

    def test_round_trip(self):
        source = (
            "group g\n"
            "proc p(t) modifies t.g requires t != null ensures t != null"
        )
        decls = parse_program_text(source)
        assert parse_program_text(pretty_program(decls)) == decls

    def test_plain_proc_has_no_contract(self):
        (decl,) = parse_program_text("proc p(t)")
        assert not decl.has_contract


class TestWellFormedness:
    def test_contract_may_use_params_and_fields(self):
        scope = parse_program(
            "field f\nproc p(t) requires t.f = 1 ensures t != null"
        )
        assert scope.proc("p").has_contract

    def test_contract_may_not_use_unknown_variable(self):
        with pytest.raises(WellFormednessError):
            parse_program("proc p(t) requires u != null")

    def test_contract_may_not_use_undeclared_field(self):
        with pytest.raises(WellFormednessError):
            parse_program("proc p(t) requires t.ghost = 1")


class TestSubstExpr:
    def test_substitutes_identifiers(self):
        expr = parse_expression("t.f = u + 1")
        result = subst_expr(expr, {"t": Id("a"), "u": IntConst(5)})
        assert result == parse_expression("a.f = 5 + 1")

    def test_leaves_unmapped_names(self):
        expr = parse_expression("t = v")
        assert subst_expr(expr, {"t": NullConst()}) == parse_expression("null = v")


class TestDesugaring:
    SOURCE = """
    field f
    proc p(t) requires t != null ensures t.f = 1
    impl p(t) { t.f := 1 }
    proc caller(u)
    impl caller(u) { p(u) ; assert u.f = 1 }
    """

    def test_impl_gains_assume_and_assert(self):
        scope = desugar_contracts(Scope.from_source(self.SOURCE))
        (impl,) = scope.impls_of("p")
        # assume t != null ; (body) ; assert t.f = 1
        assert isinstance(impl.body, Seq)
        first = impl.body.first
        assert isinstance(first, Seq) and isinstance(first.first, Assume)
        assert isinstance(impl.body.second, Assert)

    def test_call_sites_gain_assert_and_assume_with_actuals(self):
        scope = desugar_contracts(Scope.from_source(self.SOURCE))
        (impl,) = scope.impls_of("caller")
        # ((assert u != null ; p(u)) ; assume u.f = 1) ; assert u.f = 1
        call_part = impl.body.first
        pre = call_part.first.first
        assert isinstance(pre, Assert)
        assert pre.condition == parse_expression("u != null")
        post = call_part.second
        assert isinstance(post, Assume)
        assert post.condition == parse_expression("u.f = 1")

    def test_contracts_removed_from_procs(self):
        scope = desugar_contracts(Scope.from_source(self.SOURCE))
        assert not scope.proc("p").has_contract

    def test_contract_free_scope_returned_unchanged(self):
        scope = Scope.from_source("proc p(t)\nimpl p(t) { skip }")
        assert desugar_contracts(scope) is scope

    def test_desugared_scope_is_well_formed(self):
        from repro.oolong.wellformed import check_well_formed

        scope = desugar_contracts(Scope.from_source(self.SOURCE))
        check_well_formed(scope)


class TestStaticChecking:
    def test_postcondition_verified_from_body(self):
        source = """
        group g
        field f in g
        proc p(t) modifies t.g requires t != null ensures t.f = 1
        impl p(t) { t.f := 1 }
        """
        report = check_program(source, LIMITS)
        assert report.ok, report.describe()

    def test_broken_postcondition_rejected(self):
        source = """
        group g
        field f in g
        proc p(t) modifies t.g requires t != null ensures t.f = 1
        impl p(t) { t.f := 2 }
        """
        report = check_program(source, LIMITS)
        assert not report.ok

    def test_trivial_precondition_follows_from_init(self):
        # The paper's Init (5) assumes alive($0, t) for every formal, so a
        # bare non-nullness precondition is discharged automatically.
        source = """
        group g
        field f in g
        proc p(t) modifies t.g requires t != null
        impl p(t) { assume t != null ; t.f := 1 }
        proc caller(u) modifies u.g
        impl caller(u) { p(u) }
        """
        report = check_program(source, LIMITS)
        assert report.verdict_for("caller").ok

    def test_caller_must_establish_precondition(self):
        source = """
        group g
        field f in g
        proc p(t) modifies t.g requires t.f = 1
        impl p(t) { assume t.f = 1 ; t.f := 1 }
        proc caller(u) modifies u.g
        impl caller(u) { p(u) }
        """
        report = check_program(source, LIMITS)
        # caller knows nothing about u.f, so `assert u.f = 1` is unprovable.
        assert not report.verdict_for("caller").ok

    def test_caller_may_rely_on_postcondition(self):
        source = """
        group g
        field f in g
        proc p(t) modifies t.g requires t != null ensures t.f = 1
        impl p(t) { t.f := 1 }
        proc caller(u) modifies u.g requires u != null
        impl caller(u) { p(u) ; assert u.f = 1 }
        """
        report = check_program(source, LIMITS)
        assert report.verdict_for("caller").ok, report.describe()


class TestRuntimeChecking:
    def test_violated_precondition_fails_at_call_site(self):
        source = """
        field f
        proc p(t) requires t != null
        impl p(t) { skip }
        proc main()
        impl main() { p(null) }
        """
        outcomes = explore_program(parse_program(source), "main")
        assert [o.kind for o in outcomes] == [OutcomeKind.WRONG_ASSERT]

    def test_violated_postcondition_fails_in_impl(self):
        source = """
        group g
        field f in g
        proc p(t) modifies t.g requires t != null ensures t.f = 1
        impl p(t) { t.f := 2 }
        proc main()
        impl main() { var a in a := new() ; p(a) end }
        """
        outcomes = explore_program(parse_program(source), "main")
        assert [o.kind for o in outcomes] == [OutcomeKind.WRONG_ASSERT]

    def test_honoured_contract_runs_normally(self):
        source = """
        group g
        field f in g
        proc p(t) modifies t.g requires t != null ensures t.f = 1
        impl p(t) { t.f := 1 }
        proc main()
        impl main() { var a in a := new() ; p(a) ; assert a.f = 1 end }
        """
        outcomes = explore_program(parse_program(source), "main")
        assert [o.kind for o in outcomes] == [OutcomeKind.NORMAL]
