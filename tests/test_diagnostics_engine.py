"""Tests for the shared OLxxx diagnostics engine."""

import json

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    Note,
    Severity,
    code_for_rule,
    diagnostic_from_error,
    exceeds_threshold,
    max_severity,
    render_json,
    render_text,
    rule_for_code,
    sorted_diagnostics,
)
from repro.errors import ReproError, SourcePosition


def diag(code, message="boom", line=1, column=1, file=None, impl="p", notes=()):
    return Diagnostic(
        code=code,
        message=message,
        position=SourcePosition(line, column, file=file),
        impl=impl,
        notes=tuple(notes),
    )


class TestCodes:
    def test_registry_is_total(self):
        for code, (severity, title) in CODES.items():
            assert code.startswith("OL") and len(code) == 5
            assert code_for_rule(rule_for_code(code)) == code
            assert isinstance(severity, Severity) and title

    def test_families_by_hundreds(self):
        for code, (severity, _) in CODES.items():
            family = code[2]
            if family == "1":
                assert severity is Severity.ERROR  # restrictions
            elif family == "2":
                assert severity in (Severity.WARNING, Severity.INFO)  # lints

    def test_legacy_rule_aliases_survive(self):
        # the pre-existing syntactic rule tags must keep resolving
        assert code_for_rule("pivot-target") == "OL101"
        assert code_for_rule("pivot-read") == "OL102"
        assert code_for_rule("object-op") == "OL103"
        assert code_for_rule("formal-copy") == "OL104"
        assert code_for_rule("formal-target") == "OL105"

    def test_default_severity_filled_in(self):
        d = diag("OL302")
        assert d.severity is Severity.WARNING
        assert d.rule == rule_for_code("OL302")


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.INFO.rank
        assert Severity.ERROR.at_least(Severity.WARNING)
        assert not Severity.INFO.at_least(Severity.WARNING)

    def test_max_severity(self):
        assert max_severity([]) is None
        assert max_severity([diag("OL204"), diag("OL302")]) is Severity.WARNING
        assert max_severity([diag("OL302"), diag("OL110")]) is Severity.ERROR

    def test_exceeds_threshold(self):
        diags = [diag("OL302")]
        assert exceeds_threshold(diags, "warning")
        assert not exceeds_threshold(diags, "error")
        assert not exceeds_threshold([], "warning")


class TestSorting:
    def test_sorted_by_file_line_column_code(self):
        diags = [
            diag("OL302", line=9),
            diag("OL110", line=2, column=7),
            diag("OL102", line=2, column=7),
            diag("OL201", line=2, column=3, file="a.oolong"),
        ]
        ordered = sorted_diagnostics(diags)
        keys = [(d.position.file, d.position.line, d.position.column, d.code) for d in ordered]
        assert keys == sorted(keys, key=lambda k: (k[0] or "", k[1], k[2], k[3]))
        assert ordered[-1].code == "OL201" or ordered[0].code in ("OL102", "OL110")


class TestRendering:
    def test_str_form(self):
        d = diag("OL110", message="leak", line=3, column=5, file="x.oolong")
        assert str(d) == "x.oolong:3:5: error[OL110] impl p: leak"

    def test_text_renderer_caret_snippet(self):
        source = "group g\nfield f in g\n"
        text = render_text(
            [diag("OL202", message="field 'f' unused", line=2, column=1, file="m.oolong")],
            {"m.oolong": source},
        )
        assert "warning[OL202]" in text
        assert "  | field f in g" in text
        assert "  | ^" in text

    def test_text_renderer_notes(self):
        note = Note("copied here", SourcePosition(4, 2, file="m.oolong"))
        text = render_text([diag("OL110", notes=[note], file="m.oolong")], {})
        assert "note:" in text and "copied here" in text

    def test_json_renderer_stable_and_parseable(self):
        payload = render_json(
            [diag("OL301", message="m", line=1, column=2, file="f.oolong")],
            ok=False,
        )
        data = json.loads(payload)
        assert data["ok"] is False
        (entry,) = data["diagnostics"]
        assert entry["code"] == "OL301"
        assert entry["severity"] == "error"
        assert entry["file"] == "f.oolong"
        assert entry["rule"] == rule_for_code("OL301")
        # stable: same input, same output
        assert payload == render_json(
            [diag("OL301", message="m", line=1, column=2, file="f.oolong")], ok=False
        )

    def test_diagnostic_from_error(self):
        err = ReproError("bad scope", position=SourcePosition(7, 3))
        d = diagnostic_from_error(err)
        assert d.code == "OL100" and d.severity is Severity.ERROR
        assert d.position.line == 7
