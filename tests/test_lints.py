"""Tests for the lint passes, the call graph, and the lint engine."""

from repro.analysis.callgraph import CallGraph, check_recursion
from repro.analysis.engine import lint_program, lint_scope
from repro.analysis.lints import check_unreachable_code, check_unused_declarations
from repro.corpus.programs import (
    LINKED_LIST,
    ONCE_TWICE,
    RATIONAL,
    SECTION3_CLIENT,
    SECTION3_LEAKING_M,
    STACK_VECTOR,
)
from repro.oolong.program import Scope


def codes(diags):
    return [d.code for d in diags]


class TestUnusedDeclarations:
    def test_unused_group_and_field(self):
        source = """
        group used
        group dusty
        field f in used
        field ghost
        proc p(t) modifies t.used
        impl p(t) { assume t != null ; t.f := 1 }
        """
        diags = check_unused_declarations(Scope.from_source(source))
        assert sorted(codes(diags)) == ["OL201", "OL202"]
        messages = " ".join(d.message for d in diags)
        assert "dusty" in messages and "ghost" in messages

    def test_paper_programs_have_no_unused_decls(self):
        for source in (RATIONAL, STACK_VECTOR, LINKED_LIST):
            assert check_unused_declarations(Scope.from_source(source)) == []

    def test_group_used_only_in_modifies_counts(self):
        source = "group g\nproc p(t) modifies t.g"
        assert check_unused_declarations(Scope.from_source(source)) == []


class TestUnreachable:
    def test_code_after_assume_false(self):
        source = """
        group g
        field f in g
        proc p(t) modifies t.g
        impl p(t) { assume false ; t.f := 1 }
        """
        diags = check_unreachable_code(Scope.from_source(source))
        assert codes(diags) == ["OL203"]

    def test_code_after_assert_false(self):
        source = """
        group g
        field f in g
        proc p(t) modifies t.g
        impl p(t) { assert false ; t.f := 1 }
        """
        diags = check_unreachable_code(Scope.from_source(source))
        assert codes(diags) == ["OL203"]

    def test_one_live_branch_keeps_join_reachable(self):
        source = """
        group g
        field f in g
        proc p(t) modifies t.g
        impl p(t) {
          ( assume false ; skip [] assume t != null ; skip ) ;
          t.f := 1
        }
        """
        assert check_unreachable_code(Scope.from_source(source)) == []

    def test_paper_programs_fully_reachable(self):
        for source in (RATIONAL, STACK_VECTOR, LINKED_LIST):
            assert check_unreachable_code(Scope.from_source(source)) == []


class TestCallGraph:
    def test_edges_and_reachability(self):
        graph = CallGraph(Scope.from_source(STACK_VECTOR))
        assert graph.callees("push") == frozenset({"vec_add"})
        assert "vec_add" in graph.reachable_from("push")
        assert graph.call_site("push", "vec_add") is not None
        assert graph.callees("vec_add") == frozenset()

    def test_self_recursion_cycle(self):
        graph = CallGraph(Scope.from_source(LINKED_LIST))
        assert graph.cycles() == [("updateAll",)]

    def test_acyclic_scope_has_no_cycles(self):
        assert CallGraph(Scope.from_source(ONCE_TWICE)).cycles() == []

    def test_recursion_lint_is_info(self):
        diags = check_recursion(Scope.from_source(LINKED_LIST))
        assert codes(diags) == ["OL204"]
        assert diags[0].severity.value == "info"
        assert "updateAll" in diags[0].message

    def test_mutual_recursion_detected(self):
        source = """
        group g
        proc a(t) modifies t.g
        proc b(t) modifies t.g
        impl a(t) { assume t != null ; b(t) }
        impl b(t) { assume t != null ; a(t) }
        """
        diags = check_recursion(Scope.from_source(source))
        assert codes(diags) == ["OL204"]
        assert "a -> b -> a" in diags[0].message


class TestEngine:
    def test_clean_program(self):
        result = lint_program(RATIONAL)
        assert result.ok and result.diagnostics == []
        assert "normalize" in result.inferred_modifies

    def test_all_passes_compose(self):
        result = lint_program(SECTION3_CLIENT + SECTION3_LEAKING_M)
        got = set(codes(result.diagnostics))
        # syntactic pivot-read + flow escape at least
        assert {"OL102", "OL110"} <= got
        assert not result.ok
        assert result.errors and result.by_code("OL110")

    def test_passes_can_be_disabled(self):
        result = lint_program(
            SECTION3_CLIENT + SECTION3_LEAKING_M,
            include_restrictions=False,
            include_flow=False,
        )
        assert "OL102" not in codes(result.diagnostics)
        assert "OL110" not in codes(result.diagnostics)

    def test_ill_formed_short_circuits_to_ol100(self):
        result = lint_program("field f in nowhere")
        assert codes(result.diagnostics) == ["OL100"]
        assert not result.ok

    def test_diagnostics_come_back_sorted(self):
        result = lint_program(SECTION3_CLIENT + SECTION3_LEAKING_M)
        lines = [d.position.line for d in result.diagnostics if d.position]
        assert lines == sorted(lines)
