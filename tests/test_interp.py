"""Unit tests for the nondeterministic interpreter and runtime monitors."""

import pytest

from repro.errors import InterpError
from repro.oolong.program import Scope
from repro.semantics.interp import (
    ExplorationConfig,
    Interpreter,
    OutcomeKind,
    explore_program,
)
from repro.semantics.store import ObjRef, RuntimeStore


def outcomes_of(source, entry="main", config=None, args=()):
    scope = Scope.from_source(source)
    return explore_program(scope, entry, args, config)


def kinds_of(source, **kwargs):
    return sorted(o.kind.value for o in outcomes_of(source, **kwargs))


MAIN = "proc main()\nimpl main() {{ {body} }}"


def main_program(body, decls=""):
    return decls + "\n" + MAIN.format(body=body)


class TestBasicExecution:
    def test_skip_terminates_normally(self):
        assert kinds_of(main_program("skip")) == ["normal"]

    def test_assert_true_passes(self):
        assert kinds_of(main_program("assert 1 = 1")) == ["normal"]

    def test_assert_false_goes_wrong(self):
        assert kinds_of(main_program("assert 1 = 2")) == ["assert failed"]

    def test_assume_false_blocks(self):
        assert kinds_of(main_program("assume false ; assert false")) == ["blocked"]

    def test_sequence_threads_state(self):
        body = "var x in x := 1 ; x := x + 1 ; assert x = 2 end"
        assert kinds_of(main_program(body)) == ["normal"]

    def test_choice_explores_both_branches(self):
        body = "var x in (x := 1 [] x := 2) ; assert x = 1 end"
        assert kinds_of(main_program(body)) == ["assert failed", "normal"]

    def test_if_sugar(self):
        body = (
            "var x in x := 3 ;"
            " if x < 5 then x := 1 else x := 2 end ;"
            " assert x = 1 end"
        )
        # The paper's encoding blocks the untaken branch.
        assert kinds_of(main_program(body)) == ["blocked", "normal"]

    def test_var_initial_value_candidates(self):
        config = ExplorationConfig(var_candidates=(None, 0, 1))
        body = "var x in assert x = 0 end"
        kinds = kinds_of(main_program(body), config=config)
        assert kinds.count("normal") == 1
        assert len(kinds) == 3

    def test_allocation_distinct(self):
        body = "var a in var b in a := new() ; b := new() ; assert a != b end end"
        assert kinds_of(main_program(body)) == ["normal"]

    def test_field_roundtrip(self):
        body = "var a in a := new() ; a.f := 7 ; assert a.f = 7 end"
        assert kinds_of(main_program(body, "field f")) == ["normal"]

    def test_fresh_fields_read_null(self):
        body = "var a in a := new() ; assert a.f = null end"
        assert kinds_of(main_program(body, "field f")) == ["normal"]

    def test_arithmetic_and_comparisons(self):
        body = "assert 2 + 3 * 4 = 14 ; assert 5 - 2 >= 3 ; assert !(4 < 4)"
        assert kinds_of(main_program(body)) == ["normal"]


class TestDynamicErrors:
    def test_null_dereference_is_error(self):
        body = "var a in a := null ; a.f := 1 end"
        assert kinds_of(main_program(body, "field f")) == ["dynamic error"]

    def test_null_read_is_error(self):
        body = "var a in assert a.f = null end"
        assert kinds_of(main_program(body, "field f")) == ["dynamic error"]

    def test_arithmetic_on_objects_is_error(self):
        body = "var a in a := new() ; assert a + 1 = 2 end"
        assert kinds_of(main_program(body)) == ["dynamic error"]

    def test_non_boolean_condition_is_error(self):
        assert kinds_of(main_program("assume 3")) == ["dynamic error"]

    def test_unknown_procedure_raises(self):
        scope = Scope.from_source("proc main()\nimpl main() { skip }")
        with pytest.raises(InterpError):
            explore_program(scope, "missing")

    def test_unimplemented_callee_raises(self):
        source = "proc helper(x)\nproc main()\nimpl main() { helper(null) }"
        with pytest.raises(InterpError):
            outcomes_of(source)


class TestCallsAndDispatch:
    def test_call_binds_parameters(self):
        source = """
        field f
        proc set7(t) modifies t.f
        impl set7(t) { t.f := 7 }
        proc main()
        impl main() { var a in a := new() ; set7(a) ; assert a.f = 7 end }
        """
        assert kinds_of(source) == ["normal"]

    def test_multiple_impls_dispatch_demonically(self):
        source = """
        field f
        proc set(t) modifies t.f
        impl set(t) { t.f := 1 }
        impl set(t) { t.f := 2 }
        proc main()
        impl main() { var a in a := new() ; set(a) ; assert a.f = 1 end }
        """
        assert kinds_of(source) == ["assert failed", "normal"]

    def test_callee_env_is_isolated(self):
        source = """
        proc helper(t)
        impl helper(t) { var inner in inner := 5 end }
        proc main()
        impl main() { var t in t := 1 ; helper(null) ; assert t = 1 end }
        """
        assert kinds_of(source) == ["normal"]

    def test_recursion_hits_depth_limit(self):
        source = """
        proc loop(t)
        impl loop(t) { loop(t) }
        proc main()
        impl main() { loop(null) }
        """
        config = ExplorationConfig(max_call_depth=8)
        assert kinds_of(source, config=config) == ["exploration limit reached"]


class TestModifiesMonitor:
    DECLS = """
    group data
    field f in data
    field g
    proc licensed(t) modifies t.data
    impl licensed(t) { t.f := 1 }
    proc rogue(t)
    impl rogue(t) { t.f := 1 }
    proc wrongfield(t) modifies t.data
    impl wrongfield(t) { t.g := 1 }
    """

    def test_write_within_licence(self):
        body = "var a in a := new() ; licensed(a) end"
        assert kinds_of(main_program(body, self.DECLS)) == ["normal"]

    def test_write_without_licence_flagged(self):
        body = "var a in a := new() ; rogue(a) end"
        assert kinds_of(main_program(body, self.DECLS)) == ["modifies violation"]

    def test_write_outside_group_flagged(self):
        body = "var a in a := new() ; wrongfield(a) end"
        assert kinds_of(main_program(body, self.DECLS)) == ["modifies violation"]

    def test_fresh_objects_are_free(self):
        decls = self.DECLS + """
        proc fresh(t)
        impl fresh(t) { var a in a := new() ; a.f := 1 ; a.g := 2 end }
        """
        body = "fresh(null)"
        assert kinds_of(main_program(body, decls)) == ["normal"]

    def test_monitor_can_be_disabled(self):
        body = "var a in a := new() ; rogue(a) end"
        config = ExplorationConfig(check_modifies=False)
        assert kinds_of(main_program(body, self.DECLS), config=config) == ["normal"]

    def test_rep_inclusion_extends_licence(self):
        decls = """
        group contents
        group elems
        field cnt in elems
        field vec in contents maps elems into contents
        proc bump(s) modifies s.contents
        impl bump(s) { s.vec.cnt := 1 }
        """
        body = "var s in s := new() ; s.vec := new() ; bump(s) end"
        assert kinds_of(main_program(body, decls)) == ["normal"]

    def test_licence_fixed_at_entry(self):
        # Swinging the pivot mid-call must not extend the licence to the
        # vector that was current at entry... the *new* vector is fresh and
        # free; the old one is no longer covered once the pivot swings, but
        # writes to it before swinging were legal. This exercises entry
        # evaluation: the licence covers the entry-time vector.
        decls = """
        group contents
        group elems
        field cnt in elems
        field vec in contents maps elems into contents
        proc swing(s) modifies s.contents
        impl swing(s) { s.vec := new() ; s.vec.cnt := 1 }
        """
        body = "var s in s := new() ; s.vec := new() ; swing(s) end"
        assert kinds_of(main_program(body, decls)) == ["normal"]


class TestPivotMonitor:
    DECLS = """
    group contents
    field cnt
    field obj
    field vec maps cnt into contents
    """

    def test_unique_pivot_ok(self):
        body = "var s in s := new() ; s.vec := new() end"
        assert kinds_of(main_program(body, self.DECLS)) == ["normal"]

    def test_duplicated_pivot_value_flagged(self):
        # Simulates what the restriction checker forbids syntactically:
        # copying a pivot value into another field (monitors off for
        # modifies since main has no licence).
        body = (
            "var s in var r in s := new() ; r := new() ;"
            " s.vec := new() ; r.obj := s.vec end end"
        )
        config = ExplorationConfig(check_modifies=False)
        kinds = kinds_of(main_program(body, self.DECLS), config=config)
        assert kinds == ["pivot uniqueness violated"]

    def test_monitor_can_be_disabled(self):
        body = (
            "var s in var r in s := new() ; r := new() ;"
            " s.vec := new() ; r.obj := s.vec end end"
        )
        config = ExplorationConfig(
            check_modifies=False, check_pivot_uniqueness=False
        )
        kinds = kinds_of(main_program(body, self.DECLS), config=config)
        assert kinds == ["normal"]


class TestOwnerExclusionMonitor:
    DECLS = """
    group contents
    field cnt
    field vec maps cnt into contents
    proc touch(v) modifies v.cnt
    impl touch(v) { assume v != null ; v.cnt := 1 }
    proc poke(s, v) modifies s.contents
    impl poke(s, v) { skip }
    """

    def test_passing_pivot_to_owner_modifier_flagged(self):
        body = "var s in s := new() ; s.vec := new() ; poke(s, s.vec) end"
        kinds = kinds_of(main_program(body, self.DECLS))
        assert kinds == ["owner exclusion violated"]

    def test_passing_pivot_to_safe_callee_ok(self):
        body = "var s in s := new() ; s.vec := new() ; touch(s.vec) end"
        assert kinds_of(main_program(body, self.DECLS)) == ["normal"]

    def test_monitor_can_be_disabled(self):
        body = "var s in s := new() ; s.vec := new() ; poke(s, s.vec) end"
        config = ExplorationConfig(check_owner_exclusion=False)
        assert kinds_of(main_program(body, self.DECLS), config=config) == ["normal"]


class TestStore:
    def test_allocation_order(self):
        store = RuntimeStore()
        a, b = store.allocate(), store.allocate()
        assert a != b
        assert store.is_alive(a) and store.is_alive(b)

    def test_snapshot_is_independent(self):
        store = RuntimeStore()
        obj = store.allocate()
        snap = store.snapshot()
        store.write(obj, "f", 1)
        assert snap.read(obj, "f") is None
        assert store.read(obj, "f") == 1

    def test_unwritten_fields_are_null(self):
        store = RuntimeStore()
        obj = store.allocate()
        assert store.read(obj, "anything") is None

    def test_non_objects_not_alive(self):
        store = RuntimeStore()
        assert not store.is_alive(None)
        assert not store.is_alive(3)
        assert not store.is_alive(ObjRef(99))
