"""Tests for the three baseline analyses."""

import pytest

from repro.api import parse_program
from repro.baselines.naive_modular import naive_check_scope
from repro.baselines.regions import check_single_region
from repro.baselines.whole_program import frame_query, infer_effects
from repro.oolong.program import Scope
from repro.prover.core import Limits

LIMITS = Limits(time_budget=120.0)


class TestWholeProgramInference:
    SOURCE = """
    field f
    field g
    field h
    proc leaf(t)
    impl leaf(t) { assume t != null ; t.f := 1 }
    proc middle(t)
    impl middle(t) { leaf(t) ; t.g := 2 }
    proc top(t)
    impl top(t) { middle(t) }
    proc silent(t)
    impl silent(t) { skip }
    """

    def test_direct_writes(self):
        table = infer_effects(Scope.from_source(self.SOURCE))
        assert table.writes("leaf") == {"f"}

    def test_transitive_writes(self):
        table = infer_effects(Scope.from_source(self.SOURCE))
        assert table.writes("middle") == {"f", "g"}
        assert table.writes("top") == {"f", "g"}

    def test_silent_proc_has_no_effects(self):
        table = infer_effects(Scope.from_source(self.SOURCE))
        assert table.writes("silent") == frozenset()
        assert table.whole_program

    def test_frame_queries(self):
        table = infer_effects(Scope.from_source(self.SOURCE))
        assert frame_query(table, "leaf", "g")
        assert not frame_query(table, "leaf", "f")
        assert not frame_query(table, "top", "f")
        assert frame_query(table, "top", "h")

    def test_missing_impl_defaults_to_top_effect(self):
        source = """
        field f
        field g
        proc opaque(t)
        proc caller(t)
        impl caller(t) { opaque(t) }
        """
        table = infer_effects(Scope.from_source(source))
        assert not table.whole_program
        assert table.writes("opaque") == {"f", "g"}
        assert table.writes("caller") == {"f", "g"}

    def test_object_insensitivity_is_the_precision_gap(self):
        # One write to cnt anywhere spoils every x.cnt query — whereas the
        # data-group checker proves q's v.cnt preserved across push.
        source = """
        field cnt
        proc push(st, o)
        impl push(st, o) { assume st != null ; st.cnt := 1 }
        """
        table = infer_effects(Scope.from_source(source))
        assert not frame_query(table, "push", "cnt")

    def test_recursive_procedures_reach_fixpoint(self):
        source = """
        field f
        proc even(t)
        proc odd(t)
        impl even(t) { odd(t) }
        impl odd(t) { assume t != null ; t.f := 1 ; even(t) }
        """
        table = infer_effects(Scope.from_source(source))
        assert table.writes("even") == {"f"}
        assert table.writes("odd") == {"f"}


class TestRegionsBaseline:
    def test_single_region_accepted(self):
        scope = Scope.from_source("group r\nfield f in r")
        assert check_single_region(scope) == []

    def test_field_in_two_groups_rejected(self):
        scope = Scope.from_source("group a\ngroup b\nfield f in a, b")
        (violation,) = check_single_region(scope)
        assert violation.attribute == "f"
        assert set(violation.regions) == {"a", "b"}

    def test_group_in_two_groups_rejected(self):
        scope = Scope.from_source("group a\ngroup b\ngroup c in a, b")
        (violation,) = check_single_region(scope)
        assert violation.attribute == "c"

    def test_maps_into_two_groups_rejected(self):
        scope = Scope.from_source(
            "group a\ngroup b\nfield x\nfield f maps x into a, b"
        )
        (violation,) = check_single_region(scope)
        assert violation.attribute == "f.x"

    def test_data_groups_accept_what_regions_reject(self):
        # The paper's Section 1 point: multi-group membership is useful and
        # verifiable with data groups.
        from repro.api import check_program

        source = """
        group position
        group appearance
        field x in position
        field color in appearance
        field z in position, appearance
        proc move(t) modifies t.position
        impl move(t) { assume t != null ; t.x := 1 ; t.z := 2 }
        proc paint(t) modifies t.appearance
        impl paint(t) { assume t != null ; t.color := 1 ; t.z := 2 }
        """
        scope = parse_program(source)
        assert check_single_region(scope)  # regions say no
        report = check_program(source, LIMITS)
        assert report.ok, report.describe()  # data groups say yes


class TestNaiveBaseline:
    def test_honest_programs_still_verify(self):
        from repro.corpus.programs import RATIONAL

        report = naive_check_scope(parse_program(RATIONAL), LIMITS)
        assert report.ok

    def test_never_reports_pivot_violations(self):
        from repro.corpus.programs import SECTION3_CLIENT, SECTION3_LEAKING_M

        scope = parse_program(SECTION3_CLIENT + SECTION3_LEAKING_M)
        report = naive_check_scope(scope, LIMITS)
        assert report.pivot_violations == []

    def test_accepts_owner_exclusion_violation(self):
        from repro.corpus.programs import SECTION3_OWNER_BAD_CALL, SECTION3_W

        scope = parse_program(SECTION3_W + SECTION3_OWNER_BAD_CALL)
        report = naive_check_scope(scope, LIMITS)
        assert report.verdict_for("bad").ok

    def test_still_rejects_plain_licence_violations(self):
        source = """
        group g
        field f
        proc p(t) modifies t.g
        impl p(t) { assume t != null ; t.f := 1 }
        """
        report = naive_check_scope(parse_program(source), LIMITS)
        assert not report.ok
