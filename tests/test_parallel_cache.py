"""Unit tests for the crash-safe incremental result cache.

The cache's contract has two halves: the *key* must change whenever
anything verdict-relevant changes (implementation source, scope
interface, prover limits, code version), and an *entry* must never be
trusted unless it validates end to end (checksum, version stamp, key
binding, status whitelist). Both halves are exercised here directly,
below the checker driver.
"""

import json
import os

import pytest

from repro.oolong.ast import ImplDecl
from repro.oolong.program import Scope
from repro.parallel.cache import (
    CACHEABLE_STATUSES,
    ResultCache,
    _checksum,
    atomic_write_text,
    cache_key,
    code_version,
    payload_to_verdict,
    validate_entry,
    verdict_to_payload,
)
from repro.prover.core import Limits, ProverStats
from repro.vcgen.checker import ImplStatus, ImplVerdict, check_scope

LIMITS = Limits(time_budget=60.0)

GOOD = """
group data
field payload in data
proc touch(t) modifies t.data
impl touch(t) { assume t != null ; t.payload := 1 }
"""

VARIANT = """
group data
field payload in data
proc touch(t) modifies t.data
impl touch(t) { assume t != null ; t.payload := 2 }
"""


def _scope(source=GOOD):
    return Scope.from_source(source)


def _impl(scope):
    return next(
        decl for decl in scope.decls if isinstance(decl, ImplDecl)
    )


class TestCacheKey:
    def test_key_is_deterministic(self):
        scope = _scope()
        first = cache_key(scope, _impl(scope), 0, LIMITS)
        second = cache_key(_scope(), _impl(_scope()), 0, LIMITS)
        assert first == second

    def test_key_depends_on_impl_source(self):
        scope, variant = _scope(), _scope(VARIANT)
        assert cache_key(scope, _impl(scope), 0, LIMITS) != cache_key(
            variant, _impl(variant), 0, LIMITS
        )

    def test_key_depends_on_scope_interface(self):
        widened = _scope(GOOD.replace(
            "field payload in data",
            "field payload in data\nfield extra in data",
        ))
        scope = _scope()
        assert cache_key(scope, _impl(scope), 0, LIMITS) != cache_key(
            widened, _impl(widened), 0, LIMITS
        )

    def test_key_depends_on_limits_and_index(self):
        scope = _scope()
        impl = _impl(scope)
        base = cache_key(scope, impl, 0, LIMITS)
        assert base != cache_key(scope, impl, 1, LIMITS)
        assert base != cache_key(
            scope, impl, 0, Limits(time_budget=1.0)
        )

    def test_key_ignores_batch_budgets(self):
        # Scope budgets decide *whether* a job runs, not its verdict —
        # changing them must not invalidate the cache.
        scope = _scope()
        impl = _impl(scope)
        assert cache_key(scope, impl, 0, LIMITS) == cache_key(
            scope, impl, 0, Limits(time_budget=60.0, scope_time_budget=5.0)
        )

    def test_key_carries_code_version(self):
        assert "+cache" in code_version()


def _verified_payload(scope):
    report = check_scope(scope, LIMITS)
    verdict = report.verdicts[0]
    assert verdict.status is ImplStatus.VERIFIED
    payload = verdict_to_payload(verdict)
    assert payload is not None
    return verdict, payload


class TestEntries:
    def test_store_then_load_round_trips(self, tmp_path):
        scope = _scope()
        verdict, payload = _verified_payload(scope)
        cache = ResultCache(str(tmp_path))
        key = cache_key(scope, _impl(scope), 0, LIMITS)
        assert cache.store(key, payload, impl="touch", index=0)
        loaded = cache.load(key)
        assert loaded == payload
        rehydrated = payload_to_verdict(loaded, _impl(scope), 0)
        assert rehydrated.status is verdict.status
        assert rehydrated.stats.instantiations == verdict.stats.instantiations
        assert cache.summary() == {
            "directory": str(tmp_path),
            "hits": 1,
            "misses": 0,
            "stores": 1,
            "rejections": 0,
        }

    def test_missing_entry_is_a_plain_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.load("0" * 64) is None
        assert cache.misses == 1
        assert not cache.rejections

    def test_store_leaves_no_temp_files(self, tmp_path):
        scope = _scope()
        _, payload = _verified_payload(scope)
        cache = ResultCache(str(tmp_path))
        key = cache_key(scope, _impl(scope), 0, LIMITS)
        cache.store(key, payload, impl="touch", index=0)
        assert sorted(os.listdir(tmp_path)) == [f"{key}.json"]

    def test_corrupted_entry_is_rejected(self, tmp_path):
        scope = _scope()
        _, payload = _verified_payload(scope)
        cache = ResultCache(str(tmp_path))
        key = cache_key(scope, _impl(scope), 0, LIMITS)
        cache.store(key, payload, impl="touch", index=0)
        path = tmp_path / f"{key}.json"
        raw = path.read_text()
        path.write_text(raw.replace('"verified"', '"not proved"', 1))
        assert cache.load(key) is None
        assert any("checksum" in reason for _, reason in cache.rejections)

    def test_truncated_entry_is_rejected(self, tmp_path):
        scope = _scope()
        _, payload = _verified_payload(scope)
        cache = ResultCache(str(tmp_path))
        key = cache_key(scope, _impl(scope), 0, LIMITS)
        cache.store(key, payload, impl="touch", index=0)
        path = tmp_path / f"{key}.json"
        path.write_text(path.read_text()[: 40])
        assert cache.load(key) is None
        assert any("unreadable" in reason for _, reason in cache.rejections)

    def test_version_skew_is_rejected(self, tmp_path):
        scope = _scope()
        _, payload = _verified_payload(scope)
        cache = ResultCache(str(tmp_path))
        key = cache_key(scope, _impl(scope), 0, LIMITS)
        cache.store(key, payload, impl="touch", index=0)
        path = tmp_path / f"{key}.json"
        entry = json.loads(path.read_text())
        entry["payload"]["code_version"] = "0.0.0+cache0"
        entry["checksum"] = _checksum(entry["payload"])
        path.write_text(json.dumps(entry))
        assert cache.load(key) is None
        assert any(
            "version skew" in reason for _, reason in cache.rejections
        )

    def test_entry_bound_to_its_key(self, tmp_path):
        scope = _scope()
        _, payload = _verified_payload(scope)
        cache = ResultCache(str(tmp_path))
        key = cache_key(scope, _impl(scope), 0, LIMITS)
        cache.store(key, payload, impl="touch", index=0)
        alias = "f" * 64
        (tmp_path / f"{alias}.json").write_text(
            (tmp_path / f"{key}.json").read_text()
        )
        assert cache.load(alias) is None
        assert any(
            "key mismatch" in reason for _, reason in cache.rejections
        )


class TestValidateEntry:
    """The shared validation chain used by the local cache, the cache
    server (before serving), and the remote client (after receiving)."""

    def _entry(self, tmp_path):
        scope = _scope()
        _, payload = _verified_payload(scope)
        cache = ResultCache(str(tmp_path))
        key = cache_key(scope, _impl(scope), 0, LIMITS)
        cache.store(key, payload, impl="touch", index=0)
        entry = json.loads((tmp_path / f"{key}.json").read_text())
        return entry, key, payload

    def test_valid_entry_passes(self, tmp_path):
        entry, key, payload = self._entry(tmp_path)
        verdict, reason = validate_entry(entry, key)
        assert reason is None
        assert verdict == payload

    def test_non_dict_and_payloadless_entries_rejected(self):
        for junk in (None, 17, [], {"checksum": "x"}):
            verdict, reason = validate_entry(junk, "0" * 64)
            assert verdict is None
            assert "no payload" in reason

    def test_checksum_mismatch_rejected(self, tmp_path):
        entry, key, _ = self._entry(tmp_path)
        entry["payload"]["index"] = 99
        verdict, reason = validate_entry(entry, key)
        assert verdict is None
        assert "checksum" in reason

    def test_wrong_key_rejected(self, tmp_path):
        entry, _, _ = self._entry(tmp_path)
        verdict, reason = validate_entry(entry, "f" * 64)
        assert verdict is None
        assert "key mismatch" in reason

    def test_uncacheable_status_rejected(self, tmp_path):
        entry, key, _ = self._entry(tmp_path)
        entry["payload"]["verdict"]["status"] = "timed out"
        entry["checksum"] = _checksum(entry["payload"])
        verdict, reason = validate_entry(entry, key)
        assert verdict is None
        assert "bad verdict" in reason


class TestSizeBound:
    def _farm_entries(self, count=4):
        """Distinct (key, payload) pairs from one small checked scope."""
        from repro.corpus.generators import generate_impl_farm

        scope = _scope(generate_impl_farm(count, 6))
        report = check_scope(scope, LIMITS)
        return [
            (cache_key(scope, v.impl, v.index, LIMITS), verdict_to_payload(v))
            for v in report.verdicts
        ]

    def test_store_evicts_oldest_beyond_budget(self, tmp_path):
        entries = self._farm_entries()
        # Budget for roughly one entry: every store beyond the first
        # must evict, oldest first.
        cache = ResultCache(str(tmp_path), max_bytes=2048)
        for index, (key, payload) in enumerate(entries):
            assert cache.store(key, payload, impl="farm", index=index)
            path = tmp_path / f"{key}.json"
            os.utime(path, (index, index))  # deterministic recency order
            cache._evict_to_budget()
        assert cache.evictions >= 1
        survivors = [n for n in os.listdir(tmp_path) if n.endswith(".json")]
        # The newest entry always survives; eviction consumed the oldest
        # first, so whatever fits beyond it is a suffix of the store order.
        assert f"{entries[-1][0]}.json" in survivors
        assert f"{entries[0][0]}.json" not in survivors
        assert len(survivors) < len(entries)
        summary = cache.summary()
        assert summary["max_bytes"] == 2048
        assert summary["evictions"] == cache.evictions

    def test_hits_refresh_recency(self, tmp_path):
        entries = self._farm_entries(3)
        cache = ResultCache(str(tmp_path))
        for index, (key, payload) in enumerate(entries[:2]):
            cache.store(key, payload, impl="farm", index=index)
            os.utime(tmp_path / f"{key}.json", (index, index))
        # A hit on the oldest entry touches its file, so the later
        # bounded store evicts the *other* one.
        assert cache.load(entries[0][0]) is not None
        bounded = ResultCache(str(tmp_path), max_bytes=2048)
        bounded.store(entries[2][0], entries[2][1], impl="farm", index=2)
        names = set(os.listdir(tmp_path))
        assert f"{entries[0][0]}.json" in names
        assert f"{entries[1][0]}.json" not in names

    def test_summary_json_is_never_evicted(self, tmp_path):
        entries = self._farm_entries(2)
        (tmp_path / "summary.json").write_text("{}")
        cache = ResultCache(str(tmp_path), max_bytes=1)
        for index, (key, payload) in enumerate(entries):
            cache.store(key, payload, impl="farm", index=index)
        assert (tmp_path / "summary.json").exists()


class TestAtomicWrite:
    def test_writes_and_overwrites(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(str(path), "first")
        assert path.read_text() == "first"
        atomic_write_text(str(path), "second")
        assert path.read_text() == "second"
        assert os.listdir(tmp_path) == ["out.json"]

    def test_failed_write_leaves_previous_content(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(str(path), "precious")

        class Boom(Exception):
            pass

        real_replace = os.replace

        def exploding_replace(src, dst):
            raise Boom()

        os.replace = exploding_replace
        try:
            with pytest.raises(Boom):
                atomic_write_text(str(path), "clobbered")
        finally:
            os.replace = real_replace
        assert path.read_text() == "precious"
        assert os.listdir(tmp_path) == ["out.json"]


class TestCacheability:
    def test_only_deterministic_statuses_are_cacheable(self):
        scope = _scope()
        impl = _impl(scope)
        for status in ImplStatus:
            verdict = ImplVerdict(
                impl=impl, index=0, status=status, stats=ProverStats()
            )
            payload = verdict_to_payload(verdict)
            if status.value in CACHEABLE_STATUSES:
                assert payload is not None
            else:
                assert payload is None

    def test_failing_verdicts_cache_their_obligation(self):
        failing = check_scope(_scope(BAD), LIMITS)
        verdict = failing.verdicts[0]
        assert verdict.status is ImplStatus.NOT_PROVED
        payload = verdict_to_payload(verdict)
        rehydrated = payload_to_verdict(payload, verdict.impl, 0)
        assert str(rehydrated.failed_obligation) == str(
            verdict.failed_obligation
        )


BAD = """
group data
field payload in data
field secret in data
proc touch(t) modifies t.payload
impl touch(t) { assume t != null ; t.secret := 1 }
"""
