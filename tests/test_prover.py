"""Unit tests for the solver: propositional, equality, quantifiers."""

import pytest

from repro.logic.terms import (
    And,
    App,
    Const,
    Eq,
    Exists,
    FalseF,
    Forall,
    Implies,
    IntLit,
    Not,
    Or,
    Pred,
    TrueF,
    Var,
    neq,
)
from repro.prover.core import Limits, Solver, Verdict, prove_valid

a, b, c = Const("a"), Const("b"), Const("c")
x, y = Var("x"), Var("y")


def P(t):
    return Pred("P", (t,))


def Q(t):
    return Pred("Q", (t,))


def f(t):
    return App("f", (t,))


def check(*formulas, limits=None):
    solver = Solver(limits or Limits(time_budget=10.0))
    for formula in formulas:
        solver.add(formula)
    return solver.check().verdict


class TestPropositional:
    def test_single_atom_sat(self):
        assert check(P(a)) is Verdict.SAT

    def test_contradiction_unsat(self):
        assert check(P(a), Not(P(a))) is Verdict.UNSAT

    def test_false_unsat(self):
        assert check(FalseF()) is Verdict.UNSAT

    def test_true_sat(self):
        assert check(TrueF()) is Verdict.SAT

    def test_disjunction_with_one_open_branch(self):
        assert check(Or((P(a), P(b))), Not(P(a))) is Verdict.SAT

    def test_disjunction_all_branches_closed(self):
        assert check(Or((P(a), P(b))), Not(P(a)), Not(P(b))) is Verdict.UNSAT

    def test_unit_propagation_chain(self):
        clauses = [
            Or((Not(P(a)), P(b))),
            Or((Not(P(b)), P(c))),
            P(a),
            Not(P(c)),
        ]
        assert check(*clauses) is Verdict.UNSAT

    def test_case_split_needed(self):
        # (P(a) | P(b)) & (!P(a) | P(c)) & (!P(b) | P(c)) & !P(c) is unsat.
        clauses = [
            Or((P(a), P(b))),
            Or((Not(P(a)), P(c))),
            Or((Not(P(b)), P(c))),
            Not(P(c)),
        ]
        assert check(*clauses) is Verdict.UNSAT

    def test_implication_modus_ponens(self):
        assert check(Implies(P(a), Q(a)), P(a), Not(Q(a))) is Verdict.UNSAT

    def test_nested_and_or(self):
        formula = And((Or((P(a), P(b))), Or((Not(P(a)), Not(P(b))))))
        assert check(formula) is Verdict.SAT


class TestEqualityReasoning:
    def test_eq_diseq_conflict(self):
        assert check(Eq(a, b), neq(a, b)) is Verdict.UNSAT

    def test_transitive_equality(self):
        assert check(Eq(a, b), Eq(b, c), neq(a, c)) is Verdict.UNSAT

    def test_congruence(self):
        assert check(Eq(a, b), neq(f(a), f(b))) is Verdict.UNSAT

    def test_function_values(self):
        assert check(Eq(f(a), a), Eq(f(b), b), Eq(a, b), neq(f(a), f(b))) is Verdict.UNSAT

    def test_predicate_congruence(self):
        assert check(P(a), Eq(a, b), Not(P(b))) is Verdict.UNSAT

    def test_arithmetic_folding(self):
        plus = App("+", (IntLit(1), IntLit(2)))
        assert check(neq(plus, IntLit(3))) is Verdict.UNSAT

    def test_comparison_folding(self):
        lt = Pred("<", (IntLit(1), IntLit(2)))
        assert check(Not(lt)) is Verdict.UNSAT

    def test_distinct_literals(self):
        assert check(Eq(IntLit(3), IntLit(4))) is Verdict.UNSAT


class TestQuantifiers:
    def test_universal_instantiation(self):
        axiom = Forall(("x",), Implies(P(x), Q(x)), ((App("P", (x,)),),))
        assert check(axiom, P(a), Not(Q(a))) is Verdict.UNSAT

    def test_universal_with_inferred_trigger(self):
        axiom = Forall(("x",), Implies(P(x), Q(x)))
        assert check(axiom, P(a), Not(Q(a))) is Verdict.UNSAT

    def test_instantiation_modulo_congruence(self):
        # Trigger mentions f(x); the ground atom is on c, with c = f(a).
        axiom = Forall(("x",), P(App("f", (x,))), ((App("f", (x,)),),))
        assert check(axiom, Eq(c, f(a)), Not(P(c))) is Verdict.UNSAT

    def test_multipattern(self):
        axiom = Forall(
            ("x", "y"),
            Implies(And((P(x), Q(y))), Pred("R", (x, y))),
            ((App("P", (x,)), App("Q", (y,))),),
        )
        goal_neg = Not(Pred("R", (a, b)))
        assert check(axiom, P(a), Q(b), goal_neg) is Verdict.UNSAT

    def test_nonlinear_pattern(self):
        # Pattern R(x, x) must match R(a, b) only once a = b.
        axiom = Forall(
            ("x",), Implies(Pred("R", (x, x)), P(x)), ((App("R", (x, x)),),)
        )
        r_ab = Pred("R", (a, b))
        assert check(axiom, r_ab, Eq(a, b), Not(P(a))) is Verdict.UNSAT
        assert check(axiom, r_ab, Not(P(a))) is Verdict.SAT

    def test_chained_instantiation_rounds(self):
        # P(a), P(x) => P(f(x)) ... needs two rounds to reach f(f(a)).
        axiom = Forall(("x",), Implies(P(x), P(f(x))), ((App("P", (x,)),),))
        goal_neg = Not(P(f(f(a))))
        assert check(axiom, P(a), goal_neg) is Verdict.UNSAT

    def test_matching_loop_hits_resource_limit(self):
        axiom = Forall(("x",), P(f(x)), ((App("P", (x,)),),))
        limits = Limits(max_instances=50, max_rounds=10, time_budget=5.0)
        assert check(axiom, P(a), limits=limits) is Verdict.RESOURCE_OUT

    def test_forall_under_disjunction(self):
        left = Forall(("x",), P(x), ((App("P", (x,)),),))
        formula = Or((left, Q(a)))
        assert check(formula, Not(Q(a)), Not(P(b)), P(c)) is Verdict.UNSAT

    def test_exists_becomes_witness(self):
        formula = Exists(("x",), P(x))
        assert check(formula) is Verdict.SAT

    def test_exists_conflict_with_universal(self):
        exists = Exists(("x",), P(x))
        no_p = Forall(("x",), Not(P(x)), ((App("P", (x,)),),))
        assert check(exists, no_p) is Verdict.UNSAT


class TestProveValid:
    def test_modus_ponens_valid(self):
        result = prove_valid([Implies(P(a), Q(a)), P(a)], Q(a))
        assert result.valid

    def test_invalid_goal(self):
        result = prove_valid([P(a)], Q(a))
        assert not result.valid
        assert result.verdict is Verdict.SAT

    def test_ordered_goal_conjunction(self):
        # Proving (P(a) & (P(a) => Q(a) holds via axiom)) uses obligation
        # chaining: the second conjunct's refutation may assume the first.
        axiom = Forall(("x",), Implies(P(x), Q(x)), ((App("P", (x,)),),))
        goal = And((P(a), Q(a)))
        result = prove_valid([axiom, P(a)], goal)
        assert result.valid

    def test_chained_obligations(self):
        # Goal: P(a) & Q(a), where Q(a) follows from P(a) by axiom. Without
        # ordered negation the Q(a) branch would lack P(a).
        axiom = Implies(P(a), Q(a))
        goal = And((P(a), Q(a)))
        assert prove_valid([axiom, P(a)], goal).valid

    def test_stats_populated(self):
        axiom = Forall(
            ("x",), Implies(P(x), Q(x)), ((App("P", (x,)),),), "p-implies-q"
        )
        result = prove_valid([axiom, P(a)], Q(a))
        assert result.valid
        assert result.stats.instantiations >= 1
        assert "p-implies-q" in result.stats.per_quantifier

    def test_rejects_open_formulas(self):
        solver = Solver()
        with pytest.raises(ValueError):
            solver.add(P(x))
        with pytest.raises(ValueError):
            solver.add_negated_goal(P(x))

    def test_validity_with_case_split_goal(self):
        goal = Or((P(a), Not(P(a))))
        assert prove_valid([], goal).valid


class TestDeadlines:
    """Cooperative time budgets: per-check and scope-wide (shared)."""

    def _hard_facts(self):
        # A matching loop plus a case split: exercises the fact-assertion,
        # search-round, split, and instantiation deadline checkpoints.
        axiom = Forall(("x",), P(f(x)), ((App("P", (x,)),),))
        return [axiom, P(a), Or((Q(a), Q(b)))]

    def test_near_zero_budget_terminates_immediately(self):
        import time

        limits = Limits(time_budget=0.0, max_rounds=10**6, max_instances=10**9)
        start = time.monotonic()
        verdict = check(*self._hard_facts(), limits=limits)
        elapsed = time.monotonic() - start
        assert verdict is Verdict.RESOURCE_OUT
        assert elapsed < 2.0

    def test_scope_deadline_already_past_terminates_immediately(self):
        import time

        # per-check budget is generous; the shared scope deadline governs
        limits = Limits(
            time_budget=60.0,
            max_rounds=10**6,
            scope_deadline=time.monotonic() - 1.0,
        )
        start = time.monotonic()
        verdict = check(*self._hard_facts(), limits=limits)
        assert verdict is Verdict.RESOURCE_OUT
        assert time.monotonic() - start < 2.0

    def test_scope_deadline_tightens_per_check_budget(self):
        import time

        limits = Limits(
            time_budget=60.0,
            max_rounds=10**6,
            max_instances=10**9,
            scope_deadline=time.monotonic() + 0.05,
        )
        start = time.monotonic()
        verdict = check(*self._hard_facts(), limits=limits)
        elapsed = time.monotonic() - start
        assert verdict is Verdict.RESOURCE_OUT
        assert elapsed < 2.0

    def test_generous_deadline_does_not_change_verdicts(self):
        import time

        limits = Limits(
            time_budget=10.0, scope_deadline=time.monotonic() + 60.0
        )
        assert check(P(a), Not(P(a)), limits=limits) is Verdict.UNSAT
        assert check(P(a), limits=limits) is Verdict.SAT
