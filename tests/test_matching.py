"""Unit tests for E-matching and trigger inference."""

from repro.logic.terms import (
    And,
    App,
    Const,
    Eq,
    Forall,
    Implies,
    IntLit,
    Not,
    Or,
    Pred,
    Var,
)
from repro.prover.egraph import EGraph
from repro.prover.matching import match_multipattern
from repro.prover.triggers import infer_triggers

a, b, c = Const("a"), Const("b"), Const("c")
X, Y = Var("X"), Var("Y")


def f(*args):
    return App("f", args)


def g(*args):
    return App("g", args)


def bindings_of(egraph, *patterns):
    return list(match_multipattern(egraph, patterns))


class TestMatching:
    def test_single_pattern_single_match(self):
        eg = EGraph()
        eg.intern(f(a))
        (binding,) = bindings_of(eg, f(X))
        assert eg.term_of(binding["X"]) == a

    def test_single_pattern_many_matches(self):
        eg = EGraph()
        eg.intern(f(a))
        eg.intern(f(b))
        results = {eg.term_of(m["X"]) for m in bindings_of(eg, f(X))}
        assert results == {a, b}

    def test_no_match_for_missing_head(self):
        eg = EGraph()
        eg.intern(f(a))
        assert bindings_of(eg, g(X)) == []

    def test_arity_mismatch_no_match(self):
        eg = EGraph()
        eg.intern(f(a, b))
        assert bindings_of(eg, f(X)) == []

    def test_constant_argument_filters(self):
        eg = EGraph()
        eg.intern(f(a, b))
        eg.intern(f(c, b))
        results = bindings_of(eg, f(X, Const("b")))
        assert len(results) == 2
        only = bindings_of(eg, App("f", (Const("a"), Var("Y"))))
        assert len(only) == 1
        assert eg.term_of(only[0]["Y"]) == b

    def test_matching_modulo_congruence(self):
        eg = EGraph()
        eg.intern(App("P", (c,)))
        eg.assert_eq(eg.intern(c), eg.intern(f(a)))
        # Pattern P(f(X)) should match P(c) because c == f(a).
        results = bindings_of(eg, App("P", (f(X),)))
        assert len(results) == 1
        assert eg.term_of(results[0]["X"]) == a

    def test_nonlinear_pattern_requires_equality(self):
        eg = EGraph()
        eg.intern(f(a, b))
        assert bindings_of(eg, f(X, X)) == []
        eg.assert_eq(eg.intern(a), eg.intern(b))
        assert len(bindings_of(eg, f(X, X))) == 1

    def test_multipattern_shares_bindings(self):
        eg = EGraph()
        eg.intern(f(a))
        eg.intern(g(a))
        eg.intern(g(b))
        results = bindings_of(eg, f(X), g(X))
        assert len(results) == 1
        assert eg.term_of(results[0]["X"]) == a

    def test_multipattern_cross_product_when_independent(self):
        eg = EGraph()
        eg.intern(f(a))
        eg.intern(f(b))
        eg.intern(g(c))
        results = bindings_of(eg, f(X), g(Y))
        assert len(results) == 2

    def test_nested_pattern(self):
        eg = EGraph()
        eg.intern(f(g(a)))
        (binding,) = bindings_of(eg, f(g(X)))
        assert eg.term_of(binding["X"]) == a

    def test_match_after_pop_sees_persistent_terms(self):
        eg = EGraph()
        mark = eg.push()
        eg.intern(f(a))
        eg.pop(mark)
        # Terms survive pops by design; matching still finds them.
        assert len(bindings_of(eg, f(X))) == 1

    def test_ghost_node_still_congruent_after_pop(self):
        # Regression test for the ghost-node bug: a node created inside a
        # popped scope must still participate in congruence afterwards.
        eg = EGraph()
        p_fa = eg.intern(App("P", (f(a),)))
        mark = eg.push()
        p_c = eg.intern(App("P", (c,)))  # created in the inner scope
        eg.pop(mark)
        assert eg.assert_eq(p_c, eg.TRUE)
        assert eg.assert_eq(eg.intern(c), eg.intern(f(a)))
        # P(c) and P(f(a)) must have merged: both true now.
        assert eg.truth(p_fa) is True


class TestTriggerInference:
    def test_single_covering_pattern(self):
        q = Forall(("X",), Implies(Pred("P", (X,)), Pred("Q", (X,))))
        triggers = infer_triggers(q)
        assert triggers
        assert all(len(multi) == 1 for multi in triggers)

    def test_prefers_small_patterns(self):
        q = Forall(
            ("X",),
            Implies(Pred("P", (X,)), Pred("Q", (App("f", (App("g", (X,)),)),))),
        )
        (first, *_) = infer_triggers(q)
        assert first == (App("P", (X,)),)

    def test_multipattern_cover(self):
        q = Forall(
            ("X", "Y"),
            Implies(And((Pred("P", (X,)), Pred("Q", (Y,)))), Eq(X, Y)),
        )
        (multi,) = infer_triggers(q)
        heads = sorted(p.fn for p in multi)
        assert heads == ["P", "Q"]

    def test_interpreted_heads_excluded(self):
        q = Forall(("X",), Pred("<", (App("+", (X, IntLit(1))), IntLit(10))))
        assert infer_triggers(q) == ()

    def test_patterns_found_inside_equalities(self):
        q = Forall(("X",), Eq(App("f", (X,)), Const("a")))
        triggers = infer_triggers(q)
        assert ((App("f", (X,)),),) == triggers[:1]

    def test_unmatchable_quantifier(self):
        q = Forall(("X",), Eq(X, Const("a")))
        assert infer_triggers(q) == ()

    def test_alternative_triggers_limited(self):
        body = Or(
            (
                Pred("P", (X,)),
                Pred("Q", (X,)),
                Pred("R", (X,)),
                Pred("S", (X,)),
                Pred("T", (X,)),
            )
        )
        triggers = infer_triggers(Forall(("X",), body))
        assert 1 <= len(triggers) <= 3
