"""Tests for explainable verdicts (``repro.obs.explain`` and friends).

Covers the acceptance criteria of the explainability PR:

* every failing corpus verdict yields a blame report naming the source
  position, the written field, and the unsatisfied inclusion chain;
* every ``VERIFIED`` verdict yields a proof log that the independent
  replay checker validates;
* resource-out and timed-out verdicts still name the obligation the
  prover was stuck on (the ``failed_obligation`` regression);
* a crashing explainer degrades to an ``OL900`` warning without losing
  the verdict;
* the CLI ``--explain`` family, including JSON output conforming to the
  in-tree ``explanations.schema.json``;
* corrupted proof logs are rejected by replay.
"""

import glob
import json
import os

import pytest

from repro import obs
from repro.api import check_program
from repro.cli import main
from repro.corpus.programs import PAPER_PROGRAMS
from repro.obs.explain import inclusion_chain
from repro.obs.schema import validate, validate_explanation_report
from repro.oolong.program import Scope
from repro.prover.core import Limits, Verdict, prove_valid
from repro.prover.prooflog import ProofLog, replay_proof_log
from repro.vcgen.checker import ImplStatus

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
FAILING_DIR = os.path.join(EXAMPLES_DIR, "failing")

BAD_WRITE = """
group w
field cnt in w
field outside
proc trim(t) modifies t.w
impl trim(t) {
  assume t != null ;
  t.cnt := 0 ;
  t.outside := 1
}
"""

GOOD = """
group w
field cnt in w
proc bump(t) modifies t.w
impl bump(t) {
  assume t != null ;
  t.cnt := t.cnt + 1
}
"""

STACK_DECLS = """
group contents
group elems
field cnt in elems
field tag
field vec in contents maps elems into contents
"""


def _failing_sources():
    paths = sorted(glob.glob(os.path.join(FAILING_DIR, "*.oolong")))
    assert paths, "examples/failing corpus is empty"
    return [(os.path.basename(p), open(p).read()) for p in paths]


# ----------------------------------------------------------------------
# Countermodels at the prover level
# ----------------------------------------------------------------------


class TestCountermodel:
    def test_sat_result_carries_countermodel(self):
        from repro.logic.terms import Const, Implies, Pred

        p = Pred("p", (Const("a"),))
        q = Pred("q", (Const("a"),))
        result = prove_valid([p], Implies(q, p), explain=True)
        # goal is valid, so no countermodel; flip it:
        assert result.verdict is Verdict.UNSAT
        result = prove_valid([p], q, explain=True)
        assert result.verdict is Verdict.SAT
        model = result.countermodel
        assert model is not None
        assert model.truth("p", (Const("a"),)) is True
        assert model.truth("q", (Const("a"),)) is False

    def test_default_mode_captures_nothing(self):
        from repro.logic.terms import Const, Pred

        result = prove_valid([], Pred("q", (Const("a"),)))
        assert result.verdict is Verdict.SAT
        assert result.countermodel is None
        assert result.proof_log is None


# ----------------------------------------------------------------------
# Static inclusion chains
# ----------------------------------------------------------------------


class TestInclusionChain:
    @pytest.fixture
    def scope(self):
        return Scope.from_source(STACK_DECLS)

    def test_local_chain(self, scope):
        assert inclusion_chain(scope, "elems", "cnt") == "elems ≽ cnt"

    def test_rep_chain_through_pivot(self, scope):
        assert (
            inclusion_chain(scope, "contents", "cnt")
            == "contents —vec→ elems ≽ cnt"
        )

    def test_identity(self, scope):
        assert inclusion_chain(scope, "contents", "contents") == "contents"

    def test_no_chain(self, scope):
        assert inclusion_chain(scope, "contents", "tag") is None
        assert inclusion_chain(scope, "elems", "contents") is None


# ----------------------------------------------------------------------
# Blame reports
# ----------------------------------------------------------------------


class TestBlame:
    def test_bad_write_blame_is_source_anchored(self):
        report = check_program(BAD_WRITE, explain=True)
        verdict = report.verdicts[0]
        assert verdict.status is ImplStatus.NOT_PROVED
        explanation = verdict.explanation
        assert explanation is not None and explanation.kind == "blame"
        obligation = explanation.obligation
        assert obligation["kind"] == "write-licence"
        assert obligation["position"] is not None  # the assignment command
        assert obligation["attr"] == "outside"  # the written field
        assert obligation["modifies"] == ["t.w"]
        (check,) = explanation.checks
        assert check.entry == "t.w"
        assert check.chain is None  # the unsatisfied inclusion
        assert any("attr$outside" in w for w in check.witnesses)
        assert explanation.countermodel is not None

    def test_bad_write_golden_text(self):
        report = check_program(BAD_WRITE, explain=True)
        text = report.verdicts[0].explanation.render_text()
        assert "blame: impl trim#0 — not proved" in text
        assert "write-licence: write to t.outside" in text
        assert "wrote: t.outside (attribute 'outside')" in text
        assert "checked against modifies list [t.w]" in text
        assert "no declared inclusion chain from 'w' to 'outside'" in text
        assert "(inc $0 t attr$w t attr$outside) = false" in text

    @pytest.mark.parametrize("name,source", _failing_sources())
    def test_failing_corpus_all_blamed(self, name, source):
        """Acceptance: every failing-corpus verdict carries a blame
        report with a source position, the written field, and the
        unsatisfied inclusion chain."""
        report = check_program(
            source, Limits(time_budget=20.0, max_instances=4000), explain=True
        )
        assert not report.ok
        blamed = [
            v for v in report.verdicts if v.status is not ImplStatus.VERIFIED
        ]
        assert blamed
        for verdict in blamed:
            explanation = verdict.explanation
            assert explanation is not None, verdict.impl.name
            assert explanation.kind == "blame"
            assert explanation.obligation["position"] is not None
            assert explanation.obligation["attr"] is not None
            assert explanation.checks, "no modifies entries checked"
            assert all(c.chain is None for c in explanation.checks), (
                "failing examples must fail for want of an inclusion chain"
            )

    def test_call_licence_blame_names_callee(self):
        (source,) = [
            src for name, src in _failing_sources() if name == "bad_call.oolong"
        ]
        report = check_program(source, explain=True)
        verdict = report.verdict_for("use")
        assert verdict.status is ImplStatus.NOT_PROVED
        obligation = verdict.explanation.obligation
        assert obligation["kind"] == "call-licence"
        assert obligation["callee"] == "reset"

    def test_verified_chain_is_reported_when_declared(self):
        """The static chain renderer is what the blame report would show
        had the entry licensed the write — sanity-check it against the
        stack declarations (rep hop then local hop)."""
        scope = Scope.from_source(STACK_DECLS)
        assert (
            inclusion_chain(scope, "contents", "cnt")
            == "contents —vec→ elems ≽ cnt"
        )


# ----------------------------------------------------------------------
# Proof logs and replay
# ----------------------------------------------------------------------


class TestProofLogs:
    def test_good_program_proof_replays(self):
        report = check_program(GOOD, explain=True)
        verdict = report.verdicts[0]
        assert verdict.status is ImplStatus.VERIFIED
        explanation = verdict.explanation
        assert explanation.kind == "proof"
        assert explanation.replay is not None and explanation.replay.ok
        assert explanation.replay.steps_checked == len(explanation.proof_log)

    @pytest.mark.parametrize("name", sorted(PAPER_PROGRAMS))
    def test_every_verified_corpus_verdict_replays(self, name):
        """Acceptance: every VERIFIED verdict yields a proof log the
        independent checker validates."""
        report = check_program(
            PAPER_PROGRAMS[name],
            Limits(time_budget=20.0, max_instances=4000),
            explain=True,
        )
        verified = [
            v for v in report.verdicts if v.status is ImplStatus.VERIFIED
        ]
        for verdict in verified:
            explanation = verdict.explanation
            assert explanation is not None and explanation.kind == "proof"
            replay = replay_proof_log(explanation.proof_log)
            assert replay.ok, f"{name}/{verdict.impl.name}: {replay.error}"

    def test_truncated_log_rejected(self):
        report = check_program(GOOD, explain=True)
        log = report.verdicts[0].explanation.proof_log
        truncated = ProofLog(log.steps[:-1])
        result = replay_proof_log(truncated)
        assert not result.ok
        assert "before the refutation closed" in result.error

    def test_unjustified_close_rejected(self):
        report = check_program(GOOD, explain=True)
        log = report.verdicts[0].explanation.proof_log
        close = log.steps[-1]
        assert close.kind == "close"
        # a close with no conflict in the kernel must not be accepted
        corrupted = ProofLog([close] + list(log.steps))
        result = replay_proof_log(corrupted)
        assert not result.ok

    def test_reordered_log_rejected(self):
        report = check_program(GOOD, explain=True)
        log = report.verdicts[0].explanation.proof_log
        result = replay_proof_log(ProofLog(list(reversed(log.steps))))
        assert not result.ok


# ----------------------------------------------------------------------
# Resource exhaustion still names the obligation
# ----------------------------------------------------------------------


class TestResourceOut:
    DIVERGENT = STACK_DECLS + """
proc poke(s) modifies s.contents
impl poke(s) {
  assume s != null ;
  assume s.vec != null ;
  s.vec.cnt := 1 ;
  s.vec.tag := 2
}
"""

    def test_resource_out_carries_failed_obligation(self):
        """The refutation of the unlicensed `tag` write diverges on the
        cyclic rep inclusion; with a small instance budget the verdict is
        RESOURCE_OUT — and must still name the obligation being refuted
        when the budget ran out.

        The instance budget must sit well below the search's saturation
        point (~263 instances): at 300 the verdict used to depend on
        whether the 30s wall clock fired first, i.e. on machine speed."""
        report = check_program(
            self.DIVERGENT, Limits(max_instances=100), explain=True
        )
        verdict = report.verdicts[0]
        assert verdict.status is ImplStatus.RESOURCE_OUT
        assert verdict.failed_obligation is not None
        explanation = verdict.explanation
        assert explanation is not None and explanation.kind == "blame"
        assert explanation.obligation["position"] is not None
        # no countermodel (the branch never saturated), but the static
        # chain analysis still reports what was being checked
        assert explanation.checks


# ----------------------------------------------------------------------
# Fault tolerance: a crashing explainer is advisory
# ----------------------------------------------------------------------


class TestExplainerCrash:
    def test_crash_degrades_to_ol900_warning(self, monkeypatch):
        from repro.analysis.diagnostics import Severity

        def boom(*args, **kwargs):
            raise RuntimeError("explainer exploded")

        monkeypatch.setattr("repro.obs.explain.explain_result", boom)
        report = check_program(BAD_WRITE, explain=True)
        verdict = report.verdicts[0]
        # the verdict survives, unexplained
        assert verdict.status is ImplStatus.NOT_PROVED
        assert verdict.explanation is None
        crashes = [
            d
            for d in report.diagnostics
            if d.code == "OL900" and "explanation" in d.message
        ]
        assert crashes and crashes[0].severity is Severity.WARNING
        # advisory: ok-ness is unchanged by the explainer crash
        good = check_program(GOOD, explain=True)
        assert good.ok


# ----------------------------------------------------------------------
# Report and CLI surface
# ----------------------------------------------------------------------


class TestSurface:
    def test_report_to_dict_carries_explanations(self):
        report = check_program(BAD_WRITE, explain=True)
        payload = report.to_dict()
        entry = payload["verdicts"][0]["explanation"]
        assert entry["kind"] == "blame"
        json.dumps(payload)  # fully serializable

    def test_explanations_attach_to_vc_spans(self):
        tracer = obs.Tracer()
        report = check_program(BAD_WRITE, tracer=tracer, explain=True)
        assert not report.ok
        spans = [
            s
            for s in tracer.find("vc trim", obs.CAT_VC)
            if "explanation" in s.args
        ]
        assert spans and spans[0].args["explanation"] == "blame"
        assert "blame" in spans[0].args
        # and the chrome export carries the args through
        trace = obs.chrome_trace(tracer)
        events = [
            e
            for e in trace["traceEvents"]
            if e.get("cat") == obs.CAT_VC and "blame" in e.get("args", {})
        ]
        assert events

    def test_cli_explain_prints_blame(self, tmp_path, capsys):
        path = tmp_path / "bad.oolong"
        path.write_text(BAD_WRITE)
        assert main([str(path), "--explain"]) == 1
        out = capsys.readouterr().out
        assert "blame: impl trim#0" in out
        assert "no declared inclusion chain" in out

    def test_cli_explain_json_validates(self, tmp_path, capsys):
        path = tmp_path / "good.oolong"
        path.write_text(GOOD)
        out = tmp_path / "explanations.json"
        code = main(
            [
                str(path),
                "--explain",
                "--explain-format",
                "json",
                "--explain-out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert validate_explanation_report(payload) == []
        (entry,) = payload["explanations"]
        assert entry["kind"] == "proof"
        assert entry["proof"]["replay_ok"] is True

    def test_cli_explain_written_on_syntax_error(self, tmp_path, capsys):
        path = tmp_path / "bad.oolong"
        path.write_text("group group group")
        out = tmp_path / "explanations.json"
        code = main(
            [
                str(path),
                "--explain-out",
                str(out),
                "--explain-format",
                "json",
            ]
        )
        assert code == 2
        payload = json.loads(out.read_text())
        assert validate_explanation_report(payload) == []
        assert payload["explanations"] == []


# ----------------------------------------------------------------------
# The schema interpreter itself
# ----------------------------------------------------------------------


class TestSchemaValidator:
    SCHEMA = {
        "type": "object",
        "required": ["kind"],
        "properties": {
            "kind": {"enum": ["blame", "proof"]},
            "steps": {"type": "array", "items": {"type": "integer"}},
            "note": {"type": ["string", "null"]},
        },
    }

    def test_accepts_conforming(self):
        instance = {"kind": "proof", "steps": [1, 2], "note": None}
        assert validate(instance, self.SCHEMA) == []

    def test_rejects_missing_required(self):
        errors = validate({}, self.SCHEMA)
        assert errors and "kind" in errors[0]

    def test_rejects_bad_enum_and_types(self):
        errors = validate(
            {"kind": "guess", "steps": ["x"], "note": 3}, self.SCHEMA
        )
        assert len(errors) == 3

    def test_booleans_are_not_integers(self):
        assert validate(True, {"type": "integer"})
        assert validate(3, {"type": "integer"}) == []
