"""Unit tests for the framed socket transport.

The framing contract under test: every message travels as a
magic/length/checksum-prefixed frame; a damaged frame costs exactly one
message (:class:`FrameError`, stream resynchronized), never a mis-parsed
message or the connection; deadlines surface as :class:`ReadTimeout`;
EOF and unrecoverable streams as :class:`ConnectionClosed`. The
:class:`FramePolicy` hook must interpret seeded fault plans
deterministically on the outbound side.
"""

import socket

import pytest

from repro.parallel.transport import (
    HEADER,
    MAGIC,
    ConnectionClosed,
    FramedSocket,
    FrameError,
    FramePolicy,
    ReadTimeout,
    TransportError,
    checksum64,
    encode_frame,
    parse_address,
)
from repro.testing.faults import Fault, FaultPlan, inject


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    a, b = FramedSocket(left), FramedSocket(right)
    yield a, b
    a.close()
    b.close()


class TestRoundTrip:
    def test_message_round_trips(self, pair):
        a, b = pair
        message = {"kind": "lease", "job": 3, "names": ["x", "y"]}
        assert a.send(message)
        assert b.recv(timeout=2.0) == message

    def test_frames_arrive_in_order(self, pair):
        a, b = pair
        for index in range(5):
            a.send(("msg", index))
        for index in range(5):
            assert b.recv(timeout=2.0) == ("msg", index)

    def test_large_payload_round_trips(self, pair):
        import threading

        a, b = pair
        blob = b"\x00\xff" * 200_000  # multiple recv() chunks
        # A payload this size overfills the socketpair buffer, so the
        # send must overlap the receive.
        sender = threading.Thread(target=a.send, args=(blob,))
        sender.start()
        try:
            assert b.recv(timeout=5.0) == blob
        finally:
            sender.join(timeout=5.0)


class TestRejection:
    def _raw_pair(self):
        return socket.socketpair()

    def test_corrupt_payload_is_rejected_and_stream_survives(self):
        left, right = self._raw_pair()
        reader = FramedSocket(right)
        frame = encode_frame(("precious", 1))
        # Flip payload bytes, keep the header: alignment is intact, so
        # the checksum must catch it without a resync.
        damaged = frame[: HEADER.size] + bytes(
            b ^ 0xFF for b in frame[HEADER.size :]
        )
        left.sendall(damaged)
        left.sendall(encode_frame(("next", 2)))
        with pytest.raises(FrameError):
            reader.recv(timeout=2.0)
        assert reader.recv(timeout=2.0) == ("next", 2)
        left.close()
        reader.close()

    def test_garbage_prefix_resynchronizes_to_next_frame(self):
        left, right = self._raw_pair()
        reader = FramedSocket(right)
        left.sendall(b"garbage bytes that are not a frame header")
        left.sendall(encode_frame("after the noise"))
        with pytest.raises(FrameError):
            reader.recv(timeout=2.0)
        assert reader.recv(timeout=2.0) == "after the noise"
        left.close()
        reader.close()

    def test_oversized_length_header_is_rejected(self):
        left, right = self._raw_pair()
        reader = FramedSocket(right)
        bogus = HEADER.pack(MAGIC, 2**31, 0)
        left.sendall(bogus)
        left.sendall(encode_frame("still alive"))
        with pytest.raises(FrameError):
            reader.recv(timeout=2.0)
        assert reader.recv(timeout=2.0) == "still alive"
        left.close()
        reader.close()

    def test_undecodable_payload_is_rejected(self):
        left, right = self._raw_pair()
        reader = FramedSocket(right)
        payload = b"not a pickle at all"
        left.sendall(HEADER.pack(MAGIC, len(payload), checksum64(payload)))
        left.sendall(payload)
        left.sendall(encode_frame("ok"))
        with pytest.raises(FrameError):
            reader.recv(timeout=2.0)
        assert reader.recv(timeout=2.0) == "ok"
        left.close()
        reader.close()

    def test_peer_close_is_connection_closed(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(ConnectionClosed):
            b.recv(timeout=2.0)

    def test_truncated_frame_then_eof_is_connection_closed(self):
        left, right = self._raw_pair()
        reader = FramedSocket(right)
        frame = encode_frame(("cut", "short"))
        left.sendall(frame[: len(frame) - 4])
        left.close()
        with pytest.raises(ConnectionClosed):
            reader.recv(timeout=2.0)
        reader.close()

    def test_read_deadline_is_read_timeout(self, pair):
        _, b = pair
        with pytest.raises(ReadTimeout):
            b.recv(timeout=0.1)

    def test_oversized_message_refused_at_send(self, pair, monkeypatch):
        import repro.parallel.transport as transport

        monkeypatch.setattr(transport, "MAX_FRAME", 64)
        a, _ = pair
        with pytest.raises(TransportError):
            a.send(b"x" * 1024)


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("10.1.2.3:7000") == ("10.1.2.3", 7000)

    def test_bare_port_and_empty_host_default_loopback(self):
        assert parse_address("7000") == ("127.0.0.1", 7000)
        assert parse_address(":7000") == ("127.0.0.1", 7000)

    def test_tcp_scheme_prefix(self):
        assert parse_address("tcp://example:81") == ("example", 81)

    @pytest.mark.parametrize("bad", ["host:seven", "host:", "", "h:70000"])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


class TestFramePolicy:
    def _policied_pair(self, policy):
        left, right = socket.socketpair()
        return FramedSocket(left, policy=policy), FramedSocket(right)

    def test_drop_frame_suppresses_the_send(self):
        plan = FaultPlan((Fault("drop-frame", "raise", hit=0),))
        with inject(plan) as injector:
            a, b = self._policied_pair(FramePolicy())
            assert a.send("dropped") is False
            assert a.send("delivered") is True
            assert b.recv(timeout=2.0) == "delivered"
        assert ("drop-frame", 0, "drop") in injector.fired
        a.close()
        b.close()

    def test_corrupt_frame_is_rejected_by_receiver(self):
        plan = FaultPlan((Fault("corrupt-frame", "corrupt", hit=0),))
        with inject(plan) as injector:
            a, b = self._policied_pair(FramePolicy())
            assert a.send("mangled in flight") is True
            with pytest.raises(FrameError):
                b.recv(timeout=2.0)
            a.send("clean")
            assert b.recv(timeout=2.0) == "clean"
        assert ("corrupt-frame", 0, "corrupt") in injector.fired
        a.close()
        b.close()

    def test_delay_frame_fires_and_still_delivers(self):
        plan = FaultPlan((Fault("delay-frame", "delay", hit=0, delay=0.01),))
        with inject(plan) as injector:
            a, b = self._policied_pair(FramePolicy())
            assert a.send("late but intact") is True
            assert b.recv(timeout=2.0) == "late but intact"
        assert ("delay-frame", 0, "delay") in injector.fired
        a.close()
        b.close()

    def test_ordinal_is_global_across_sockets(self):
        # One policy across two connections: hit=1 names the second
        # frame sent through the *policy*, whichever socket carries it.
        plan = FaultPlan((Fault("drop-frame", "raise", hit=1),))
        with inject(plan):
            policy = FramePolicy()
            a1, b1 = self._policied_pair(policy)
            a2, b2 = self._policied_pair(policy)
            assert a1.send("first") is True
            assert a2.send("second") is False
        for sock in (a1, b1, a2, b2):
            sock.close()
