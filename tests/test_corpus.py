"""Sanity tests over the corpus: every program parses, is well-formed,
round-trips, and the generators scale as advertised."""

import pytest

from repro.corpus.generators import (
    generate_call_chain,
    generate_deep_groups,
    generate_pivot_tower,
    generate_wide_scope,
)
from repro.corpus.programs import (
    PAPER_PROGRAMS,
    SECTION3_CLIENT,
    SECTION3_CLIENT_INIT,
    SECTION3_HONEST_IMPLS,
    SECTION3_LEAKING_M,
    SECTION3_OWNER_BAD_CALL,
    SECTION3_OWNER_DRIVER,
    SECTION3_UNSOUND_IMPLS,
    SECTION3_W,
)
from repro.oolong.parser import parse_program_text
from repro.oolong.pretty import pretty_program
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed

COMPOSITES = {
    "client+leak": SECTION3_CLIENT + SECTION3_LEAKING_M,
    "client+honest": SECTION3_CLIENT + SECTION3_HONEST_IMPLS,
    "client-init+unsound": SECTION3_CLIENT_INIT + SECTION3_UNSOUND_IMPLS,
    "w+bad": SECTION3_W + SECTION3_OWNER_BAD_CALL,
    "w+bad+driver": SECTION3_W + SECTION3_OWNER_BAD_CALL + SECTION3_OWNER_DRIVER,
}


class TestPaperPrograms:
    @pytest.mark.parametrize("name", sorted(PAPER_PROGRAMS))
    def test_well_formed(self, name):
        scope = Scope.from_source(PAPER_PROGRAMS[name])
        check_well_formed(scope)

    @pytest.mark.parametrize("name", sorted(PAPER_PROGRAMS))
    def test_round_trip(self, name):
        decls = parse_program_text(PAPER_PROGRAMS[name])
        assert parse_program_text(pretty_program(decls)) == decls

    @pytest.mark.parametrize("name", sorted(COMPOSITES))
    def test_composites_well_formed(self, name):
        scope = Scope.from_source(COMPOSITES[name])
        check_well_formed(scope)

    def test_every_program_has_an_impl(self):
        for name, source in PAPER_PROGRAMS.items():
            scope = Scope.from_source(source)
            assert any(scope.impls_of(p) for p in scope.procs), name


class TestGenerators:
    @pytest.mark.parametrize("size", [0, 1, 5, 25])
    def test_wide_scope(self, size):
        scope = Scope.from_source(generate_wide_scope(size))
        check_well_formed(scope)
        assert len(scope.fields) == size

    @pytest.mark.parametrize("depth", [1, 3, 10])
    def test_deep_groups(self, depth):
        scope = Scope.from_source(generate_deep_groups(depth))
        check_well_formed(scope)
        assert scope.enclosing_groups("leaf") == {
            f"g{level}" for level in range(depth + 1)
        }

    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_pivot_tower(self, depth):
        scope = Scope.from_source(generate_pivot_tower(depth))
        check_well_formed(scope)
        assert len(scope.pivot_fields()) == depth

    @pytest.mark.parametrize("length", [1, 2, 5])
    def test_call_chain(self, length):
        scope = Scope.from_source(generate_call_chain(length))
        check_well_formed(scope)
        assert len(scope.procs) == length + 1

    def test_generators_are_deterministic(self):
        assert generate_wide_scope(7) == generate_wide_scope(7)
        assert generate_pivot_tower(3) == generate_pivot_tower(3)
