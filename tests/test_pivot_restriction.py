"""Unit tests for the pivot uniqueness restriction checker."""

import pytest

from repro.errors import RestrictionError
from repro.oolong.program import Scope
from repro.restrictions.pivot import (
    RULE_FORMAL_COPY,
    RULE_FORMAL_TARGET,
    RULE_PIVOT_READ,
    RULE_PIVOT_TARGET,
    check_pivot_uniqueness,
    enforce_pivot_uniqueness,
)

HEADER = """
group contents
group elems
field cnt in elems
field vec maps elems into contents
field obj
proc push(st, o) modifies st.contents
proc m(st, r) modifies r.obj
"""


def violations_of(body, params="st, r"):
    source = HEADER + f"\nproc subject({params})\nimpl subject({params}) {{ {body} }}"
    return check_pivot_uniqueness(Scope.from_source(source))


def rules_of(body, params="st, r"):
    return [v.rule for v in violations_of(body, params)]


class TestPivotTargetRule:
    def test_pivot_assigned_new_is_legal(self):
        assert rules_of("st.vec := new()") == []

    def test_pivot_assigned_null_is_legal(self):
        assert rules_of("st.vec := null") == []

    def test_pivot_assigned_local_rejected(self):
        assert RULE_PIVOT_TARGET in rules_of("var v in st.vec := v end")

    def test_pivot_assigned_constant_rejected(self):
        assert RULE_PIVOT_TARGET in rules_of("st.vec := 3")

    def test_pivot_assigned_field_read_rejected(self):
        # Both the target rule and the read rule fire: RHS is also a pivot read.
        rules = rules_of("st.vec := r.vec")
        assert RULE_PIVOT_TARGET in rules
        assert RULE_PIVOT_READ in rules

    def test_non_pivot_field_assignment_unrestricted(self):
        assert rules_of("r.cnt := 3") == []


class TestPivotReadRule:
    def test_reading_pivot_into_local_rejected(self):
        assert rules_of("var v in v := st.vec end") == [RULE_PIVOT_READ]

    def test_reading_pivot_into_field_rejected(self):
        # The unsound impl of m from Section 3.0: r.obj := st.vec.
        assert rules_of("r.obj := st.vec") == [RULE_PIVOT_READ]

    def test_reading_through_pivot_is_legal(self):
        # x.vec.cnt consumes the pivot value transiently; only storing the
        # pivot value itself is forbidden.
        assert rules_of("var n in n := st.vec.cnt end") == []

    def test_reading_non_pivot_is_legal(self):
        assert rules_of("var v in v := r.obj end") == []

    def test_pivot_read_in_call_argument_is_legal(self):
        # Owner exclusion, not pivot uniqueness, governs this case.
        assert rules_of("push(st.vec, 3)") == []

    def test_pivot_read_in_assert_is_legal(self):
        assert rules_of("assert st.vec != null") == []


class TestFormalCopyRule:
    def test_copying_formal_into_local_rejected(self):
        assert rules_of("var v in v := st end") == [RULE_FORMAL_COPY]

    def test_copying_formal_into_field_rejected(self):
        assert rules_of("r.obj := st") == [RULE_FORMAL_COPY]

    def test_copying_local_is_legal(self):
        assert rules_of("var a in var b in a := new() ; b := a end end") == []

    def test_assigning_to_formal_rejected(self):
        assert rules_of("st := null") == [RULE_FORMAL_TARGET]

    def test_assigning_new_to_formal_rejected(self):
        assert rules_of("st := new()") == [RULE_FORMAL_TARGET]

    def test_formal_in_operator_expression_is_legal(self):
        # Operators never return objects, so st = null can flow anywhere.
        assert rules_of("var b in b := st = null end") == []


class TestTraversal:
    def test_violation_inside_choice(self):
        assert rules_of("skip [] r.obj := st.vec") == [RULE_PIVOT_READ]

    def test_violation_inside_seq(self):
        assert rules_of("skip ; r.obj := st.vec ; skip") == [RULE_PIVOT_READ]

    def test_violation_inside_var(self):
        assert rules_of("var v in skip ; v := st.vec end") == [RULE_PIVOT_READ]

    def test_multiple_violations_all_reported(self):
        body = "var v in v := st.vec ; v := r.vec end"
        assert rules_of(body) == [RULE_PIVOT_READ, RULE_PIVOT_READ]

    def test_all_impls_checked(self):
        source = HEADER + (
            "\nproc a(t)\nimpl a(t) { var v in v := t.vec end }"
            "\nproc b(t)\nimpl b(t) { var v in v := t.vec end }"
        )
        assert len(check_pivot_uniqueness(Scope.from_source(source))) == 2

    def test_violation_carries_impl_and_rule(self):
        (violation,) = violations_of("r.obj := st.vec")
        assert violation.impl == "subject"
        assert violation.rule == RULE_PIVOT_READ
        assert "vec" in violation.detail


class TestEnforce:
    def test_enforce_passes_clean_program(self):
        scope = Scope.from_source(HEADER + "\nproc ok(t)\nimpl ok(t) { skip }")
        enforce_pivot_uniqueness(scope)

    def test_enforce_raises_on_violation(self):
        source = HEADER + "\nimpl m(st, r) { r.obj := st.vec }"
        with pytest.raises(RestrictionError):
            enforce_pivot_uniqueness(Scope.from_source(source))
