"""Tests for modifies-list inference and licence coverage."""

from repro.analysis.modifies import (
    covers,
    impl_requirements,
    infer_modifies,
)
from repro.corpus.programs import (
    LINKED_LIST,
    RATIONAL,
    RATIONAL_OVERBROAD,
    SECTION5_FIRST,
    STACK_VECTOR,
)
from repro.oolong.ast import Designator
from repro.oolong.program import Scope


def inference(source):
    return infer_modifies(Scope.from_source(source))


class TestInference:
    def test_rational_infers_exact_writes(self):
        result = inference(RATIONAL)
        assert result.inferred["normalize"] == ("r.num", "r.den") or set(
            result.inferred["normalize"]
        ) == {"r.num", "r.den"}
        assert result.diagnostics == []

    def test_stack_vector_threads_callee_licences(self):
        result = inference(STACK_VECTOR)
        # push writes its own pivot and calls vec_add(s.vec)
        assert set(result.inferred["push"]) == {"s.vec", "s.vec.elems"}
        assert set(result.inferred["vec_add"]) == {"v.cnt", "v.data"}
        assert result.diagnostics == []

    def test_section5_path_requirement(self):
        result = inference(SECTION5_FIRST)
        assert set(result.inferred["p"]) == {"t.c.d.g"}
        assert result.diagnostics == []

    def test_recursive_scope_converges(self):
        result = inference(LINKED_LIST)
        assert set(result.inferred["updateAll"]) == {"t.value", "t.next.g"}
        assert result.diagnostics == []


class TestMissingLicence:
    def test_unlicensed_write_is_ol301(self):
        source = """
        group g
        field f in g
        proc p(t)
        impl p(t) { assume t != null ; t.f := 1 }
        """
        result = inference(source)
        assert [d.code for d in result.diagnostics] == ["OL301"]
        (d,) = result.diagnostics
        assert d.severity.value == "error" and "t.f" in d.message

    def test_unlicensed_call_is_ol301(self):
        source = """
        group g
        field f in g
        proc callee(u) modifies u.g
        impl callee(u) { assume u != null ; u.f := 1 }
        proc caller(t)
        impl caller(t) { callee(t) }
        """
        result = inference(source)
        assert [d.code for d in result.diagnostics] == ["OL301"]
        assert "callee" in result.diagnostics[0].message

    def test_fresh_object_writes_need_no_licence(self):
        # t.c := new() makes t.c fresh: writing t.c.d afterwards is free
        source = """
        field c
        field d
        proc p(t) modifies t.c
        impl p(t) { assume t != null ; t.c := new() ; t.c.d := 1 }
        """
        result = inference(source)
        assert result.diagnostics == []

    def test_call_kills_freshness(self):
        source = """
        field c
        field d
        proc other(u) modifies u.c
        impl other(u) { assume u != null ; u.c := null }
        proc p(t) modifies t.c
        impl p(t) { assume t != null ; t.c := new() ; other(t) ; t.c.d := 1 }
        """
        result = inference(source)
        assert [d.code for d in result.diagnostics] == ["OL301"]


class TestOverBroad:
    def test_unused_group_in_modifies_is_ol302(self):
        result = inference(RATIONAL_OVERBROAD)
        overbroad = [d for d in result.diagnostics if d.code == "OL302"]
        assert len(overbroad) == 1
        (d,) = overbroad
        assert "cache" in d.message and d.severity.value == "warning"
        # r.value stays: it is exercised by the writes to num/den
        assert "value" not in d.message.split("cache")[0] or "r.cache" in d.message

    def test_exact_lists_raise_nothing(self):
        assert inference(RATIONAL).diagnostics == []
        assert inference(STACK_VECTOR).diagnostics == []

    def test_interface_only_procs_are_skipped(self):
        # no impls: nothing to compare the declared list against
        source = "group g\nproc p(t) modifies t.g"
        assert inference(source).diagnostics == []


class TestCovers:
    def scope(self):
        return Scope.from_source(STACK_VECTOR)

    def test_reflexive(self):
        d = Designator("s", (), "contents")
        assert covers(self.scope(), d, d)

    def test_group_membership(self):
        scope = self.scope()
        declared = Designator("v", (), "elems")
        assert covers(scope, declared, Designator("v", (), "cnt"))
        assert covers(scope, declared, Designator("v", (), "data"))
        assert not covers(scope, declared, Designator("v", (), "vec"))

    def test_pivot_chain_steps_through_rep_inclusion(self):
        scope = self.scope()
        declared = Designator("s", (), "contents")
        # s.contents licenses s.vec (pivot in contents) and s.vec.cnt
        assert covers(scope, declared, Designator("s", (), "vec"))
        assert covers(scope, declared, Designator("s", ("vec",), "cnt"))
        assert not covers(scope, declared, Designator("t", (), "vec"))

    def test_requirements_extracted_per_impl(self):
        scope = self.scope()
        (impl,) = scope.impls_of("push")
        reqs = impl_requirements(scope, impl)
        required = {str_designator(r.designator) for r in reqs}
        assert required == {"s.vec", "s.vec.elems"}
        assert all(r.position is not None for r in reqs)


def str_designator(d):
    return ".".join([d.root, *d.path, d.attr])
