"""The shared result-cache server and its partition-tolerant client.

The contract: a :class:`RemoteCache` is a drop-in for the checker's
cache slot — same keys, same validation (run on *both* ends of the
wire), same ``OL903`` rejection surface — while availability failures
never fail a run: an unreachable server degrades to local checking with
``OL904`` at connect time, and a mid-run loss trips a circuit breaker
that turns the rest of the run into cache misses.
"""

import os

import pytest

from repro.corpus.generators import generate_impl_farm
from repro.oolong.ast import ImplDecl
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.parallel import FleetOptions
from repro.parallel.cache import cache_key, verdict_to_payload
from repro.parallel.cacheserver import (
    CacheServer,
    CacheUnavailable,
    RemoteCache,
)
from repro.prover.core import Limits
from repro.testing.faults import Fault, FaultPlan, inject
from repro.vcgen.checker import ImplStatus, check_scope

LIMITS = Limits(time_budget=60.0)

GOOD = """
group data
field payload in data
proc touch(t) modifies t.data
impl touch(t) { assume t != null ; t.payload := 1 }
"""


def _scope(source=GOOD):
    scope = Scope.from_source(source)
    check_well_formed(scope)
    return scope


def _farm_scope(impls=3, fields=3):
    return _scope(generate_impl_farm(impls, fields))


def _verified_payload(scope):
    report = check_scope(scope, LIMITS)
    verdict = report.verdicts[0]
    assert verdict.status is ImplStatus.VERIFIED
    payload = verdict_to_payload(verdict)
    assert payload is not None
    return payload


def _impl(scope):
    return next(decl for decl in scope.decls if isinstance(decl, ImplDecl))


class TestProtocol:
    def test_store_then_load_round_trips(self, tmp_path):
        scope = _scope()
        payload = _verified_payload(scope)
        key = cache_key(scope, _impl(scope), 0, LIMITS)
        with CacheServer(str(tmp_path)) as server:
            client = RemoteCache.connect(server.url)
            assert client.load(key) is None  # cold miss
            assert client.store(key, payload, impl="touch", index=0)
            assert client.load(key) == payload
            assert client.summary()["hits"] == 1
            assert client.summary()["stores"] == 1
            client.close()
        assert server.cache.stores == 1

    def test_entries_land_in_the_served_directory(self, tmp_path):
        scope = _scope()
        payload = _verified_payload(scope)
        key = cache_key(scope, _impl(scope), 0, LIMITS)
        with CacheServer(str(tmp_path)) as server:
            client = RemoteCache.connect(server.url)
            client.store(key, payload, impl="touch", index=0)
            client.close()
        assert (tmp_path / f"{key}.json").exists()

    def test_token_mismatch_is_unavailable(self, tmp_path):
        with CacheServer(str(tmp_path), token="s3cret") as server:
            with pytest.raises(CacheUnavailable):
                RemoteCache.connect(server.url, token="wrong")
            client = RemoteCache.connect(server.url, token="s3cret")
            client.close()

    def test_unreachable_server_is_unavailable(self):
        with pytest.raises(CacheUnavailable):
            RemoteCache.connect("127.0.0.1:1", timeout=0.5)

    def test_server_side_corruption_is_rejected_not_served(self, tmp_path):
        scope = _scope()
        payload = _verified_payload(scope)
        key = cache_key(scope, _impl(scope), 0, LIMITS)
        with CacheServer(str(tmp_path)) as server:
            client = RemoteCache.connect(server.url)
            client.store(key, payload, impl="touch", index=0)
            victim = tmp_path / f"{key}.json"
            data = victim.read_bytes()
            victim.write_bytes(data[: len(data) // 2] + b"\x00X\x00")
            assert client.load(key) is None
            assert client.rejections
            assert "server-side" in client.rejections[0][1]
            client.close()

    def test_mid_run_loss_trips_the_breaker(self, tmp_path):
        scope = _scope()
        payload = _verified_payload(scope)
        key = cache_key(scope, _impl(scope), 0, LIMITS)
        server = CacheServer(str(tmp_path)).start()
        client = RemoteCache.connect(server.url)
        client.store(key, payload, impl="touch", index=0)
        server.stop()
        # The next operation fails on the wire: the breaker must trip
        # and every later operation become a silent local miss.
        assert client.load(key) is None
        assert client.degraded is not None
        assert client.load(key) is None
        assert client.store(key, payload, impl="touch", index=0) is False
        assert "degraded" in client.summary()
        client.close()

    def test_server_lru_eviction_bounds_the_directory(self, tmp_path):
        scope = _farm_scope(4, 8)
        report = check_scope(scope, LIMITS)
        payloads = [
            (cache_key(scope, v.impl, v.index, LIMITS), verdict_to_payload(v))
            for v in report.verdicts
        ]
        one_entry = 2048  # generous upper bound for one farm entry
        with CacheServer(str(tmp_path), max_bytes=one_entry) as server:
            client = RemoteCache.connect(server.url)
            for key, payload in payloads:
                assert client.store(key, payload, impl="farm", index=0)
            client.close()
        assert server.cache.evictions >= 1
        remaining = [
            name
            for name in os.listdir(tmp_path)
            if name.endswith(".json") and name != "summary.json"
        ]
        assert len(remaining) < len(payloads)


class TestCheckerIntegration:
    def test_shared_cache_warms_across_runs(self, tmp_path):
        scope = _farm_scope()
        with CacheServer(str(tmp_path)) as server:
            cold = check_scope(scope, LIMITS, cache_url=server.url)
            warm = check_scope(scope, LIMITS, cache_url=server.url)
        assert cold.cache_summary["stores"] == len(cold.verdicts)
        assert warm.cache_summary["hits"] == len(warm.verdicts)
        assert [v.status for v in cold.verdicts] == [
            v.status for v in warm.verdicts
        ]

    def test_shared_cache_warms_across_transports(self, tmp_path):
        scope = _farm_scope()
        with CacheServer(str(tmp_path)) as server:
            cold = check_scope(scope, LIMITS, cache_url=server.url)
            warm = check_scope(
                scope,
                LIMITS,
                cache_url=server.url,
                fleet=FleetOptions(workers=2, registration_wait=30.0),
            )
        assert cold.cache_summary["stores"] == len(cold.verdicts)
        assert warm.cache_summary["hits"] == len(warm.verdicts)

    def test_corrupt_entry_surfaces_as_ol903_and_recomputes(self, tmp_path):
        scope = _farm_scope()
        with CacheServer(str(tmp_path)) as server:
            check_scope(scope, LIMITS, cache_url=server.url)
            victim = sorted(tmp_path.glob("*.json"))[0]
            data = victim.read_bytes()
            victim.write_bytes(
                data[: len(data) // 2] + b"\x00GARBAGE\x00" + data[len(data) // 2 :]
            )
            report = check_scope(scope, LIMITS, cache_url=server.url)
        assert report.ok
        rejections = [d for d in report.diagnostics if d.code == "OL903"]
        assert len(rejections) == 1
        assert report.cache_summary["hits"] == len(report.verdicts) - 1

    def test_evict_under_read_recomputes(self, tmp_path):
        scope = _farm_scope()
        serial = check_scope(scope, LIMITS)
        plan = FaultPlan((Fault("evict-under-read", "corrupt", hit=0),))
        with inject(plan) as injector:
            # The server interprets the fault plan, so it must be built
            # while the plan is active.
            with CacheServer(str(tmp_path)) as server:
                check_scope(scope, LIMITS, cache_url=server.url)
                report = check_scope(scope, LIMITS, cache_url=server.url)
        assert ("evict-under-read", 0, "corrupt") in injector.fired
        assert server.cache.evictions >= 1
        assert [v.status for v in report.verdicts] == [
            v.status for v in serial.verdicts
        ]
        # The evicted entry was a miss, recomputed, and re-published.
        assert report.cache_summary["hits"] == len(report.verdicts) - 1
        assert report.cache_summary["stores"] == 1

    def test_unreachable_server_degrades_with_ol904(self, tmp_path):
        scope = _scope()
        report = check_scope(
            scope,
            LIMITS,
            cache_url="127.0.0.1:1",
            cache_dir=str(tmp_path / "local"),
        )
        assert report.ok
        degraded = [d for d in report.diagnostics if d.code == "OL904"]
        assert len(degraded) == 1
        assert "cache unreachable" in degraded[0].message
        # The local --cache-dir fallback still ran.
        assert report.cache_summary["stores"] == len(report.verdicts)
        assert report.cache_summary["directory"] == str(tmp_path / "local")
