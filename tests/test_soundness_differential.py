"""Differential soundness testing: static verdicts vs runtime ground truth.

The central soundness claim, tested empirically: **every program the
checker verifies runs without going wrong** (no failed asserts, no
modifies/pivot/owner-exclusion monitor flags) on every explored execution.
The corpus pairs each verifiable library with a driver that exercises it.
"""

import pytest

from repro.api import check_program, parse_program
from repro.prover.core import Limits
from repro.semantics.interp import ExplorationConfig, explore_program
from repro.vcgen.checker import ImplStatus

LIMITS = Limits(time_budget=120.0)

#: (name, library+driver source, entry procedure). Every library portion is
#: checker-verified; the driver exercises it from a fresh store.
SCENARIOS = [
    (
        "rational",
        """
        group value
        field num in value
        field den in value
        proc normalize(r) modifies r.value requires r != null
        impl normalize(r) { r.num := 1 ; r.den := 1 }
        proc main()
        impl main() {
          var r in
            r := new() ;
            normalize(r) ;
            assert r.num = 1
          end
        }
        """,
        "main",
    ),
    (
        "stack-vector",
        """
        group contents
        group elems
        field cnt in elems
        field vec in contents maps elems into contents
        proc bump(v) modifies v.elems requires v != null
        impl bump(v) { v.cnt := 1 }
        proc push(s) modifies s.contents requires s != null
        impl push(s) {
          ( assume s.vec = null ; s.vec := new()
            []
            assume s.vec != null ; skip ) ;
          bump(s.vec)
        }
        proc main()
        impl main() {
          var s in
            s := new() ;
            push(s) ;
            push(s) ;
            assert s.vec.cnt = 1
          end
        }
        """,
        "main",
    ),
    (
        "linked-list",
        """
        group g
        field value in g
        field next maps g into g
        proc updateAll(t) modifies t.g
        impl updateAll(t) {
          assume t != null ;
          t.value := t.value + 1 ;
          ( assume t.next = null
            []
            assume t.next != null ; updateAll(t.next) )
        }
        proc main()
        impl main() {
          var a in var b in
            a := new() ; b := new() ;
            a.value := 0 ; b.value := 10 ;
            a.next := b ; b.next := null ;
            updateAll(a) ;
            assert a.value = 1 ;
            assert b.value = 11
          end end
        }
        """,
        "main",
    ),
    (
        "choice-heavy",
        """
        group g
        field f in g
        proc set(t) modifies t.g requires t != null
        impl set(t) { t.f := 1 }
        impl set(t) { t.f := 2 }
        proc main()
        impl main() {
          var x in
            x := new() ;
            set(x) ;
            assert x.f = 1 || x.f = 2
          end
        }
        """,
        "main",
    ),
]


@pytest.mark.parametrize("name,source,entry", SCENARIOS, ids=[s[0] for s in SCENARIOS])
class TestVerifiedImpliesSafe:
    def test_static_verdict_is_verified(self, name, source, entry):
        report = check_program(source, LIMITS)
        library = [v for v in report.verdicts if v.impl.name != entry]
        for verdict in library:
            assert verdict.status is ImplStatus.VERIFIED, verdict.describe()

    def test_runtime_never_goes_wrong(self, name, source, entry):
        scope = parse_program(source)
        outcomes = explore_program(scope, entry)
        wrong = [o for o in outcomes if o.wrong]
        assert not wrong, [f"{o.kind.value}: {o.detail}" for o in wrong]

    def test_monitors_stay_quiet_even_with_wide_var_candidates(
        self, name, source, entry
    ):
        scope = parse_program(source)
        config = ExplorationConfig(var_candidates=(None, 0))
        outcomes = explore_program(scope, entry, config=config)
        wrong = [o for o in outcomes if o.wrong]
        assert not wrong, [f"{o.kind.value}: {o.detail}" for o in wrong]
