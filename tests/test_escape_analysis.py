"""Tests for the flow-sensitive pivot escape analysis."""

from repro.analysis.escape import check_impl_escapes, check_pivot_escapes
from repro.corpus.generators import generate_benign_copies
from repro.corpus.programs import (
    SECTION3_CLIENT,
    SECTION3_LAUNDERED_M,
    SECTION3_LEAKING_M,
    STACK_VECTOR,
)
from repro.oolong.program import Scope
from repro.restrictions.pivot import check_pivot_uniqueness


def escapes(source):
    return check_pivot_escapes(Scope.from_source(source))


class TestDirectLeak:
    def test_direct_store_of_pivot_read_is_flagged(self):
        diags = escapes(SECTION3_CLIENT + SECTION3_LEAKING_M)
        assert [d.code for d in diags] == ["OL110"]
        (d,) = diags
        assert d.impl == "m"
        assert "vec" in d.message and "obj" in d.message

    def test_honest_fresh_result_is_clean(self):
        source = SECTION3_CLIENT + "\nfield vec maps cnt into contents\nimpl m(st, r) { r.obj := new() }"
        assert escapes(source) == []


class TestLaunderedLeak:
    def test_leak_through_local_carries_full_path(self):
        diags = escapes(SECTION3_CLIENT + SECTION3_LAUNDERED_M)
        assert [d.code for d in diags] == ["OL110"]
        (d,) = diags
        assert d.impl == "m"
        # the flow path names both the laundering copy and the heap store
        notes = " / ".join(note.message for note in d.notes)
        assert "tmp := st.vec" in notes
        assert "r.obj := tmp" in notes
        assert all(note.position is not None for note in d.notes)

    def test_syntactic_pass_misses_the_store_site(self):
        scope = Scope.from_source(SECTION3_CLIENT + SECTION3_LAUNDERED_M)
        syntactic = check_pivot_uniqueness(scope)
        # the syntactic pass sees the pivot *read* only...
        assert {v.rule for v in syntactic} == {"pivot-read"}
        # ...while the flow pass pins the escape at the heap store
        (flow,) = check_pivot_escapes(scope)
        read_lines = {v.position.line for v in syntactic}
        assert flow.position.line not in read_lines


class TestPrecision:
    def test_benign_local_copies_do_not_escape(self):
        for copies in (1, 3, 6):
            scope = Scope.from_source(generate_benign_copies(copies))
            assert check_pivot_escapes(scope) == []
            # sanity: the syntactic pass does flag the formal copy
            assert len(check_pivot_uniqueness(scope)) >= 1

    def test_paper_examples_are_clean(self):
        assert escapes(STACK_VECTOR) == []

    def test_per_impl_entry_point(self):
        scope = Scope.from_source(SECTION3_CLIENT + SECTION3_LEAKING_M)
        (impl,) = scope.impls_of("m")
        diags = check_impl_escapes(scope, impl)
        assert [d.code for d in diags] == ["OL110"]

    def test_choice_join_keeps_taint_from_either_arm(self):
        source = """
        group contents
        field cnt
        field obj
        field vec maps cnt into contents
        proc m(st, r) modifies r.obj
        impl m(st, r) {
          var t in
            ( assume st != null ; t := st.vec
              []
              assume st = null ; t := null ) ;
            r.obj := t
          end
        }
        """
        diags = escapes(source)
        assert [d.code for d in diags] == ["OL110"]
