"""Tests for obligation-failure diagnosis (the "stuck on" reports)."""

import pytest

from repro.api import check_program
from repro.prover.core import Limits

LIMITS = Limits(time_budget=120.0)


def stuck_on(source, impl_name):
    report = check_program(source, LIMITS)
    verdict = report.verdict_for(impl_name)
    assert not verdict.ok, verdict.describe()
    return verdict.failed_obligation


class TestDiagnosisKinds:
    def test_failing_assert_identified(self):
        info = stuck_on(
            """
            proc p(t)
            impl p(t) { assert 1 = 2 }
            """,
            "p",
        )
        assert info is not None
        assert info.kind == "assert"
        assert "1 = 2" in info.description

    def test_unlicensed_write_identified(self):
        info = stuck_on(
            """
            group g
            field outside
            proc p(t) modifies t.g
            impl p(t) { assume t != null ; t.outside := 1 }
            """,
            "p",
        )
        assert info.kind == "write-licence"
        assert "t.outside" in info.description

    def test_unlicensed_allocation_identified(self):
        info = stuck_on(
            """
            group g
            field outside
            proc p(t) modifies t.g
            impl p(t) { assume t != null ; t.outside := new() }
            """,
            "p",
        )
        assert info.kind == "write-licence"
        assert "allocation" in info.description

    def test_call_licence_identified(self):
        info = stuck_on(
            """
            group g
            group h
            proc wide(u) modifies u.h
            proc p(t) modifies t.g
            impl p(t) { assume t != null ; wide(t) }
            """,
            "p",
        )
        assert info.kind == "call-licence"
        assert "wide" in info.description

    def test_owner_exclusion_identified_with_argument(self):
        info = stuck_on(
            """
            group contents
            field cnt
            field vec maps cnt into contents
            proc w(st, v) modifies st.contents
            impl w(st, v) { skip }
            proc bad(st) modifies st.contents
            impl bad(st) {
              assume st != null ; assume st.vec != null ; w(st, st.vec)
            }
            """,
            "bad",
        )
        assert info.kind == "owner-exclusion"
        assert "st.vec" in info.description


class TestDiagnosisOrdering:
    def test_later_obligation_blamed_not_earlier(self):
        info = stuck_on(
            """
            group g
            field f in g
            field outside
            proc p(t) modifies t.g
            impl p(t) { assume t != null ; t.f := 1 ; t.outside := 2 }
            """,
            "p",
        )
        assert "t.outside" in info.description

    def test_earlier_obligation_blamed_when_it_fails(self):
        info = stuck_on(
            """
            group g
            group h
            field f in g
            proc wide(u) modifies u.h
            proc p(t) modifies t.g
            impl p(t) { assume t != null ; wide(t) ; t.f := 1 }
            """,
            "p",
        )
        assert info.kind == "call-licence"

    def test_failure_inside_choice_branch(self):
        info = stuck_on(
            """
            group g
            field f in g
            field outside
            proc p(t) modifies t.g
            impl p(t) {
              assume t != null ;
              ( t.f := 1 [] t.outside := 2 )
            }
            """,
            "p",
        )
        assert "t.outside" in info.description

    def test_verified_impl_has_no_diagnosis(self):
        report = check_program(
            """
            group g
            field f in g
            proc p(t) modifies t.g
            impl p(t) { assume t != null ; t.f := 1 }
            """,
            LIMITS,
        )
        verdict = report.verdict_for("p")
        assert verdict.ok
        assert verdict.failed_obligation is None

    def test_describe_includes_diagnosis(self):
        report = check_program(
            """
            proc p(t)
            impl p(t) { assert false }
            """,
            LIMITS,
        )
        text = report.verdict_for("p").describe()
        assert "stuck on" in text
