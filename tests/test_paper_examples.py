"""Integration tests: every claim the paper makes about its examples.

These are the headline reproduction results (see EXPERIMENTS.md):

* Section 2's rational library and the stack-over-vector library verify.
* Section 3.0: q verifies modularly; the alias-leaking m is rejected by
  pivot uniqueness; without the restrictions the composed program's assert
  fails at runtime.
* Section 3.1: w verifies; the call w(st, st.vec) is rejected by owner
  exclusion; the naive system accepts it and the runtime disagrees.
* Section 5: all three worked examples verify mechanically — including
  the cyclic-rep-inclusion linked list on which the paper's Simplify
  diverged.
"""

import pytest

from repro.api import check_program, parse_program
from repro.baselines.naive_modular import naive_check_scope
from repro.corpus.programs import (
    LINKED_LIST,
    ONCE_TWICE,
    RATIONAL,
    SECTION3_CLIENT,
    SECTION3_CLIENT_INIT,
    SECTION3_LEAKING_M,
    SECTION3_OWNER_BAD_CALL,
    SECTION3_OWNER_DRIVER,
    SECTION3_UNSOUND_IMPLS,
    SECTION3_W,
    SECTION5_FIRST,
    STACK_VECTOR,
)
from repro.prover.core import Limits
from repro.restrictions.pivot import check_pivot_uniqueness
from repro.semantics.interp import ExplorationConfig, OutcomeKind, explore_program

LIMITS = Limits(time_budget=120.0)

NO_MONITORS = ExplorationConfig(
    check_modifies=False,
    check_pivot_uniqueness=False,
    check_owner_exclusion=False,
)


class TestSection2:
    def test_rational_library_verifies(self):
        report = check_program(RATIONAL, LIMITS)
        assert report.ok, report.describe()

    def test_stack_vector_library_verifies(self):
        report = check_program(STACK_VECTOR, LIMITS)
        assert report.ok, report.describe()


class TestSection30:
    def test_q_verifies_in_client_scope(self):
        report = check_program(SECTION3_CLIENT, LIMITS)
        assert report.verdict_for("q").ok, report.describe()

    def test_leaking_m_rejected_by_pivot_uniqueness(self):
        scope = parse_program(SECTION3_CLIENT + SECTION3_LEAKING_M)
        violations = check_pivot_uniqueness(scope)
        assert violations
        assert violations[0].impl == "m"
        assert "vec" in violations[0].detail

    def test_naive_checker_accepts_the_leak(self):
        scope = parse_program(SECTION3_CLIENT_INIT + SECTION3_UNSOUND_IMPLS)
        report = naive_check_scope(scope, LIMITS)
        leaked_m = [v for v in report.verdicts if v.impl.name == "m"]
        assert all(v.ok for v in leaked_m), report.describe()

    def test_runtime_assert_fails_without_restrictions(self):
        scope = parse_program(SECTION3_CLIENT_INIT + SECTION3_UNSOUND_IMPLS)
        outcomes = explore_program(scope, "q2", config=NO_MONITORS)
        assert any(o.kind is OutcomeKind.WRONG_ASSERT for o in outcomes)

    def test_monitors_catch_the_leak_before_the_assert(self):
        scope = parse_program(SECTION3_CLIENT_INIT + SECTION3_UNSOUND_IMPLS)
        outcomes = explore_program(scope, "q2")
        kinds = {o.kind for o in outcomes}
        assert OutcomeKind.PIVOT_VIOLATION in kinds
        assert OutcomeKind.WRONG_ASSERT not in kinds


class TestSection31:
    def test_w_verifies(self):
        report = check_program(SECTION3_W, LIMITS)
        assert report.verdict_for("w").ok, report.describe()

    def test_owner_exclusion_rejects_bad_call(self):
        report = check_program(SECTION3_W + SECTION3_OWNER_BAD_CALL, LIMITS)
        assert report.verdict_for("w").ok
        assert not report.verdict_for("bad").ok

    def test_naive_checker_accepts_everything(self):
        scope = parse_program(
            SECTION3_W + SECTION3_OWNER_BAD_CALL + SECTION3_OWNER_DRIVER
        )
        report = naive_check_scope(scope, LIMITS)
        assert report.ok, report.describe()

    def test_runtime_assert_fails_without_restrictions(self):
        scope = parse_program(
            SECTION3_W + SECTION3_OWNER_BAD_CALL + SECTION3_OWNER_DRIVER
        )
        outcomes = explore_program(scope, "main", config=NO_MONITORS)
        assert any(o.kind is OutcomeKind.WRONG_ASSERT for o in outcomes)

    def test_owner_exclusion_monitor_catches_it_first(self):
        scope = parse_program(
            SECTION3_W + SECTION3_OWNER_BAD_CALL + SECTION3_OWNER_DRIVER
        )
        outcomes = explore_program(scope, "main")
        kinds = {o.kind for o in outcomes}
        assert OutcomeKind.OWNER_EXCLUSION_VIOLATION in kinds
        assert OutcomeKind.WRONG_ASSERT not in kinds


class TestSection5:
    def test_first_example_verifies(self):
        report = check_program(SECTION5_FIRST, LIMITS)
        assert report.verdict_for("p").ok, report.describe()

    def test_once_twice_verifies(self):
        # Pivot uniqueness subsumes the swinging-pivots restriction.
        report = check_program(ONCE_TWICE, LIMITS)
        assert report.verdict_for("twice").ok, report.describe()

    def test_linked_list_verifies_despite_cyclic_inclusion(self):
        # The paper's Simplify diverged here; our bounded prover closes it.
        report = check_program(LINKED_LIST, LIMITS)
        verdict = report.verdict_for("updateAll")
        assert verdict.ok, report.describe()
        # And cheaply: a handful of instantiations, not a matching loop.
        assert verdict.stats.instantiations < 500

    def test_first_example_uses_few_resources(self):
        report = check_program(SECTION5_FIRST, LIMITS)
        stats = report.verdict_for("p").stats
        assert stats.instantiations < 500
        assert stats.elapsed < 30.0


class TestNegativeControls:
    """Programs that must NOT verify (mutated from the paper's)."""

    def test_write_outside_group(self):
        source = """
        group g
        field inside in g
        field outside
        proc p(t) modifies t.g
        impl p(t) { assume t != null ; t.outside := 1 }
        """
        report = check_program(source, LIMITS)
        assert not report.ok

    def test_write_with_no_modifies(self):
        source = """
        field f
        proc p(t)
        impl p(t) { assume t != null ; t.f := 1 }
        """
        report = check_program(source, LIMITS)
        assert not report.ok

    def test_callee_needs_wider_licence(self):
        source = """
        group g
        group h
        proc narrow(t) modifies t.g
        proc wide(t) modifies t.h
        impl narrow(t) { wide(t) }
        """
        report = check_program(source, LIMITS)
        assert not report.ok

    def test_assert_that_is_plainly_false(self):
        source = """
        proc p(t)
        impl p(t) { assert 1 = 2 }
        """
        report = check_program(source, LIMITS)
        assert not report.ok

    def test_frame_cannot_protect_modified_location(self):
        # Like EX-5.1 but asserting a field the callee IS allowed to change.
        source = """
        group g
        field f in g
        proc p(t) modifies t.g
        proc q(u) modifies u.g
        impl p(t) {
          assume t != null ;
          var y in y := t.f ; q(t) ; assert y = t.f end
        }
        """
        report = check_program(source, LIMITS)
        assert not report.ok
