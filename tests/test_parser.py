"""Unit tests for the oolong parser, including round-trips via the printer."""

import pytest

from repro.errors import ParseError
from repro.oolong.ast import (
    Assert,
    Assign,
    AssignNew,
    Assume,
    BinOp,
    BoolConst,
    Call,
    Choice,
    Designator,
    FieldAccess,
    FieldDecl,
    GroupDecl,
    Id,
    ImplDecl,
    IntConst,
    MapsClause,
    NullConst,
    ProcDecl,
    Seq,
    Skip,
    UnOp,
    VarCmd,
)
from repro.oolong.parser import parse_command, parse_expression, parse_program_text
from repro.oolong.pretty import pretty_cmd, pretty_expr, pretty_program


class TestDeclarations:
    def test_group_without_in(self):
        (decl,) = parse_program_text("group contents")
        assert decl == GroupDecl("contents")

    def test_group_with_in_list(self):
        (decl,) = parse_program_text("group g in h, k")
        assert decl == GroupDecl("g", ("h", "k"))

    def test_field_plain(self):
        (decl,) = parse_program_text("field cnt")
        assert decl == FieldDecl("cnt")
        assert not decl.is_pivot

    def test_field_with_in(self):
        (decl,) = parse_program_text("field num in value")
        assert decl == FieldDecl("num", ("value",))

    def test_field_with_maps_is_pivot(self):
        (decl,) = parse_program_text("field vec maps elems into contents")
        assert decl == FieldDecl("vec", (), (MapsClause("elems", ("contents",)),))
        assert decl.is_pivot

    def test_field_with_in_and_multiple_maps(self):
        (decl,) = parse_program_text(
            "field f in a, b maps x into g maps y into h, k"
        )
        assert decl.in_groups == ("a", "b")
        assert decl.maps == (
            MapsClause("x", ("g",)),
            MapsClause("y", ("h", "k")),
        )

    def test_proc_no_modifies(self):
        (decl,) = parse_program_text("proc q()")
        assert decl == ProcDecl("q", ())

    def test_proc_with_modifies(self):
        (decl,) = parse_program_text("proc push(st, o) modifies st.contents")
        assert decl == ProcDecl(
            "push", ("st", "o"), (Designator("st", (), "contents"),)
        )

    def test_proc_with_deep_designator(self):
        (decl,) = parse_program_text("proc p(t) modifies t.c.d.g")
        assert decl.modifies == (Designator("t", ("c", "d"), "g"),)

    def test_proc_with_multiple_designators(self):
        (decl,) = parse_program_text("proc m(a, b) modifies a.g, b.f.h")
        assert decl.modifies == (
            Designator("a", (), "g"),
            Designator("b", ("f",), "h"),
        )

    def test_designator_requires_selector(self):
        with pytest.raises(ParseError):
            parse_program_text("proc p(t) modifies t")

    def test_impl(self):
        (decl,) = parse_program_text("impl q() { skip }")
        assert decl == ImplDecl("q", (), Skip())

    def test_impl_with_params_and_body(self):
        (decl,) = parse_program_text("impl m(st, r) { r.obj := st.vec }")
        assert decl == ImplDecl(
            "m",
            ("st", "r"),
            Assign(FieldAccess(Id("r"), "obj"), FieldAccess(Id("st"), "vec")),
        )

    def test_unknown_declaration_keyword(self):
        with pytest.raises(ParseError):
            parse_program_text("module m")


class TestCommands:
    def test_assert(self):
        assert parse_command("assert x = y") == Assert(BinOp("=", Id("x"), Id("y")))

    def test_assume(self):
        assert parse_command("assume t != null") == Assume(
            BinOp("!=", Id("t"), NullConst())
        )

    def test_var(self):
        cmd = parse_command("var x in x := 1 end")
        assert cmd == VarCmd("x", Assign(Id("x"), IntConst(1)))

    def test_nested_var(self):
        cmd = parse_command("var x in var y in skip end end")
        assert cmd == VarCmd("x", VarCmd("y", Skip()))

    def test_assign_local(self):
        assert parse_command("x := 3") == Assign(Id("x"), IntConst(3))

    def test_assign_field(self):
        cmd = parse_command("t.value := t.value + 1")
        target = FieldAccess(Id("t"), "value")
        assert cmd == Assign(target, BinOp("+", target, IntConst(1)))

    def test_assign_new_local(self):
        assert parse_command("st := new()") == AssignNew(Id("st"))

    def test_assign_new_field(self):
        assert parse_command("s.vec := new()") == AssignNew(
            FieldAccess(Id("s"), "vec")
        )

    def test_seq_is_left_associative(self):
        cmd = parse_command("skip ; skip ; skip")
        assert cmd == Seq(Seq(Skip(), Skip()), Skip())

    def test_choice_binds_looser_than_seq(self):
        cmd = parse_command("skip ; skip [] skip")
        assert cmd == Choice(Seq(Skip(), Skip()), Skip())

    def test_parenthesized_command(self):
        cmd = parse_command("skip ; (skip [] skip)")
        assert cmd == Seq(Skip(), Choice(Skip(), Skip()))

    def test_call_no_args(self):
        assert parse_command("q()") == Call("q", ())

    def test_call_with_args(self):
        assert parse_command("push(st, 3)") == Call("push", (Id("st"), IntConst(3)))

    def test_call_with_designator_arg(self):
        assert parse_command("w(st, st.vec)") == Call(
            "w", (Id("st"), FieldAccess(Id("st"), "vec"))
        )

    def test_if_desugars_to_paper_encoding(self):
        cmd = parse_command("if b then x := 1 else x := 2 end")
        expected = Choice(
            Seq(Assume(UnOp("!", Id("b"))), Assign(Id("x"), IntConst(2))),
            Seq(Assume(Id("b")), Assign(Id("x"), IntConst(1))),
        )
        assert cmd == expected

    def test_assignment_target_must_be_designator(self):
        with pytest.raises(ParseError):
            parse_command("1 := x")

    def test_assignment_target_parenthesized_rejected(self):
        with pytest.raises(ParseError):
            parse_command("(x) := y")


class TestExpressions:
    def test_constants(self):
        assert parse_expression("null") == NullConst()
        assert parse_expression("true") == BoolConst(True)
        assert parse_expression("false") == BoolConst(False)
        assert parse_expression("7") == IntConst(7)

    def test_field_access_chains_left(self):
        expr = parse_expression("t.c.d")
        assert expr == FieldAccess(FieldAccess(Id("t"), "c"), "d")

    def test_precedence_mul_over_add(self):
        expr = parse_expression("a + b * c")
        assert expr == BinOp("+", Id("a"), BinOp("*", Id("b"), Id("c")))

    def test_precedence_add_over_compare(self):
        expr = parse_expression("a + 1 = b")
        assert expr == BinOp("=", BinOp("+", Id("a"), IntConst(1)), Id("b"))

    def test_precedence_compare_over_and(self):
        expr = parse_expression("a = b && c != d")
        assert expr == BinOp(
            "&&", BinOp("=", Id("a"), Id("b")), BinOp("!=", Id("c"), Id("d"))
        )

    def test_precedence_and_over_or(self):
        expr = parse_expression("a && b || c")
        assert expr == BinOp("||", BinOp("&&", Id("a"), Id("b")), Id("c"))

    def test_unary_not(self):
        assert parse_expression("!x") == UnOp("!", Id("x"))

    def test_unary_minus(self):
        assert parse_expression("-x + y") == BinOp("+", UnOp("-", Id("x")), Id("y"))

    def test_parentheses_override(self):
        expr = parse_expression("(a + b) * c")
        assert expr == BinOp("*", BinOp("+", Id("a"), Id("b")), Id("c"))

    def test_comparison_non_associative(self):
        with pytest.raises(ParseError):
            parse_expression("a = b = c")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a + b c")


class TestRoundTrips:
    PROGRAMS = [
        "group value\nfield num in value\nfield den in value\n"
        "proc normalize(r) modifies r.value",
        "group contents\ngroup elems\n"
        "field vec maps elems into contents\n"
        "proc push(s, o) modifies s.contents",
        "group g\nfield value in g\nfield next maps g into g\n"
        "proc updateAll(t) modifies t.g\n"
        "impl updateAll(t) { assume t != null ; t.value := t.value + 1 }",
    ]

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_program_round_trip(self, source):
        decls = parse_program_text(source)
        printed = pretty_program(decls)
        assert parse_program_text(printed) == decls

    COMMANDS = [
        "assert n = v.cnt",
        "var st in st := new() ; push(st, 3) end",
        "skip ; (x := 1 [] x := 2) ; assert x < 3",
        "t.value := t.value + 1",
    ]

    @pytest.mark.parametrize("source", COMMANDS)
    def test_command_round_trip(self, source):
        cmd = parse_command(source)
        assert parse_command(pretty_cmd(cmd)) == cmd

    EXPRESSIONS = [
        "a + b * c",
        "(a + b) * c",
        "!(a = b) && c != null",
        "a - b - c",
        "a || b && !c",
        "x.f.g + 1 < y.h",
    ]

    @pytest.mark.parametrize("source", EXPRESSIONS)
    def test_expression_round_trip(self, source):
        expr = parse_expression(source)
        assert parse_expression(pretty_expr(expr)) == expr
