"""Unit tests for the oolong lexer."""

import pytest

from repro.errors import LexError
from repro.oolong.lexer import tokenize
from repro.oolong.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_eof(self):
        assert kinds("") == [TokenKind.EOF]

    def test_whitespace_only_yields_eof(self):
        assert kinds("  \t\n  \r\n") == [TokenKind.EOF]

    def test_identifier(self):
        tokens = tokenize("contents")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "contents"

    def test_identifier_with_underscore_and_digits(self):
        assert values("a_b2 _x") == ["a_b2", "_x"]

    def test_integer(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.INT
        assert tokens[0].value == "42"

    def test_integer_then_identifier_requires_separator(self):
        with pytest.raises(LexError):
            tokenize("12abc")

    def test_keywords_are_not_identifiers(self):
        assert kinds("group field proc impl")[:-1] == [
            TokenKind.GROUP,
            TokenKind.FIELD,
            TokenKind.PROC,
            TokenKind.IMPL,
        ]

    def test_all_command_keywords(self):
        source = "assert assume var end new if then else skip in maps into modifies"
        expected = [
            TokenKind.ASSERT,
            TokenKind.ASSUME,
            TokenKind.VAR,
            TokenKind.END,
            TokenKind.NEW,
            TokenKind.IF,
            TokenKind.THEN,
            TokenKind.ELSE,
            TokenKind.SKIP,
            TokenKind.IN,
            TokenKind.MAPS,
            TokenKind.INTO,
            TokenKind.MODIFIES,
        ]
        assert kinds(source)[:-1] == expected

    def test_constants(self):
        assert kinds("null true false")[:-1] == [
            TokenKind.NULL,
            TokenKind.TRUE,
            TokenKind.FALSE,
        ]


class TestOperators:
    def test_two_char_operators(self):
        assert kinds(":= [] != <= >= && ||")[:-1] == [
            TokenKind.ASSIGN,
            TokenKind.BOX,
            TokenKind.NE,
            TokenKind.LE,
            TokenKind.GE,
            TokenKind.AND,
            TokenKind.OR,
        ]

    def test_one_char_operators(self):
        assert kinds("( ) { } , ; . = < > + - * !")[:-1] == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.COMMA,
            TokenKind.SEMI,
            TokenKind.DOT,
            TokenKind.EQ,
            TokenKind.LT,
            TokenKind.GT,
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.NOT,
        ]

    def test_assign_vs_colon_rejected(self):
        with pytest.raises(LexError):
            tokenize(":")

    def test_maximal_munch_le_vs_lt(self):
        assert kinds("<=<")[:-1] == [TokenKind.LE, TokenKind.LT]

    def test_bang_equals_vs_bang(self):
        assert kinds("!!=")[:-1] == [TokenKind.NOT, TokenKind.NE]


class TestCommentsAndPositions:
    def test_line_comment_skipped(self):
        assert kinds("x // comment to end\ny")[:-1] == [
            TokenKind.IDENT,
            TokenKind.IDENT,
        ]

    def test_block_comment_skipped(self):
        assert values("a /* anything \n at all */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_positions_track_lines_and_columns(self):
        tokens = tokenize("a\n  bb")
        assert (tokens[0].position.line, tokens[0].position.column) == (1, 1)
        assert (tokens[1].position.line, tokens[1].position.column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestRealisticSources:
    def test_stack_module_header(self):
        source = "proc push(st, o) modifies st.contents"
        expected = [
            TokenKind.PROC,
            TokenKind.IDENT,
            TokenKind.LPAREN,
            TokenKind.IDENT,
            TokenKind.COMMA,
            TokenKind.IDENT,
            TokenKind.RPAREN,
            TokenKind.MODIFIES,
            TokenKind.IDENT,
            TokenKind.DOT,
            TokenKind.IDENT,
        ]
        assert kinds(source)[:-1] == expected

    def test_field_maps_declaration(self):
        source = "field vec maps elems into contents"
        assert kinds(source)[:-1] == [
            TokenKind.FIELD,
            TokenKind.IDENT,
            TokenKind.MAPS,
            TokenKind.IDENT,
            TokenKind.INTO,
            TokenKind.IDENT,
        ]
