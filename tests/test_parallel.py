"""Supervised parallel checking: determinism, faults, budgets, crashes.

Four layers:

* **Differential** — for every program in the examples corpus, the
  parallel backend's ``CheckReport.to_dict()`` is byte-identical to the
  serial driver's (modulo wall-clock fields). Scheduling, worker count,
  and completion order must be invisible in the report.
* **Direct supervision** — each failure mode produces exactly the
  promised degradation: a killed worker is retried and the job still
  verifies; with retries exhausted the job (and only that job) is
  quarantined as ``OL902``; a frozen worker loses its heartbeat and is
  retried; a hard job timeout SIGKILLs the worker and records
  ``OL901``/``TIMED_OUT``.
* **Fuzzed fault matrix** — seeded plans over the supervisor fault
  kinds (``worker-kill``/``worker-hang``/``cache-corrupt``; CI sweeps
  seed offsets via ``FAULT_SEED_OFFSET``) never change final verdicts:
  every recoverable fault is absorbed by supervision.
* **Crash safety** — SIGKILLing the whole supervisor process mid-run
  leaves a usable cache: the rerun recomputes only what was lost, and a
  corrupted entry is rejected (``OL903``) and recomputed, never trusted.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.api import check_program_resilient
from repro.corpus.generators import generate_impl_farm
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.parallel import (
    ParallelOptions,
    ResultCache,
    run_parallel_checks,
)
from repro.prover.core import Limits
from repro.testing.faults import (
    SUPERVISOR_STAGES,
    Fault,
    FaultPlan,
    inject,
)
from repro.vcgen.checker import ImplStatus, check_scope

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
LIMITS = Limits(time_budget=60.0)

SEED_OFFSET = int(os.environ.get("FAULT_SEED_OFFSET", "0"))
SEEDS = range(SEED_OFFSET, SEED_OFFSET + 10)


def _example_paths():
    paths = []
    for subdir in ("", "failing"):
        directory = os.path.join(EXAMPLES_DIR, subdir)
        for name in sorted(os.listdir(directory)):
            if name.endswith(".oolong"):
                paths.append(os.path.join(directory, name))
    assert paths
    return paths


def _strip_timing(value):
    """Drop wall-clock fields; everything else must match exactly."""
    if isinstance(value, dict):
        return {
            key: _strip_timing(item)
            for key, item in value.items()
            if key != "elapsed"
        }
    if isinstance(value, list):
        return [_strip_timing(item) for item in value]
    return value


def _canonical(report) -> str:
    return json.dumps(_strip_timing(report.to_dict()), sort_keys=True)


def _farm_scope(impls=4, fields=4):
    scope = Scope.from_source(generate_impl_farm(impls, fields))
    check_well_formed(scope)
    return scope


# Tight-but-tolerant supervision for tests: quick hang detection and
# cheap backoff, yet enough heartbeat slack and retry budget that a
# loaded single-core CI runner starving a worker's beat thread for a
# moment cannot fake a worker death all the way into quarantine.
FAST = ParallelOptions(
    jobs=2,
    heartbeat_timeout=1.0,
    backoff_base=0.01,
    poll_interval=0.02,
    max_retries=4,
)


class TestDifferential:
    @pytest.mark.parametrize(
        "path", _example_paths(), ids=lambda p: os.path.basename(p)
    )
    def test_parallel_report_matches_serial(self, path):
        with open(path) as handle:
            source = handle.read()
        serial = check_program_resilient(source, LIMITS, filename=path)
        parallel = check_program_resilient(
            source, LIMITS, filename=path, parallel=2
        )
        assert _canonical(parallel) == _canonical(serial)

    def test_worker_count_is_invisible(self):
        scope = _farm_scope(5, 4)
        reports = [
            check_scope(scope, LIMITS, parallel=jobs) for jobs in (1, 3)
        ]
        assert _canonical(reports[0]) == _canonical(reports[1])


class TestSupervision:
    def test_killed_worker_is_retried_and_verifies(self):
        scope = _farm_scope()
        plan = FaultPlan((Fault("worker-kill", "raise", hit=1),))
        with inject(plan) as injector:
            report = check_scope(scope, LIMITS, parallel=2)
        assert all(v.status is ImplStatus.VERIFIED for v in report.verdicts)
        assert ("worker-kill", 1, "raise") in injector.fired

    def test_exhausted_retries_quarantine_only_that_job(self):
        scope = _farm_scope()
        serial = check_scope(scope, LIMITS)
        plan = FaultPlan((Fault("worker-kill", "raise", hit=1),))
        with inject(plan):
            report = check_scope(scope, LIMITS, parallel=2, max_retries=0)
        assert len(report.verdicts) == len(serial.verdicts)
        for index, verdict in enumerate(report.verdicts):
            if index == 1:
                assert verdict.status is ImplStatus.INTERNAL_ERROR
                assert verdict.error is not None
                assert verdict.error.code == "OL902"
                assert "quarantined" in verdict.error.message
            else:
                assert verdict.status is serial.verdicts[index].status

    def test_lost_heartbeat_triggers_retry(self):
        scope = _farm_scope()
        plan = FaultPlan((Fault("worker-hang", "raise", hit=0),))
        with inject(plan):
            outcome = run_parallel_checks(scope, LIMITS, options=FAST)
        assert all(
            job.verdict.status is ImplStatus.VERIFIED
            for job in outcome.jobs
        )
        hung = outcome.jobs[0]
        assert any("heartbeat" in reason for reason in hung.death_reasons)

    def test_hard_timeout_kills_and_reports_ol901(self):
        scope = _farm_scope()
        # A frozen worker with a generous heartbeat window: the hard job
        # timeout must fire first and classify the job as TIMED_OUT (a
        # slow-but-alive job), not as a worker death.
        options = ParallelOptions(
            jobs=2,
            job_timeout=0.3,
            heartbeat_timeout=30.0,
            poll_interval=0.02,
        )
        plan = FaultPlan((Fault("worker-hang", "raise", hit=0),))
        with inject(plan):
            outcome = run_parallel_checks(scope, LIMITS, options=options)
        timed_out = outcome.jobs[0]
        assert timed_out.verdict.status is ImplStatus.TIMED_OUT
        assert timed_out.verdict.error.code == "OL901"
        assert "hard job timeout" in timed_out.verdict.error.message
        for job in outcome.jobs[1:]:
            assert job.verdict.status is ImplStatus.VERIFIED


class TestScopeBudget:
    def test_budget_expiry_cancels_promptly(self):
        # ~1s of serial proof work, but only a 0.25s scope budget: the
        # supervisor must kill in-flight workers and cancel the queue
        # within a poll interval or two, not run the farm to completion.
        scope = _farm_scope(8, 12)
        limits = Limits(time_budget=60.0, scope_time_budget=0.25)
        start = time.monotonic()
        report = check_scope(scope, limits, parallel=2)
        elapsed = time.monotonic() - start
        assert elapsed < 0.25 + 0.6, f"overshoot: {elapsed:.2f}s"
        assert len(report.verdicts) == 8
        statuses = {v.status for v in report.verdicts}
        assert ImplStatus.TIMED_OUT in statuses
        for verdict in report.verdicts:
            if verdict.status is ImplStatus.TIMED_OUT:
                assert verdict.error.code == "OL901"


class TestFaultMatrix:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_supervised_faults_never_change_verdicts(self, seed, tmp_path):
        scope = _farm_scope()
        serial = check_scope(scope, LIMITS)
        plan = FaultPlan.fuzz(seed, stages=SUPERVISOR_STAGES, max_hit=2)
        cache_dir = tmp_path / f"cache-{seed}"
        with inject(plan):
            outcome = run_parallel_checks(
                scope,
                LIMITS,
                options=FAST,
                cache=ResultCache(str(cache_dir)),
            )
        assert len(outcome.jobs) == len(serial.verdicts)
        for job, baseline in zip(outcome.jobs, serial.verdicts):
            assert job.verdict is not None
            detail = (
                f"job {job.job_id} ({job.impl.name}): "
                f"{job.verdict.status} != {baseline.status}; "
                f"attempts={job.attempts} deaths={job.death_reasons} "
                f"error={job.verdict.error}"
            )
            assert job.verdict.status is baseline.status, detail
            assert job.verdict.impl is baseline.impl


def _processes_mentioning(needle: str):
    """Pids (other than ours) whose command line contains ``needle``.

    Forked workers keep the supervisor's command line, so the unique
    temp-file path identifies the whole process tree. /proc scanning is
    Linux-only; elsewhere report nothing (the orphan assertion becomes
    vacuous, the cache assertions still run).
    """
    pids = []
    if not os.path.isdir("/proc"):
        return pids
    for entry in os.listdir("/proc"):
        if not entry.isdigit() or int(entry) == os.getpid():
            continue
        try:
            with open(f"/proc/{entry}/cmdline", "rb") as handle:
                cmdline = handle.read().decode("utf-8", "replace")
        except OSError:
            continue
        if needle in cmdline:
            pids.append(int(entry))
    return pids


class TestCrashSafety:
    def _write_farm(self, tmp_path, impls=8, fields=12):
        source = generate_impl_farm(impls, fields)
        path = tmp_path / "farm.oolong"
        path.write_text(source)
        return path, Scope.from_source(source)

    def test_rerun_is_served_from_cache(self, tmp_path):
        scope = _farm_scope()
        cache_dir = str(tmp_path / "cache")
        first = check_scope(scope, LIMITS, cache_dir=cache_dir)
        second = check_scope(scope, LIMITS, cache_dir=cache_dir)
        assert _canonical(first) == _canonical(second)
        assert first.cache_summary["stores"] == len(first.verdicts)
        assert second.cache_summary["hits"] == len(second.verdicts)

    def test_corrupted_entry_is_rejected_and_recomputed(self, tmp_path):
        scope = _farm_scope()
        cache_dir = tmp_path / "cache"
        check_scope(scope, LIMITS, cache_dir=str(cache_dir))
        victim = sorted(cache_dir.glob("*.json"))[0]
        data = victim.read_bytes()
        victim.write_bytes(
            data[: len(data) // 2] + b"\x00GARBAGE\x00" + data[len(data) // 2 :]
        )
        report = check_scope(scope, LIMITS, cache_dir=str(cache_dir))
        assert report.ok
        rejections = [d for d in report.diagnostics if d.code == "OL903"]
        assert len(rejections) == 1
        assert "rejected" in rejections[0].message
        assert report.cache_summary["hits"] == len(report.verdicts) - 1
        # The rejected entry was recomputed and republished: a third run
        # is all hits again.
        third = check_scope(scope, LIMITS, cache_dir=str(cache_dir))
        assert third.cache_summary["hits"] == len(third.verdicts)

    def test_cache_corrupt_fault_kind_round_trips(self, tmp_path):
        scope = _farm_scope()
        cache_dir = str(tmp_path / "cache")
        plan = FaultPlan((Fault("cache-corrupt", "corrupt", hit=0),))
        with inject(plan) as injector:
            first = check_scope(scope, LIMITS, parallel=2, cache_dir=cache_dir)
        assert first.ok
        assert ("cache-corrupt", 0, "corrupt") in injector.fired
        second = check_scope(scope, LIMITS, cache_dir=cache_dir)
        assert second.ok
        assert any(d.code == "OL903" for d in second.diagnostics)

    def test_sigkill_mid_run_leaves_usable_cache(self, tmp_path):
        path, scope = self._write_farm(tmp_path)
        cache_dir = tmp_path / "cache"
        env = dict(os.environ)
        src_dir = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath(src_dir), env.get("PYTHONPATH", "")]
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                str(path),
                "-j",
                "2",
                "--cache-dir",
                str(cache_dir),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        time.sleep(1.0)
        process.send_signal(signal.SIGKILL)
        process.wait()
        # SIGKILL bypasses every cleanup hook in the supervisor, so the
        # workers must notice the orphaning themselves (the heartbeat
        # thread watches the parent pid) and exit promptly.
        deadline = time.monotonic() + 10.0
        while _processes_mentioning(str(path)) and time.monotonic() < deadline:
            time.sleep(0.1)
        assert not _processes_mentioning(str(path)), "orphaned workers"
        # Whatever the kill left behind must be either absent or valid:
        # the rerun recomputes the lost entries and trusts the rest.
        report = check_scope(scope, LIMITS, cache_dir=str(cache_dir))
        assert report.ok
        assert all(
            v.status is ImplStatus.VERIFIED for v in report.verdicts
        )
        assert not any(d.code == "OL903" for d in report.diagnostics)
        summary = report.cache_summary
        assert summary["hits"] + summary["stores"] >= len(report.verdicts)
