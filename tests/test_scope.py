"""Unit tests for the Scope program representation."""

import pytest

from repro.errors import WellFormednessError
from repro.oolong.ast import FieldDecl, GroupDecl, ProcDecl
from repro.oolong.program import Scope

STACK_SOURCE = """
group contents
group elems
field cnt in elems
field vec maps elems into contents
proc push(st, o) modifies st.contents
impl push(st, o) { skip }
impl push(st, o) { assert true }
"""


@pytest.fixture
def stack_scope():
    return Scope.from_source(STACK_SOURCE)


class TestLookups:
    def test_groups_and_fields(self, stack_scope):
        assert set(stack_scope.groups) == {"contents", "elems"}
        assert set(stack_scope.fields) == {"cnt", "vec"}

    def test_attribute_covers_both(self, stack_scope):
        assert stack_scope.attribute("contents").name == "contents"
        assert stack_scope.attribute("cnt").name == "cnt"
        assert stack_scope.attribute("nope") is None

    def test_attribute_names_in_order(self, stack_scope):
        assert stack_scope.attribute_names() == ("contents", "elems", "cnt", "vec")

    def test_proc_lookup(self, stack_scope):
        assert stack_scope.proc("push").params == ("st", "o")
        assert stack_scope.proc("pop") is None

    def test_multiple_impls_allowed(self, stack_scope):
        assert len(stack_scope.impls_of("push")) == 2

    def test_is_pivot(self, stack_scope):
        assert stack_scope.is_pivot("vec")
        assert not stack_scope.is_pivot("cnt")
        assert not stack_scope.is_pivot("contents")

    def test_pivot_fields(self, stack_scope):
        assert [f.name for f in stack_scope.pivot_fields()] == ["vec"]


class TestDuplicateNames:
    def test_duplicate_group(self):
        with pytest.raises(WellFormednessError):
            Scope([GroupDecl("g"), GroupDecl("g")])

    def test_group_field_clash(self):
        with pytest.raises(WellFormednessError):
            Scope([GroupDecl("x"), FieldDecl("x")])

    def test_proc_attribute_clash(self):
        with pytest.raises(WellFormednessError):
            Scope([FieldDecl("p"), ProcDecl("p", ())])

    def test_two_impls_do_not_clash(self, stack_scope):
        assert len(stack_scope) == 7


class TestEnclosingGroups:
    def test_direct_inclusion(self):
        scope = Scope.from_source("group value\nfield num in value")
        assert scope.enclosing_groups("num") == {"value"}

    def test_transitive_inclusion(self):
        scope = Scope.from_source(
            "group a\ngroup b in a\ngroup c in b\nfield f in c"
        )
        assert scope.enclosing_groups("f") == {"a", "b", "c"}

    def test_diamond_inclusion(self):
        scope = Scope.from_source(
            "group top\ngroup l in top\ngroup r in top\nfield f in l, r"
        )
        assert scope.enclosing_groups("f") == {"top", "l", "r"}

    def test_no_inclusions(self):
        scope = Scope.from_source("group g")
        assert scope.enclosing_groups("g") == frozenset()

    def test_field_in_multiple_groups(self):
        # The feature Greenhouse-Boyland regions forbid: one field, two groups.
        scope = Scope.from_source("group a\ngroup b\nfield f in a, b")
        assert scope.enclosing_groups("f") == {"a", "b"}

    def test_unknown_attribute_raises(self):
        scope = Scope.from_source("group g")
        with pytest.raises(WellFormednessError):
            scope.enclosing_groups("missing")

    def test_local_includes_is_reflexive(self):
        scope = Scope.from_source("group g\nfield f in g")
        assert scope.local_includes("f", "f")
        assert scope.local_includes("g", "g")
        assert scope.local_includes("g", "f")
        assert not scope.local_includes("f", "g")


class TestRepStructure:
    def test_rep_pairs(self, stack_scope):
        assert stack_scope.rep_pairs("vec") == (("contents", "elems"),)

    def test_rep_pairs_non_pivot_empty(self, stack_scope):
        assert stack_scope.rep_pairs("cnt") == ()

    def test_rep_pairs_multiple_clauses(self):
        scope = Scope.from_source(
            "group g\ngroup h\nfield x\nfield f maps x into g maps x into h"
        )
        assert set(scope.rep_pairs("f")) == {("g", "x"), ("h", "x")}

    def test_all_rep_triples(self, stack_scope):
        assert stack_scope.all_rep_triples() == (("vec", "contents", "elems"),)

    def test_cyclic_rep_inclusion_representable(self):
        # The linked-list example: g —next→ g is legal (only *local* group
        # inclusion must be acyclic).
        scope = Scope.from_source(
            "group g\nfield value in g\nfield next maps g into g"
        )
        assert scope.rep_pairs("next") == (("g", "g"),)


class TestExtension:
    def test_extend_adds_declarations(self, stack_scope):
        bigger = stack_scope.extend([GroupDecl("extra")])
        assert bigger.is_group("extra")
        assert len(bigger) == len(stack_scope) + 1

    def test_extend_with_scope(self, stack_scope):
        other = Scope([GroupDecl("other")])
        assert stack_scope.extend(other).is_group("other")

    def test_extend_rejects_clashes(self, stack_scope):
        with pytest.raises(WellFormednessError):
            stack_scope.extend([GroupDecl("contents")])

    def test_original_unchanged(self, stack_scope):
        stack_scope.extend([GroupDecl("extra")])
        assert not stack_scope.is_group("extra")

    def test_restrict_to(self, stack_scope):
        from repro.oolong.ast import ImplDecl

        interface = stack_scope.restrict_to(lambda d: not isinstance(d, ImplDecl))
        assert interface.impls_of("push") == ()
        assert interface.proc("push") is not None
