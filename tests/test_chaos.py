"""Crash-safety and graceful-shutdown chaos tests.

The contract under test: with ``--run-dir`` every decided verdict is
durable (fsync'd) before the run can observe it, so a coordinator killed
at *any* point — SIGKILL mid-commit, mid-merge, with a torn ledger tail,
or with duplicated records — resumes to a **byte-identical** report
without proving any committed implementation twice; and the standing
servers (``workers serve``, ``cache serve``) exit 0 through a graceful
drain on SIGTERM/SIGINT instead of dying with a traceback, while the
remote-cache client's circuit breaker is half-open: a cache server that
comes back mid-run is re-dialed and serves the rest of the run.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.analysis.diagnostics import Diagnostic, diagnostic_from_dict
from repro.corpus.generators import generate_impl_farm
from repro.obs import EventJournal, journaling
from repro.obs.events import read_journal
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.parallel.cache import _stats_from_dict
from repro.parallel.cacheserver import CacheServer, RemoteCache
from repro.parallel.ledger import (
    CHAOS_EXIT_CODE,
    LEDGER_NAME,
    PREVIOUS_NAME,
    RunLedger,
    ledger_to_verdict,
    verdict_to_ledger,
)
from repro.prover.core import Limits
from repro.testing.chaos import (
    CHAOS_ENV,
    parse_chaos_spec,
    plan_from_env,
    run_cli,
)
from repro.testing.faults import COORDINATOR_STAGES
from repro.vcgen.checker import ImplStatus, ImplVerdict, check_scope

LIMITS = Limits(time_budget=60.0)

FARM = generate_impl_farm(3, 2)


def _scope(source=FARM):
    scope = Scope.from_source(source)
    check_well_formed(scope)
    return scope


def _ledger_path(run_dir):
    return os.path.join(str(run_dir), LEDGER_NAME)


# ---------------------------------------------------------------------------
# The chaos spec and its env-var transport
# ---------------------------------------------------------------------------


class TestChaosSpec:
    def test_parses_stages_and_hits(self):
        plan = parse_chaos_spec("kill-coordinator@2, truncate-ledger-tail")
        assert [(f.stage, f.hit) for f in plan.faults] == [
            ("kill-coordinator", 2),
            ("truncate-ledger-tail", 0),
        ]

    def test_all_coordinator_stages_are_known(self):
        spec = ",".join(COORDINATOR_STAGES)
        plan = parse_chaos_spec(spec)
        assert len(plan.faults) == len(COORDINATOR_STAGES)

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            parse_chaos_spec("explode-the-moon@1")

    def test_bad_hit_rejected(self):
        with pytest.raises(ValueError):
            parse_chaos_spec("kill-coordinator@soon")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            parse_chaos_spec(" , ")

    def test_plan_from_env(self):
        assert plan_from_env({}) is None
        assert plan_from_env({CHAOS_ENV: ""}) is None
        plan = plan_from_env({CHAOS_ENV: "kill-during-merge@1"})
        assert plan.faults[0].stage == "kill-during-merge"


# ---------------------------------------------------------------------------
# Verdict round-trip through the ledger record format
# ---------------------------------------------------------------------------


class TestVerdictRoundTrip:
    def test_decided_verdicts_round_trip(self):
        scope = _scope()
        report = check_scope(scope, LIMITS)
        for verdict in report.verdicts:
            payload = json.loads(json.dumps(verdict_to_ledger(verdict)))
            back = ledger_to_verdict(payload, verdict.impl, verdict.index)
            assert back.status is verdict.status
            assert back.stats.to_dict() == verdict.stats.to_dict()
            assert (back.failed_obligation is None) == (
                verdict.failed_obligation is None
            )

    def test_transient_verdict_with_error_round_trips(self):
        # The cache refuses transient statuses; the ledger must not —
        # a resumed run reports the interrupted run verbatim.
        scope = _scope()
        impl = scope.impls_of("job0")[0]
        verdict = ImplVerdict(
            impl=impl,
            index=0,
            status=ImplStatus.INTERNAL_ERROR,
            stats=_stats_from_dict({}),
            error=Diagnostic(
                code="OL902",
                message="worker died 3 times; job quarantined",
                impl="job0",
            ),
        )
        payload = json.loads(json.dumps(verdict_to_ledger(verdict)))
        back = ledger_to_verdict(payload, impl, 0)
        assert back.status is ImplStatus.INTERNAL_ERROR
        assert back.error is not None
        assert back.error.code == "OL902"
        assert back.error.message == verdict.error.message
        assert back.error.impl == "job0"

    def test_diagnostic_from_dict_is_exact_inverse(self):
        diag = Diagnostic(code="OL905", message="ledger damaged", impl="p")
        assert diagnostic_from_dict(diag.to_dict()) == diag

    def test_diagnostic_from_dict_rejects_unknown_code(self):
        with pytest.raises(KeyError):
            diagnostic_from_dict({"code": "OL999", "message": "?"})


# ---------------------------------------------------------------------------
# The run ledger itself (in-process)
# ---------------------------------------------------------------------------


class TestRunLedger:
    def _committed(self, tmp_path, scope=None):
        scope = scope or _scope()
        report = check_scope(scope, LIMITS)
        ledger = RunLedger(str(tmp_path), scope, LIMITS)
        for verdict in report.verdicts:
            ledger.commit(verdict)
        ledger.close()
        return scope, report

    def test_commit_and_resume_preloads(self, tmp_path):
        scope, report = self._committed(tmp_path)
        resumed = RunLedger(str(tmp_path), scope, LIMITS, resume=True)
        assert len(resumed.preloaded) == len(report.verdicts)
        assert resumed.stale == 0 and resumed.skipped == 0
        for verdict in report.verdicts:
            back = resumed.preloaded[(verdict.impl.name, verdict.index)]
            assert back.status is verdict.status
        resumed.close()

    def test_commit_is_idempotent_per_key(self, tmp_path):
        scope = _scope()
        report = check_scope(scope, LIMITS)
        ledger = RunLedger(str(tmp_path), scope, LIMITS)
        ledger.commit(report.verdicts[0])
        ledger.commit(report.verdicts[0])
        assert ledger.commits == 1
        assert ledger.deduped == 1
        ledger.close()
        with open(_ledger_path(tmp_path)) as handle:
            kinds = [json.loads(line)["record"] for line in handle]
        assert kinds.count("verdict-committed") == 1

    def test_fresh_run_rotates_stale_ledger(self, tmp_path):
        scope, _ = self._committed(tmp_path)
        again = RunLedger(str(tmp_path), scope, LIMITS)  # no resume
        assert again.rotated
        assert not again.preloaded
        assert os.path.exists(os.path.join(str(tmp_path), PREVIOUS_NAME))
        again.close()

    def test_torn_tail_is_skipped_and_trimmed(self, tmp_path):
        scope, report = self._committed(tmp_path)
        with open(_ledger_path(tmp_path), "a") as handle:
            handle.write('{"record": "verdict-committed", "key": "tor')
        resumed = RunLedger(str(tmp_path), scope, LIMITS, resume=True)
        assert len(resumed.preloaded) == len(report.verdicts)
        assert any("torn final record" in reason for _, reason in resumed.warnings)
        resumed.close()
        with open(_ledger_path(tmp_path)) as handle:
            data = handle.read()
        assert '"tor' not in data  # debris trimmed before appending
        assert data.endswith("\n")

    def test_checksum_mismatch_skips_record(self, tmp_path):
        scope, report = self._committed(tmp_path)
        path = _ledger_path(tmp_path)
        with open(path) as handle:
            lines = handle.readlines()
        record = json.loads(lines[1])
        assert record["record"] == "verdict-committed"
        record["verdict"]["status"] = "not proved"  # tamper, keep checksum
        lines[1] = json.dumps(record, sort_keys=True) + "\n"
        with open(path, "w") as handle:
            handle.writelines(lines)
        resumed = RunLedger(str(tmp_path), scope, LIMITS, resume=True)
        assert resumed.skipped == 1
        assert len(resumed.preloaded) == len(report.verdicts) - 1
        assert any("checksum mismatch" in r for _, r in resumed.warnings)
        resumed.close()

    def test_changed_limits_make_records_stale(self, tmp_path):
        scope, report = self._committed(tmp_path)
        other = Limits(time_budget=59.0)
        resumed = RunLedger(str(tmp_path), scope, other, resume=True)
        assert resumed.stale == len(report.verdicts)
        assert not resumed.preloaded
        resumed.close()

    def test_version_skew_discards_whole_ledger(self, tmp_path):
        scope, _ = self._committed(tmp_path)
        path = _ledger_path(tmp_path)
        with open(path) as handle:
            lines = handle.readlines()
        header = json.loads(lines[0])
        header["code_version"] = "0.0.0+elsewhere"
        lines[0] = json.dumps(header, sort_keys=True) + "\n"
        with open(path, "w") as handle:
            handle.writelines(lines)
        resumed = RunLedger(str(tmp_path), scope, LIMITS, resume=True)
        assert resumed.discarded is not None
        assert not resumed.preloaded
        assert resumed.rotated
        assert os.path.exists(os.path.join(str(tmp_path), PREVIOUS_NAME))
        resumed.close()

    def test_checker_reports_ledger_summary(self, tmp_path):
        scope = _scope()
        report = check_scope(scope, LIMITS, run_dir=str(tmp_path))
        assert report.ledger_summary is not None
        assert report.ledger_summary["commits"] == len(report.verdicts)
        assert report.ledger_summary["warnings"] == []

    def test_in_process_resume_is_identical(self, tmp_path):
        scope = _scope()
        baseline = check_scope(scope, LIMITS)
        first = check_scope(scope, LIMITS, run_dir=str(tmp_path))
        resumed = check_scope(
            _scope(), LIMITS, run_dir=str(tmp_path), resume=True
        )
        assert resumed.ledger_summary["resumed"] == len(baseline.verdicts)
        assert resumed.ledger_summary["commits"] == 0
        # The resumed report replays the *ledgered* run verbatim, down
        # to the recorded prover stats; it also matches any fresh run
        # on everything deterministic (the whole stats=False report).
        # Only the report-level wall clock is this run's own.
        resumed_dict, first_dict = resumed.to_dict(), first.to_dict()
        resumed_dict.pop("elapsed", None)
        first_dict.pop("elapsed", None)
        assert resumed_dict == first_dict
        assert resumed.describe(stats=True) == first.describe(stats=True)
        assert resumed.describe() == baseline.describe()


# ---------------------------------------------------------------------------
# Torn journal tails everywhere JSONL is read back
# ---------------------------------------------------------------------------


class TestTornJournalTail:
    def test_torn_final_line_always_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "check-start"}\n{"event": "tor')
        skipped = []
        records = read_journal(
            str(path), on_skip=lambda lineno, reason: skipped.append(lineno)
        )
        assert len(records) == 1
        assert skipped == [2]

    def test_mid_file_damage_raises_under_strict(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('not json\n{"event": "check-start"}\n')
        with pytest.raises(ValueError):
            read_journal(str(path))
        records = read_journal(str(path), strict=False)
        assert len(records) == 1

    def test_events_report_survives_torn_tail(self, tmp_path, write_farm):
        source = write_farm()
        events = tmp_path / "events.jsonl"
        code, _, _ = run_cli([source, "--events", str(events)])
        assert code == 0
        with open(events, "a") as handle:
            handle.write('{"event": "tor')
        code, out, err = run_cli(["events", "report", str(events)])
        assert code == 0
        assert "OL905" in err and "torn final record" in err
        assert "impls=3" in out


# ---------------------------------------------------------------------------
# The SIGKILL matrix: kill the coordinator, resume, diff byte-for-byte
# ---------------------------------------------------------------------------


@pytest.fixture
def write_farm(tmp_path):
    def write():
        path = tmp_path / "farm.oolong"
        path.write_text(FARM)
        return str(path)

    return write


BACKENDS = [
    pytest.param([], id="serial"),
    pytest.param(["-j", "2"], id="parallel"),
    pytest.param(["--fleet", "2"], id="fleet"),
]

KILL_STAGES = [
    pytest.param("kill-coordinator@1", id="kill-mid-commit"),
    pytest.param("kill-during-merge@1", id="kill-mid-merge"),
]


class TestCoordinatorKillMatrix:
    @pytest.mark.parametrize("extra", BACKENDS)
    @pytest.mark.parametrize("chaos", KILL_STAGES)
    def test_kill_then_resume_byte_identical(
        self, tmp_path, write_farm, extra, chaos
    ):
        source = write_farm()
        run_dir = str(tmp_path / "run")
        events = str(tmp_path / "resume-events.jsonl")

        base_code, base_out, _ = run_cli([source] + extra)
        assert base_code == 0

        code, _, _ = run_cli(
            [source, "--run-dir", run_dir] + extra, chaos=chaos
        )
        assert code == CHAOS_EXIT_CODE  # SIGKILL model: nothing survives
        ledger = _ledger_path(run_dir)
        assert os.path.exists(ledger)
        committed = sum(
            1
            for record in read_journal(ledger, strict=False)
            if record.get("record") == "verdict-committed"
        )
        assert committed >= 1  # the fsync'd prefix survived the kill

        code, out, err = run_cli(
            [source, "--run-dir", run_dir, "--resume", "--events", events]
            + extra
        )
        assert code == base_code
        assert out == base_out  # byte-identical resumed report

        # No implementation is proved twice: every committed verdict is
        # replayed as preresolved, only the remainder is checked fresh.
        summary = json.loads(
            open(os.path.join(run_dir, "summary.json")).read()
        )
        records = read_journal(events, strict=False)
        fresh = {
            (r["impl"], r["index"])
            for r in records
            if r.get("event") == "impl-checked" and not r.get("preresolved")
        }
        replayed = {
            (r["impl"], r["index"])
            for r in records
            if r.get("event") == "impl-checked" and r.get("preresolved")
        }
        assert len(replayed) == summary["resumed"] >= committed
        assert len(fresh) == summary["impls"] - summary["resumed"]
        assert not (fresh & replayed)

    def test_truncated_tail_resumes_identically(self, tmp_path, write_farm):
        source = write_farm()
        run_dir = str(tmp_path / "run")
        base_code, base_out, _ = run_cli([source])
        code, _, _ = run_cli(
            [source, "--run-dir", run_dir],
            chaos="truncate-ledger-tail@2,kill-coordinator@2",
        )
        assert code == CHAOS_EXIT_CODE
        code, out, err = run_cli([source, "--run-dir", run_dir, "--resume"])
        assert code == base_code
        assert out == base_out
        assert "OL905" in err and "torn final record" in err

    def test_duplicate_commit_resumes_identically(self, tmp_path, write_farm):
        source = write_farm()
        run_dir = str(tmp_path / "run")
        base_code, base_out, _ = run_cli([source])
        code, _, _ = run_cli(
            [source, "--run-dir", run_dir], chaos="duplicate-commit@0"
        )
        assert code == base_code  # duplication alone does not kill the run
        code, out, err = run_cli([source, "--run-dir", run_dir, "--resume"])
        assert code == base_code
        assert out == base_out
        assert "OL905" in err and "duplicate record" in err

    def test_resume_without_run_dir_is_usage_error(self, write_farm):
        code, _, err = run_cli([write_farm(), "--resume"])
        assert code == 2
        assert "--run-dir" in err


# ---------------------------------------------------------------------------
# Graceful server drain (SIGTERM / SIGINT, both servers)
# ---------------------------------------------------------------------------


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_cli(args):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    parts = [src] + env.get("PYTHONPATH", "").split(os.pathsep)
    env["PYTHONPATH"] = os.pathsep.join(p for p in parts if p)
    env.pop(CHAOS_ENV, None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        start_new_session=True,  # its own group, like a terminal job
    )


def _await_start(process):
    line = process.stdout.readline()
    record = json.loads(line)
    assert record["event"] == "server-start"
    return record


def _stop_record(out):
    for line in out.splitlines():
        record = json.loads(line)
        if record.get("event") == "server-stop":
            return record
    raise AssertionError(f"no server-stop record in {out!r}")


class TestGracefulDrain:
    @pytest.mark.parametrize(
        "sig,reason",
        [(signal.SIGTERM, "sigterm"), (signal.SIGINT, "sigint")],
    )
    def test_workers_serve_drains(self, sig, reason):
        process = _spawn_cli(
            [
                "workers",
                "serve",
                f"127.0.0.1:{_free_port()}",
                "-j",
                "2",
                "--drain-timeout",
                "5",
            ]
        )
        try:
            _await_start(process)
            time.sleep(1.0)  # let the workers fork and start dialing
            os.killpg(process.pid, sig)  # the whole group, like Ctrl-C
            out, err = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
        assert process.returncode == 0
        assert "Traceback" not in err
        record = _stop_record(out)
        assert record["reason"] == reason
        assert record["drained"] + record["terminated"] == 2

    @pytest.mark.parametrize(
        "sig,reason",
        [(signal.SIGTERM, "sigterm"), (signal.SIGINT, "sigint")],
    )
    def test_cache_serve_drains(self, tmp_path, sig, reason):
        process = _spawn_cli(
            [
                "cache",
                "serve",
                f"127.0.0.1:{_free_port()}",
                "--dir",
                str(tmp_path / "cache"),
                "--drain-timeout",
                "5",
            ]
        )
        try:
            _await_start(process)
            os.killpg(process.pid, sig)
            out, err = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
        assert process.returncode == 0
        assert "Traceback" not in err
        record = _stop_record(out)
        assert record["reason"] == reason


# ---------------------------------------------------------------------------
# Cache outage, then recovery: the half-open breaker re-dials
# ---------------------------------------------------------------------------


class TestCacheOutageRecovery:
    def test_breaker_reconnects_after_restart(self, tmp_path):
        key = "a" * 64
        directory = str(tmp_path / "cache")
        journal = EventJournal()
        with journaling(journal):
            server = CacheServer(directory, ("127.0.0.1", 0)).start()
            host, port = server.address
            client = RemoteCache.connect(server.url)
            client.reconnect_backoff = 0.05  # shrink the outage window
            assert client.load(key) is None  # honest miss over the wire
            server.stop()

            client.load(key)  # fails -> breaker trips
            assert client.degraded is not None
            assert client.outages == 1
            before = client.misses
            client.load(key)  # still down: local no-op miss
            assert client.misses == before + 1

            restarted = CacheServer(directory, (host, port)).start()
            try:
                deadline = time.monotonic() + 30
                while client.degraded is not None:
                    assert time.monotonic() < deadline, "never reconnected"
                    time.sleep(0.05)
                    client.load(key)
                assert client.reconnects == 1
                # Post-recovery traffic is served remotely again (the
                # round trip completes instead of no-op'ing locally).
                assert client.load(key) is None
                assert client.degraded is None
                summary = client.summary()
                assert summary["outages"] == 1
                assert summary["reconnects"] == 1
                assert "degraded" not in summary
            finally:
                client.close()
                restarted.stop()
        kinds = [record["event"] for record in journal.records]
        assert "cache-reconnected" in kinds

    def test_checker_run_heals_after_outage(self, tmp_path):
        # Differential: a run against a cache that died and came back
        # reports the same verdicts as a cacheless run, and ends
        # un-degraded (the probe reconnected).
        directory = str(tmp_path / "cache")
        scope = _scope()
        baseline = check_scope(scope, LIMITS)

        server = CacheServer(directory, ("127.0.0.1", 0)).start()
        host, port = server.address
        url = server.url
        warm = check_scope(_scope(), LIMITS, cache_url=url)
        assert warm.describe() == baseline.describe()
        server.stop()  # outage between runs

        restarted = CacheServer(directory, (host, port)).start()
        try:
            healed = check_scope(_scope(), LIMITS, cache_url=url)
            assert healed.describe() == baseline.describe()
            assert healed.cache_summary is not None
            assert healed.cache_summary.get("hits", 0) >= 1
        finally:
            restarted.stop()
