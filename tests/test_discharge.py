"""End-to-end tests for static discharge in the checking pipeline.

Covers the static-discharge PR's driver wiring:

* verdict identity: ``static_discharge="on"`` produces byte-identical
  verdicts to ``"off"`` on the whole example corpus, serial and
  parallel;
* the farm corpus discharges at least half of its obligations;
* a discharged implementation genuinely skips the prover (proved with
  the fault-injection harness: a planted prover fault never fires);
* statically refuted implementations come back ``NOT_PROVED`` with an
  ``OL401`` blame diagnostic, without a prover run;
* ``check_discharge=True`` re-proves everything and reports zero
  disagreements on the corpus (``OL402`` stays silent);
* strict mode defers opaque-summary implementations with ``OL403``;
* discharged verdicts are never written to the result cache;
* the discharge pass version participates in the cache key.
"""

import glob
import os

import pytest

from repro.analysis.effects import DISCHARGE_VERSION
from repro.api import check_program
from repro.corpus.generators import generate_impl_farm
from repro.oolong.program import Scope
from repro.parallel.cache import code_version
from repro.prover.core import Limits
from repro.testing.faults import Fault, FaultError, FaultPlan, inject
from repro.vcgen.checker import ImplStatus, check_scope

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

LIMITS = Limits(time_budget=60.0)


def example_sources():
    paths = sorted(
        glob.glob(os.path.join(EXAMPLES_DIR, "*.oolong"))
    ) + sorted(glob.glob(os.path.join(EXAMPLES_DIR, "failing", "*.oolong")))
    assert paths, "example corpus is empty"
    return [(os.path.basename(p), open(p).read()) for p in paths]


def verdict_fingerprint(report):
    return [
        (v.impl.name, v.index, v.status.value) for v in report.verdicts
    ]


# ----------------------------------------------------------------------
# Verdict identity: discharge must never change an answer
# ----------------------------------------------------------------------


class TestVerdictIdentity:
    @pytest.mark.parametrize("name,source", example_sources())
    def test_serial_on_equals_off(self, name, source):
        off = check_program(source, LIMITS)
        on = check_program(source, LIMITS, static_discharge="on")
        assert verdict_fingerprint(on) == verdict_fingerprint(off)

    def test_parallel_on_equals_off(self):
        source = generate_impl_farm(4, fields=3)
        off = check_program(source, LIMITS, parallel=2)
        on = check_program(
            source, LIMITS, parallel=2, static_discharge="on"
        )
        assert verdict_fingerprint(on) == verdict_fingerprint(off)

    def test_mode_is_validated(self):
        scope = Scope.from_source("field f")
        with pytest.raises(ValueError):
            check_scope(scope, LIMITS, static_discharge="sometimes")


# ----------------------------------------------------------------------
# Discharge rate and prover skipping
# ----------------------------------------------------------------------


class TestDischargeRate:
    def test_farm_discharges_at_least_half(self):
        source = generate_impl_farm(8, fields=4)
        report = check_program(source, LIMITS, static_discharge="on")
        summary = report.discharge_summary
        assert summary is not None
        assert summary["obligations_total"] > 0
        assert summary["discharge_rate"] >= 0.5
        assert all(v.status is ImplStatus.VERIFIED for v in report.verdicts)

    def test_discharged_impl_never_reaches_prover(self):
        """With every farm impl statically valid, a planted prover fault
        must never fire — the strongest possible "skipped the prover"."""
        source = generate_impl_farm(3, fields=3)
        with inject(FaultPlan((Fault("prove", "raise", hit=0),))) as injector:
            report = check_program(source, LIMITS, static_discharge="on")
        assert all(v.status is ImplStatus.VERIFIED for v in report.verdicts)
        assert injector.counts.get("prove", 0) == 0
        assert not injector.fired

    def test_off_mode_reaches_prover(self):
        source = generate_impl_farm(3, fields=3)
        with inject(FaultPlan((Fault("prove", "raise", hit=0),))):
            report = check_program(source, LIMITS)
        assert any(
            v.status is ImplStatus.INTERNAL_ERROR for v in report.verdicts
        )
        assert report.discharge_summary is None


# ----------------------------------------------------------------------
# Static refutation: OL401, no prover run
# ----------------------------------------------------------------------


BAD_WRITE = open(
    os.path.join(EXAMPLES_DIR, "failing", "bad_write.oolong")
).read()


class TestStaticViolation:
    def test_refuted_impl_is_not_proved_with_blame(self):
        with inject(FaultPlan((Fault("prove", "raise", hit=0),))) as injector:
            report = check_program(BAD_WRITE, LIMITS, static_discharge="on")
        verdict = report.verdicts[0]
        assert verdict.status is ImplStatus.NOT_PROVED
        assert verdict.failed_obligation is not None
        assert injector.counts.get("prove", 0) == 0
        errors = [d for d in report.diagnostics if d.code == "OL401"]
        assert len(errors) == 1
        assert errors[0].impl == verdict.impl.name
        assert errors[0].position is not None
        assert errors[0].notes  # inclusion-chain blame rides along

    def test_refutation_matches_prover(self):
        baseline = check_program(BAD_WRITE, LIMITS)
        static = check_program(BAD_WRITE, LIMITS, static_discharge="on")
        assert verdict_fingerprint(static) == verdict_fingerprint(baseline)


# ----------------------------------------------------------------------
# The differential guard
# ----------------------------------------------------------------------


class TestCheckDischarge:
    @pytest.mark.parametrize("name,source", example_sources())
    def test_no_disagreements_on_corpus(self, name, source):
        report = check_program(source, LIMITS, check_discharge=True)
        assert not [d for d in report.diagnostics if d.code == "OL402"]
        summary = report.discharge_summary
        assert summary is not None and summary["checked"]
        assert summary.get("disagreements", 0) == 0

    def test_check_discharge_implies_on(self):
        source = generate_impl_farm(2, fields=2)
        report = check_program(source, LIMITS, check_discharge=True)
        assert report.discharge_summary is not None
        assert report.discharge_summary["mode"] == "on"

    def test_agreements_are_counted(self):
        source = generate_impl_farm(3, fields=3)
        report = check_program(source, LIMITS, check_discharge=True)
        assert report.discharge_summary.get("agreements", 0) >= 3

    def test_check_discharge_still_proves(self):
        """The guard re-proves everything: a prover fault now fires even
        though the impls are statically discharged."""
        source = generate_impl_farm(2, fields=2)
        with inject(FaultPlan((Fault("prove", "raise", hit=0),))) as injector:
            check_program(source, LIMITS, check_discharge=True)
        assert injector.counts.get("prove", 0) > 0


# ----------------------------------------------------------------------
# Strict mode
# ----------------------------------------------------------------------


OPAQUE_CALLEE = """
group g
field f in g
proc helper(o) modifies o.g
proc driver(o) modifies o.g
impl driver(o) {
  assume o != null ;
  helper(o)
}
"""


class TestStrictMode:
    def test_strict_defers_opaque_summaries_with_ol403(self):
        scope = Scope.from_source(OPAQUE_CALLEE)
        report = check_scope(scope, LIMITS, static_discharge="strict")
        deferred = [d for d in report.diagnostics if d.code == "OL403"]
        assert deferred, "strict mode must report the deferral"
        assert report.discharge_summary["mode"] == "strict"
        # Deferred means the prover decided — and the verdict matches
        # the plain run.
        baseline = check_scope(
            Scope.from_source(OPAQUE_CALLEE), LIMITS
        )
        assert verdict_fingerprint(report) == verdict_fingerprint(baseline)

    def test_strict_still_discharges_closed_impls(self):
        source = generate_impl_farm(3, fields=3)
        report = check_program(source, LIMITS, static_discharge="strict")
        assert report.discharge_summary["discharge_rate"] > 0


# ----------------------------------------------------------------------
# Cache interaction
# ----------------------------------------------------------------------


class TestCacheInteraction:
    def test_discharged_verdicts_not_cached(self, tmp_path):
        source = generate_impl_farm(3, fields=3)
        cache_dir = str(tmp_path / "cache")
        report = check_program(
            source, LIMITS, cache_dir=cache_dir, static_discharge="on"
        )
        assert all(v.status is ImplStatus.VERIFIED for v in report.verdicts)
        assert report.cache_summary["stores"] == 0
        assert not glob.glob(os.path.join(cache_dir, "*.json"))

    def test_prover_verdicts_still_cached_when_off(self, tmp_path):
        source = generate_impl_farm(2, fields=2)
        cache_dir = str(tmp_path / "cache")
        report = check_program(source, LIMITS, cache_dir=cache_dir)
        assert report.cache_summary["stores"] == 2

    def test_cache_key_includes_discharge_version(self):
        assert f"discharge{DISCHARGE_VERSION}" in code_version()
