"""Tests for the telemetry subsystem (``repro.obs``).

Covers the satellite checklist of the observability PR:

* golden Chrome-trace skeleton for a small example;
* schema/shape validation of exported trace JSON;
* span nesting invariants (closure, parent containment, depth);
* a fault-injection run asserting spans still close on injected crashes;
* the shared ``STAGES`` constant between tracer and fault harness;
* ``ProverStats`` surfaced in ``CheckReport.to_dict`` / ``--format json``;
* the CLI flags ``--trace`` / ``--metrics`` / ``--profile`` / ``--stats``.
"""

import json

import pytest

from repro import obs
from repro.api import check_program, check_program_resilient
from repro.cli import main
from repro.testing.faults import Fault, FaultPlan, STAGES as FAULT_STAGES, inject
from repro.vcgen.checker import ImplStatus

RATIONAL = """
group value
field num in value
field den in value
proc normalize(r) modifies r.value
impl normalize(r) {
  assume r != null ;
  r.num := 1 ;
  r.den := 1
}
"""


def traced_check(source=RATIONAL, **kwargs):
    tracer = obs.Tracer()
    report = check_program(source, tracer=tracer, **kwargs)
    return tracer, report


# ----------------------------------------------------------------------
# Tracer core
# ----------------------------------------------------------------------


class TestTracer:
    def test_null_path_records_nothing(self):
        with obs.span("prove") as handle:
            handle.set(ignored=1)
        assert obs.current() is None and not obs.active()

    def test_spans_cover_every_pipeline_stage(self):
        tracer, report = traced_check()
        assert report.ok
        recorded = {s.name for s in tracer.spans if s.category == obs.CAT_STAGE}
        # lex/parse happen during parse_program; the rest inside check_scope
        assert set(FAULT_STAGES) <= recorded

    def test_stage_names_shared_with_fault_harness(self):
        assert FAULT_STAGES is obs.STAGES

    def test_all_spans_closed_and_nested(self):
        tracer, _ = traced_check()
        assert tracer.open_spans == []
        for index, span in enumerate(tracer.spans):
            assert span.closed, f"span {span.name} never closed"
            assert span.duration >= 0.0
            if span.parent is not None:
                parent = tracer.spans[span.parent]
                assert span.parent < index
                assert parent.depth == span.depth - 1
                # a child's interval lies within its parent's
                assert parent.start <= span.start
                assert span.end <= parent.end

    def test_stage_implementation_vc_chain(self):
        tracer, _ = traced_check()
        (prove,) = [
            i
            for i, s in enumerate(tracer.spans)
            if s.name == "prove" and s.category == obs.CAT_STAGE
        ]
        (impl,) = tracer.children_of(prove)
        assert tracer.spans[impl].category == obs.CAT_IMPL
        assert tracer.spans[impl].name == "normalize"
        (vc,) = tracer.children_of(impl)
        vc_span = tracer.spans[vc]
        assert vc_span.category == obs.CAT_VC
        assert vc_span.args["verdict"] == "unsat"
        assert vc_span.args["instantiations"] >= 1

    def test_vcgen_span_carries_sizes(self):
        tracer, _ = traced_check()
        vc_spans = [
            s
            for s in tracer.spans
            if s.category == obs.CAT_VC and "goal_nodes" in s.args
        ]
        assert vc_spans and all(
            s.args["goal_nodes"] > 0 and s.args["background_axioms"] > 0
            for s in vc_spans
        )

    def test_nested_tracing_restores_outer(self):
        outer, inner = obs.Tracer(), obs.Tracer()
        with obs.tracing(outer):
            with obs.tracing(inner):
                assert obs.current() is inner
            assert obs.current() is outer
        assert obs.current() is None


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestMetrics:
    def test_prover_stats_feed_registry(self):
        tracer, _ = traced_check()
        counters = tracer.metrics.counters
        assert counters["prover.checks"] == 1
        assert counters["prover.instantiations"] >= 1
        assert counters["prover.facts"] > 0
        assert counters["prover.egraph_merges"] > 0
        assert counters["vcgen.vcs"] == 1
        assert counters["vcgen.background_axioms"] > 0
        assert counters["checker.status.verified"] == 1
        by_quant = tracer.metrics.labelled[
            "prover.instantiations.by_quantifier"
        ]
        assert by_quant and all(count > 0 for count in by_quant.values())

    def test_timers_and_top(self):
        tracer, _ = traced_check()
        timer = tracer.metrics.timers["prover.check_seconds"]
        assert timer.count == 1 and timer.total >= 0.0
        top = tracer.metrics.top("prover.instantiations.by_quantifier", 3)
        assert len(top) <= 3
        assert top == sorted(top, key=lambda kv: (-kv[1], kv[0]))

    def test_registry_to_dict_shape(self):
        tracer, _ = traced_check()
        payload = tracer.metrics.to_dict()
        assert set(payload) == {"counters", "labelled", "timers"}
        json.dumps(payload)  # must be JSON-serializable as-is


# ----------------------------------------------------------------------
# ProverStats in reports (satellite: stats were computed and dropped)
# ----------------------------------------------------------------------


class TestStatsSurfaced:
    def test_report_json_carries_stats_per_verdict(self):
        _, report = traced_check()
        verdict = report.to_dict()["verdicts"][0]
        stats = verdict["stats"]
        assert stats["instantiations"] >= 1
        assert stats["facts"] > 0 and stats["merges"] > 0
        assert isinstance(stats["per_quantifier"], dict)

    def test_describe_stats_prints_per_quantifier(self):
        _, report = traced_check()
        text = report.describe(stats=True)
        assert "per-quantifier:" in text and "merges=" in text


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------


class TestChromeTrace:
    def test_schema_validates(self):
        tracer, _ = traced_check()
        payload = obs.chrome_trace(tracer)
        assert obs.validate_chrome_trace(payload) is None
        json.loads(json.dumps(payload))  # round-trips as JSON

    def test_event_shape(self):
        tracer, _ = traced_check()
        events = obs.chrome_trace(tracer)["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert meta and meta[0]["args"]["name"] == "oolong-check"
        assert len(complete) == len(tracer.spans)
        for event in complete:
            assert event["pid"] == 1 and event["tid"] == 1
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["args"], dict)

    def test_golden_skeleton_small_example(self):
        """The (category, name) sequence for RATIONAL, in span-open order."""
        tracer, _ = traced_check()
        skeleton = [(s.category, s.name) for s in tracer.spans]
        assert skeleton == [
            ("stage", "lex"),
            ("stage", "parse"),
            ("stage", "wellformed"),
            ("pipeline", "check_scope"),
            ("stage", "wellformed"),
            ("stage", "lint"),
            ("stage", "wellformed"),
            ("stage", "pivot"),
            ("stage", "vcgen"),
            ("implementation", "normalize"),
            ("vc", "vc normalize"),
            ("stage", "prove"),
            ("implementation", "normalize"),
            ("vc", "vc normalize"),
        ]

    def test_validator_rejects_garbage(self):
        assert obs.validate_chrome_trace({}) is not None
        assert obs.validate_chrome_trace({"traceEvents": []}) is not None
        bad = {"traceEvents": [{"ph": "X", "name": "x"}]}
        assert "missing" in obs.validate_chrome_trace(bad)


# ----------------------------------------------------------------------
# Text profile
# ----------------------------------------------------------------------


class TestTextReport:
    def test_sections_present(self):
        tracer, _ = traced_check()
        text = obs.text_report(tracer)
        assert "stage breakdown" in text
        assert "slowest VCs" in text
        assert "hottest quantifiers" in text
        assert "prover: 1 check(s)" in text

    def test_deadline_pressure_reported_with_budget(self):
        from repro.prover.core import Limits

        tracer = obs.Tracer()
        check_program(RATIONAL, Limits(time_budget=30.0), tracer=tracer)
        text = obs.text_report(tracer)
        assert "deadline pressure: worst" in text


# ----------------------------------------------------------------------
# Fault injection x tracing: spans close on injected crashes
# ----------------------------------------------------------------------


class TestFaultInjectionTracing:
    @pytest.mark.parametrize("stage", ["vcgen", "prove"])
    def test_spans_close_on_injected_crash(self, stage):
        tracer = obs.Tracer()
        with inject(FaultPlan((Fault(stage, "raise"),))) as injector:
            report = check_program_resilient(RATIONAL, tracer=tracer)
        assert injector.fired  # the fault actually triggered
        verdict = report.verdicts[0]
        assert verdict.status is ImplStatus.INTERNAL_ERROR
        assert tracer.open_spans == []
        assert all(span.closed for span in tracer.spans)
        errored = [s for s in tracer.spans if s.error is not None]
        assert errored, "the crashing span should record its exception"
        assert any("injected crash" in s.error for s in errored)

    def test_trace_of_crashed_run_still_validates(self):
        tracer = obs.Tracer()
        with inject(FaultPlan((Fault("parse", "raise"),))):
            report = check_program_resilient(RATIONAL, tracer=tracer)
        assert report.fatal
        payload = obs.chrome_trace(tracer)
        assert obs.validate_chrome_trace(payload) is None
        names = [e["name"] for e in payload["traceEvents"] if e["ph"] == "X"]
        assert "lex" in names and "parse" in names

    def test_corrupt_fault_closes_spans(self):
        tracer = obs.Tracer()
        with inject(FaultPlan((Fault("prove", "corrupt"),))):
            report = check_program_resilient(RATIONAL, tracer=tracer)
        assert report.verdicts[0].status is ImplStatus.INTERNAL_ERROR
        assert all(span.closed for span in tracer.spans)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------


@pytest.fixture
def write_source(tmp_path):
    def writer(name, text):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return writer


class TestCli:
    def test_trace_flag_writes_valid_chrome_trace(
        self, write_source, tmp_path, capsys
    ):
        source = write_source("good.oolong", RATIONAL)
        out = str(tmp_path / "out.json")
        assert main([source, "--trace", out]) == 0
        with open(out) as handle:
            payload = json.load(handle)
        assert obs.validate_chrome_trace(payload) is None
        cats = {e.get("cat") for e in payload["traceEvents"]}
        assert {"stage", "implementation", "vc"} <= cats

    def test_trace_written_even_on_syntax_error(
        self, write_source, tmp_path, capsys
    ):
        source = write_source("bad.oolong", "group group group")
        out = str(tmp_path / "out.json")
        assert main([source, "--trace", out]) == 2
        with open(out) as handle:
            payload = json.load(handle)
        assert obs.validate_chrome_trace(payload) is None

    def test_metrics_flag_writes_registry(self, write_source, tmp_path, capsys):
        source = write_source("good.oolong", RATIONAL)
        out = str(tmp_path / "metrics.json")
        assert main([source, "--metrics", out]) == 0
        with open(out) as handle:
            payload = json.load(handle)
        assert payload["counters"]["prover.checks"] == 1

    def test_profile_flag_prints_report(self, write_source, capsys):
        source = write_source("good.oolong", RATIONAL)
        assert main([source, "--profile"]) == 0
        text = capsys.readouterr().out
        assert "== profile ==" in text and "slowest VCs" in text

    def test_stats_flag_prints_per_quantifier(self, write_source, capsys):
        source = write_source("good.oolong", RATIONAL)
        assert main([source, "--stats"]) == 0
        assert "per-quantifier:" in capsys.readouterr().out

    def test_json_format_carries_stats_and_metrics(
        self, write_source, tmp_path, capsys
    ):
        source = write_source("good.oolong", RATIONAL)
        out = str(tmp_path / "out.json")
        assert main([source, "--format", "json", "--trace", out]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdicts"][0]["stats"]["instantiations"] >= 1
        assert payload["metrics"]["counters"]["prover.checks"] == 1

    def test_no_flags_means_no_tracer(self, write_source, capsys):
        source = write_source("good.oolong", RATIONAL)
        assert main([source]) == 0
        assert obs.current() is None
