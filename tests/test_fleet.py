"""Distributed fleet checking: determinism, leases, faults, degradation.

Mirrors :mod:`tests.test_parallel` one transport up:

* **Differential** — the fleet backend's report is byte-identical to the
  serial driver's (modulo wall-clock fields) for every example program,
  and invisible to worker count.
* **Lease supervision** — a killed worker's lease is reclaimed and the
  job retried; exhausted retries quarantine exactly that job (``OL902``);
  a hung worker's lease expires and the job is reassigned; a hard job
  timeout reports ``OL901``.
* **Fuzzed fault matrix** — seeded plans over the supervisor *and* fleet
  stages (frame drop/delay/corruption, partitions, churn; CI sweeps
  ``FAULT_SEED_OFFSET``) never change final verdicts.
* **Degradation** — an unreachable fleet, and a fleet that collapses
  mid-run, both finish the run locally with an ``OL904`` warning and
  serial-identical verdicts. A SIGKILLed coordinator leaves no orphans.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.api import check_program_resilient
from repro.corpus.generators import generate_impl_farm
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.parallel import FleetOptions, run_fleet_checks
from repro.prover.core import Limits
from repro.testing.faults import (
    FLEET_STAGES,
    SUPERVISOR_STAGES,
    Fault,
    FaultPlan,
    inject,
)
from repro.vcgen.checker import ImplStatus, check_scope

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
LIMITS = Limits(time_budget=60.0)

SEED_OFFSET = int(os.environ.get("FAULT_SEED_OFFSET", "0"))
SEEDS = range(SEED_OFFSET, SEED_OFFSET + 8)


def _example_paths():
    paths = []
    for subdir in ("", "failing"):
        directory = os.path.join(EXAMPLES_DIR, subdir)
        for name in sorted(os.listdir(directory)):
            if name.endswith(".oolong"):
                paths.append(os.path.join(directory, name))
    assert paths
    return paths


def _strip_timing(value):
    if isinstance(value, dict):
        return {
            key: _strip_timing(item)
            for key, item in value.items()
            if key != "elapsed"
        }
    if isinstance(value, list):
        return [_strip_timing(item) for item in value]
    return value


def _canonical(report) -> str:
    return json.dumps(_strip_timing(report.to_dict()), sort_keys=True)


def _farm_scope(impls=4, fields=4):
    scope = Scope.from_source(generate_impl_farm(impls, fields))
    check_well_formed(scope)
    return scope


def _fast(**overrides) -> FleetOptions:
    """Tight-but-tolerant coordination for tests: quick lease policing
    and cheap backoff, with enough retry budget that a loaded CI runner
    briefly starving a renewal thread cannot push a job into quarantine.
    """
    defaults = dict(
        workers=2,
        lease_duration=2.0,
        renew_interval=0.1,
        backoff_base=0.01,
        poll_interval=0.02,
        registration_wait=30.0,
        max_retries=4,
    )
    defaults.update(overrides)
    return FleetOptions(**defaults)


class TestDifferential:
    @pytest.mark.parametrize(
        "path", _example_paths(), ids=lambda p: os.path.basename(p)
    )
    def test_fleet_report_matches_serial(self, path):
        with open(path) as handle:
            source = handle.read()
        serial = check_program_resilient(source, LIMITS, filename=path)
        fleet = check_program_resilient(
            source, LIMITS, filename=path, fleet=_fast()
        )
        assert _canonical(fleet) == _canonical(serial)

    def test_worker_count_is_invisible(self):
        scope = _farm_scope(5, 4)
        reports = [
            check_scope(scope, LIMITS, fleet=_fast(workers=jobs))
            for jobs in (1, 3)
        ]
        assert _canonical(reports[0]) == _canonical(reports[1])

    def test_fleet_matches_pipe_parallel(self):
        scope = _farm_scope(5, 4)
        pipe = check_scope(scope, LIMITS, parallel=2)
        fleet = check_scope(scope, LIMITS, fleet=_fast())
        assert _canonical(fleet) == _canonical(pipe)


class TestLeases:
    def test_killed_worker_lease_reclaimed_and_verifies(self):
        scope = _farm_scope()
        plan = FaultPlan((Fault("worker-kill", "raise", hit=1),))
        with inject(plan) as injector:
            outcome = run_fleet_checks(scope, LIMITS, options=_fast())
        assert outcome.degraded is None
        assert all(
            job.verdict.status is ImplStatus.VERIFIED for job in outcome.jobs
        )
        assert ("worker-kill", 1, "raise") in injector.fired
        assert outcome.jobs[1].attempts >= 1
        assert outcome.jobs[1].death_reasons
        assert outcome.summary["fleet.requeues"] >= 1

    def test_exhausted_retries_quarantine_only_that_job(self):
        scope = _farm_scope()
        serial = check_scope(scope, LIMITS)
        plan = FaultPlan((Fault("worker-kill", "raise", hit=1),))
        with inject(plan):
            outcome = run_fleet_checks(
                scope, LIMITS, options=_fast(max_retries=0)
            )
        assert len(outcome.jobs) == len(serial.verdicts)
        for index, job in enumerate(outcome.jobs):
            if index == 1:
                assert job.verdict.status is ImplStatus.INTERNAL_ERROR
                assert job.verdict.error.code == "OL902"
                assert "quarantined" in job.verdict.error.message
            else:
                assert job.verdict.status is serial.verdicts[index].status
        assert outcome.summary["fleet.quarantines"] == 1

    def test_hung_worker_lease_expires_and_is_reassigned(self):
        scope = _farm_scope()
        plan = FaultPlan((Fault("worker-hang", "raise", hit=0),))
        with inject(plan):
            outcome = run_fleet_checks(
                scope, LIMITS, options=_fast(lease_duration=0.4)
            )
        assert outcome.degraded is None
        assert all(
            job.verdict.status is ImplStatus.VERIFIED for job in outcome.jobs
        )
        hung = outcome.jobs[0]
        assert any("lease expired" in reason for reason in hung.death_reasons)
        assert outcome.summary["fleet.lease_expiries"] >= 1

    def test_hard_timeout_reports_ol901(self):
        scope = _farm_scope()
        # A hung worker with a *generous* lease clock: the hard job
        # deadline must fire first and classify the job as TIMED_OUT (a
        # slow-but-alive job), not as a lease failure.
        plan = FaultPlan((Fault("worker-hang", "raise", hit=0),))
        with inject(plan):
            outcome = run_fleet_checks(
                scope,
                LIMITS,
                options=_fast(job_timeout=0.4, lease_duration=30.0),
            )
        timed_out = outcome.jobs[0]
        assert timed_out.verdict.status is ImplStatus.TIMED_OUT
        assert timed_out.verdict.error.code == "OL901"
        assert "hard job timeout" in timed_out.verdict.error.message
        for job in outcome.jobs[1:]:
            assert job.verdict.status is ImplStatus.VERIFIED

    def test_counters_cover_the_lease_lifecycle(self):
        scope = _farm_scope()
        outcome = run_fleet_checks(scope, LIMITS, options=_fast())
        summary = outcome.summary
        assert summary["fleet.registrations"] >= 1
        assert summary["fleet.steals"] >= len(outcome.jobs)
        assert summary["fleet.leases"] == len(outcome.jobs)
        assert summary["fleet.requeues"] == 0
        assert summary["fleet.quarantines"] == 0


class TestFleetFaults:
    def test_partition_mid_job_is_absorbed(self):
        scope = _farm_scope()
        serial = check_scope(scope, LIMITS)
        plan = FaultPlan((Fault("partition-worker", "raise", hit=0),))
        with inject(plan) as injector:
            report = check_scope(scope, LIMITS, fleet=_fast())
        assert [v.status for v in report.verdicts] == [
            v.status for v in serial.verdicts
        ]
        assert any(stage == "partition-worker" for stage, _, _ in injector.fired)

    def test_corrupt_lease_frame_is_absorbed(self):
        scope = _farm_scope()
        serial = check_scope(scope, LIMITS)
        plan = FaultPlan((Fault("corrupt-frame", "corrupt", hit=2),))
        with inject(plan) as injector:
            report = check_scope(scope, LIMITS, fleet=_fast())
        assert [v.status for v in report.verdicts] == [
            v.status for v in serial.verdicts
        ]
        assert ("corrupt-frame", 2, "corrupt") in injector.fired

    def test_worker_churn_is_absorbed(self):
        scope = _farm_scope()
        serial = check_scope(scope, LIMITS)
        plan = FaultPlan((Fault("worker-churn", "raise", hit=0),))
        with inject(plan) as injector:
            report = check_scope(scope, LIMITS, fleet=_fast())
        assert [v.status for v in report.verdicts] == [
            v.status for v in serial.verdicts
        ]
        assert any(stage == "worker-churn" for stage, _, _ in injector.fired)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fuzzed_faults_never_change_verdicts(self, seed):
        scope = _farm_scope()
        serial = check_scope(scope, LIMITS)
        plan = FaultPlan.fuzz(
            seed, stages=SUPERVISOR_STAGES + FLEET_STAGES, max_hit=3
        )
        # Through check_scope, so a plan vicious enough to collapse the
        # fleet exercises the degradation path instead of failing: the
        # verdicts must be serial-identical either way.
        with inject(plan):
            report = check_scope(scope, LIMITS, fleet=_fast())
        detail = f"seed {seed}: {plan.describe()}"
        assert len(report.verdicts) == len(serial.verdicts), detail
        for verdict, baseline in zip(report.verdicts, serial.verdicts):
            assert verdict.status is baseline.status, (
                f"{detail}; {verdict.impl.name}: "
                f"{verdict.status} != {baseline.status} ({verdict.error})"
            )
            assert verdict.impl is baseline.impl


class TestDegradation:
    def test_unreachable_fleet_degrades_to_local(self):
        scope = _farm_scope()
        serial = check_scope(scope, LIMITS)
        # Bind an ephemeral port, spawn nobody, and wait almost not at
        # all: the fleet never assembles.
        report = check_scope(
            scope,
            LIMITS,
            fleet=_fast(workers=0, registration_wait=0.2),
        )
        assert report.ok == serial.ok
        assert [v.status for v in report.verdicts] == [
            v.status for v in serial.verdicts
        ]
        degraded = [d for d in report.diagnostics if d.code == "OL904"]
        assert len(degraded) == 1
        assert "degraded to local checking" in degraded[0].message
        assert report.fleet_summary is not None
        assert "degraded" in report.fleet_summary

    def test_mid_run_collapse_finishes_locally(self):
        scope = _farm_scope()
        serial = check_scope(scope, LIMITS)
        # One worker, no respawn budget: the injected kill removes the
        # fleet's only capacity, the stall clock runs out, and the
        # remaining jobs must finish on the local supervisor.
        plan = FaultPlan((Fault("worker-kill", "raise", hit=0),))
        with inject(plan):
            report = check_scope(
                scope,
                LIMITS,
                fleet=_fast(workers=1, respawn_budget=0, stall_timeout=0.3),
            )
        assert [v.status for v in report.verdicts] == [
            v.status for v in serial.verdicts
        ]
        assert any(d.code == "OL904" for d in report.diagnostics)
        assert report.fleet_summary is not None
        assert "degraded" in report.fleet_summary


def _processes_mentioning(needle: str):
    """Pids (other than ours) whose command line contains ``needle``."""
    pids = []
    if not os.path.isdir("/proc"):
        return pids
    for entry in os.listdir("/proc"):
        if not entry.isdigit() or int(entry) == os.getpid():
            continue
        try:
            with open(f"/proc/{entry}/cmdline", "rb") as handle:
                cmdline = handle.read().decode("utf-8", "replace")
        except OSError:
            continue
        if needle in cmdline:
            pids.append(int(entry))
    return pids


class TestCrashSafety:
    def test_sigkill_coordinator_leaves_no_orphans(self, tmp_path):
        source = generate_impl_farm(8, 12)
        path = tmp_path / "farm.oolong"
        path.write_text(source)
        env = dict(os.environ)
        src_dir = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath(src_dir), env.get("PYTHONPATH", "")]
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                str(path),
                "--fleet",
                "2",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        time.sleep(1.2)
        process.send_signal(signal.SIGKILL)
        process.wait()
        # SIGKILL bypasses every coordinator cleanup hook, so the fleet
        # workers must notice the orphaning themselves (the parent-pid
        # watchdog) and exit promptly.
        deadline = time.monotonic() + 10.0
        while _processes_mentioning(str(path)) and time.monotonic() < deadline:
            time.sleep(0.1)
        assert not _processes_mentioning(str(path)), "orphaned fleet workers"


class TestMetricsParity:
    """Worker metrics merged at the coordinator equal a serial run's.

    Workers run the instrumented pipeline under their own registry and
    ship ``to_dict()`` home with each result; the coordinator merges it
    exactly once per decided job (stale results from reclaimed leases
    are dropped first) and records verdict/prover accounting only on its
    own side. So every counter that is not ``fleet.*`` bookkeeping — and
    every labelled counter — must agree exactly with a serial run of the
    same scope, even when injected frame corruption forces resyncs and
    lease reclaims. Timers are excluded: their counts agree but their
    wall-clock totals cannot.
    """

    @staticmethod
    def _measured(scope, **kwargs):
        from repro import obs

        tracer = obs.Tracer()
        with obs.tracing(tracer):
            report = check_scope(scope, LIMITS, **kwargs)
        counters = {
            name: value
            for name, value in tracer.metrics.counters.items()
            if not name.startswith("fleet.")
        }
        return report, counters, tracer.metrics.labelled

    def test_fleet_metrics_match_serial(self):
        scope = _farm_scope(5, 4)
        serial_report, serial_counts, serial_labels = self._measured(scope)
        fleet_report, fleet_counts, fleet_labels = self._measured(
            scope, fleet=_fast()
        )
        assert _canonical(fleet_report) == _canonical(serial_report)
        assert fleet_counts == serial_counts
        assert fleet_labels == serial_labels

    @pytest.mark.parametrize("seed", list(SEEDS)[:4])
    def test_fleet_metrics_survive_frame_corruption(self, seed):
        scope = _farm_scope()
        _, serial_counts, serial_labels = self._measured(scope)
        plan = FaultPlan.fuzz(seed, stages=("corrupt-frame",), max_hit=3)
        with inject(plan):
            report, fleet_counts, fleet_labels = self._measured(
                scope, fleet=_fast()
            )
        detail = f"seed {seed}: {plan.describe()}"
        assert all(
            job.status is ImplStatus.VERIFIED for job in report.verdicts
        ), detail
        assert fleet_counts == serial_counts, detail
        assert fleet_labels == serial_labels, detail

    def test_timer_counts_match_serial(self):
        scope = _farm_scope()
        _, serial_counts, _ = self._measured(scope)
        from repro import obs

        tracer = obs.Tracer()
        with obs.tracing(tracer):
            check_scope(scope, LIMITS, fleet=_fast())
        timer = tracer.metrics.timers.get("prover.check_seconds")
        assert timer is not None
        assert timer.count == serial_counts["prover.checks"]
