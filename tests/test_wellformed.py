"""Unit tests for well-formedness checking (self-contained names etc.)."""

import pytest

from repro.errors import WellFormednessError
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed


def well_formed(source):
    scope = Scope.from_source(source)
    check_well_formed(scope)
    return scope


def rejected(source, fragment):
    scope = Scope.from_source(source)
    with pytest.raises(WellFormednessError) as excinfo:
        check_well_formed(scope)
    assert fragment in str(excinfo.value)


class TestDeclarationRules:
    def test_minimal_program_accepted(self):
        well_formed("group g\nproc p(t) modifies t.g\nimpl p(t) { skip }")

    def test_group_in_undeclared_group(self):
        rejected("group g in missing", "not a declared group")

    def test_group_in_field_rejected(self):
        rejected("field f\ngroup g in f", "not a declared group")

    def test_field_in_undeclared_group(self):
        rejected("field f in missing", "not a declared group")

    def test_maps_undeclared_attribute(self):
        rejected("group g\nfield f maps missing into g", "maps undeclared attribute")

    def test_maps_into_undeclared_group(self):
        rejected("field x\nfield f maps x into missing", "not a declared group")

    def test_maps_into_field_rejected(self):
        rejected("field x\nfield y\nfield f maps x into y", "not a declared group")

    def test_cyclic_groups_rejected(self):
        rejected("group a in b\ngroup b in a", "cyclic group inclusion")

    def test_self_cycle_rejected(self):
        rejected("group a in a", "cyclic group inclusion")

    def test_long_cycle_rejected(self):
        rejected(
            "group a in b\ngroup b in c\ngroup c in a", "cyclic group inclusion"
        )

    def test_dag_accepted(self):
        well_formed("group top\ngroup l in top\ngroup r in top\ngroup b in l, r")

    def test_cyclic_rep_inclusion_accepted(self):
        # Only local inclusions must be acyclic; g —next→ g is the paper's
        # linked-list example.
        well_formed("group g\nfield next maps g into g")


class TestProcRules:
    def test_duplicate_parameter(self):
        rejected("group g\nproc p(t, t) modifies t.g", "repeats a parameter")

    def test_modifies_root_must_be_formal(self):
        rejected("group g\nproc p(t) modifies u.g", "not rooted at a formal")

    def test_modifies_path_must_be_fields(self):
        rejected(
            "group g\ngroup h\nproc p(t) modifies t.h.g",
            "not a declared field",
        )

    def test_modifies_attr_must_be_declared(self):
        rejected("proc p(t) modifies t.mystery", "not a declared attribute")

    def test_modifies_attr_may_be_field(self):
        well_formed("field obj\nproc m(st, r) modifies r.obj")

    def test_modifies_deep_path(self):
        well_formed("group g\nfield c\nfield d\nproc p(t) modifies t.c.d.g")


class TestImplRules:
    def test_impl_of_undeclared_proc(self):
        rejected("impl p(t) { skip }", "undeclared procedure")

    def test_impl_params_must_match(self):
        rejected(
            "group g\nproc p(t) modifies t.g\nimpl p(u) { skip }",
            "must repeat the parameter list",
        )

    def test_unbound_variable(self):
        rejected("proc p(t)\nimpl p(t) { x := 1 }", "unbound variable")

    def test_var_binds(self):
        well_formed("proc p(t)\nimpl p(t) { var x in x := 1 end }")

    def test_var_shadowing_formal_rejected(self):
        rejected("proc p(t)\nimpl p(t) { var t in skip end }", "shadows")

    def test_var_shadowing_var_rejected(self):
        rejected(
            "proc p(t)\nimpl p(t) { var x in var x in skip end end }", "shadows"
        )

    def test_assignment_to_formal_rejected(self):
        rejected("proc p(t)\nimpl p(t) { t := null }", "formal parameter")

    def test_group_in_command_rejected(self):
        rejected(
            "group g\nproc p(t) modifies t.g\nimpl p(t) { assert t.g = null }",
            "data group",
        )

    def test_undeclared_field_in_command(self):
        rejected("proc p(t)\nimpl p(t) { assert t.f = null }", "undeclared field")

    def test_call_undeclared_proc(self):
        rejected("proc p(t)\nimpl p(t) { q(t) }", "undeclared procedure")

    def test_call_wrong_arity(self):
        rejected(
            "proc p(t)\nproc q(a, b)\nimpl p(t) { q(t) }", "passes 1 arguments"
        )

    def test_call_correct_arity(self):
        well_formed("proc p(t)\nproc q(a, b)\nimpl p(t) { q(t, t) }")

    def test_field_write_checked(self):
        rejected("proc p(t)\nimpl p(t) { t.f := 1 }", "undeclared field")

    def test_field_access_in_args_checked(self):
        rejected("proc p(t)\nproc q(a)\nimpl p(t) { q(t.f) }", "undeclared field")


class TestPaperPrograms:
    def test_section_3_stack_client(self):
        well_formed(
            """
            group contents
            field cnt
            field obj
            proc push(st, o) modifies st.contents
            proc m(st, r) modifies r.obj
            proc q()
            impl q() {
              var st in var result in var v in var n in
                st := new() ; result := new() ;
                m(st, result) ;
                v := result.obj ;
                n := v.cnt ;
                push(st, 3) ;
                assert n = v.cnt
              end end end end
            }
            """
        )

    def test_section_5_first_example(self):
        well_formed(
            """
            field c
            field d
            field f
            group g
            proc p(t) modifies t.c.d.g
            proc q(u) modifies u.g
            impl p(t) {
              assume t != null ;
              var y in
                y := t.f ;
                q(t.c.d) ;
                assert y = t.f
              end
            }
            """
        )

    def test_section_5_linked_list(self):
        well_formed(
            """
            group g
            field value in g
            field next maps g into g
            proc updateAll(t) modifies t.g
            impl updateAll(t) {
              assume t != null ;
              t.value := t.value + 1 ;
              ( assume t.next = null
                []
                assume t.next != null ; updateAll(t.next) )
            }
            """
        )
