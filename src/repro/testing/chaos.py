"""The coordinator-kill chaos harness.

:mod:`repro.testing.faults` can crash a *worker* (SUPERVISOR_STAGES) or
sever a *connection* (FLEET_STAGES); this module drives faults against
the one process those harnesses cannot touch from inside — the
coordinator itself. A ``kill-coordinator`` fault calls ``os._exit`` in
the middle of the run, so it can only be observed from *outside*: the
harness runs ``oolong check --run-dir DIR`` as a subprocess, lets the
planned fault kill it, then re-runs with ``--resume`` and compares the
resumed report against an uninterrupted baseline byte for byte.

The subprocess boundary is crossed with the ``OOLONG_CHAOS`` environment
variable: a comma-separated list of ``stage@hit`` items (e.g.
``kill-coordinator@2,truncate-ledger-tail@0``), parsed by
:func:`plan_from_env` and installed by ``repro.cli.check_main`` around
the check — the same :func:`repro.testing.faults.inject` mechanism the
seeded in-process harnesses use, so ``stage`` must name a
:data:`~repro.testing.faults.COORDINATOR_STAGES` kind (or any other
registered stage) and ``hit`` is its deterministic ordinal.
"""

from __future__ import annotations

import os
import subprocess
import sys
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.testing.faults import (
    COORDINATOR_STAGES,
    Fault,
    FaultPlan,
)

__all__ = [
    "COORDINATOR_STAGES",
    "CHAOS_ENV",
    "parse_chaos_spec",
    "plan_from_env",
    "run_cli",
]

#: The environment variable carrying a chaos spec across an exec.
CHAOS_ENV = "OOLONG_CHAOS"


def parse_chaos_spec(spec: str) -> FaultPlan:
    """Parse ``stage@hit,stage@hit,...`` into a :class:`FaultPlan`.

    ``hit`` defaults to 0 when omitted. Raises ``ValueError`` on an
    unknown stage or a malformed item — a typo'd chaos spec must fail
    the run loudly, not silently test nothing.
    """
    faults: List[Fault] = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        stage, _, hit_text = item.partition("@")
        try:
            hit = int(hit_text) if hit_text else 0
        except ValueError:
            raise ValueError(f"bad chaos item {item!r}: hit must be an int")
        # The coordinator stages model crashes/corruption, not the
        # raise/delay/corrupt vocabulary; "raise" is the closest action
        # label and is what the injector log records for them.
        faults.append(Fault(stage=stage, action="raise", hit=hit))
    if not faults:
        raise ValueError(f"empty chaos spec {spec!r}")
    return FaultPlan(tuple(faults))


def plan_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[FaultPlan]:
    """The :data:`CHAOS_ENV` plan, or None when the variable is unset."""
    env = os.environ if environ is None else environ
    spec = env.get(CHAOS_ENV)
    if not spec:
        return None
    return parse_chaos_spec(spec)


def run_cli(
    args: Sequence[str],
    *,
    chaos: Optional[str] = None,
    cwd: Optional[str] = None,
    timeout: float = 120.0,
) -> Tuple[int, str, str]:
    """Run ``oolong-check`` as a subprocess; ``(exit, stdout, stderr)``.

    ``chaos`` is a spec for :data:`CHAOS_ENV` (installed only for this
    invocation). The child inherits this interpreter and a PYTHONPATH
    that can import :mod:`repro`, so the harness works from a source
    checkout without installation.
    """
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    )
    parts = [src] + env.get("PYTHONPATH", "").split(os.pathsep)
    env["PYTHONPATH"] = os.pathsep.join(p for p in parts if p)
    if chaos is not None:
        env[CHAOS_ENV] = chaos
    else:
        env.pop(CHAOS_ENV, None)
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=timeout,
    )
    return completed.returncode, completed.stdout, completed.stderr
