"""Test-support infrastructure shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
used by the resilience test suite and the CI ``fault-injection`` job. It
lives under ``src`` (rather than ``tests/``) because the pipeline modules
carry its injection points; importing it must never pull in test-only
dependencies. :mod:`repro.testing.chaos` layers the coordinator-kill
harness on top: it crosses the process boundary (``OOLONG_CHAOS``)
because a killed coordinator can only be observed from outside.
"""

from repro.testing.chaos import (
    CHAOS_ENV,
    parse_chaos_spec,
    plan_from_env,
    run_cli,
)
from repro.testing.faults import (
    ACTIONS,
    COORDINATOR_STAGES,
    FLEET_STAGES,
    STAGES,
    SUPERVISOR_STAGES,
    Corrupted,
    Fault,
    FaultError,
    FaultPlan,
    fault_point,
    inject,
)

__all__ = [
    "ACTIONS",
    "CHAOS_ENV",
    "COORDINATOR_STAGES",
    "FLEET_STAGES",
    "STAGES",
    "SUPERVISOR_STAGES",
    "Corrupted",
    "Fault",
    "FaultError",
    "FaultPlan",
    "fault_point",
    "inject",
    "parse_chaos_spec",
    "plan_from_env",
    "run_cli",
]
