"""Test-support infrastructure shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
used by the resilience test suite and the CI ``fault-injection`` job. It
lives under ``src`` (rather than ``tests/``) because the pipeline modules
carry its injection points; importing it must never pull in test-only
dependencies.
"""

from repro.testing.faults import (
    ACTIONS,
    STAGES,
    Corrupted,
    Fault,
    FaultError,
    FaultPlan,
    fault_point,
    inject,
)

__all__ = [
    "ACTIONS",
    "STAGES",
    "Corrupted",
    "Fault",
    "FaultError",
    "FaultPlan",
    "fault_point",
    "inject",
]
