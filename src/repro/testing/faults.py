"""Deterministic fault injection for the checking pipeline.

Every stage boundary of the pipeline carries a named *injection point*:

========  ======================================================
stage     boundary
========  ======================================================
lex       :func:`repro.oolong.lexer.tokenize`
parse     :func:`repro.oolong.parser.parse_program_text` (both modes)
wellformed :func:`repro.oolong.wellformed.check_well_formed`
pivot     :func:`repro.restrictions.pivot.check_pivot_uniqueness`
lint      :func:`repro.analysis.engine.lint_scope`
vcgen     :func:`repro.vcgen.vc.vc_for_impl`
prove     :meth:`repro.vcgen.vc.VCBundle.prove`
========  ======================================================

With no plan active, :func:`fault_point` is a single global-``None``
check — cheap enough to stay in production code paths (the
``benchmarks/bench_resilience.py`` benchmark bounds the clean-path
overhead below 1%).

Under an active :class:`FaultPlan` (installed with :func:`inject`), the
n-th call to a stage can

* ``raise`` a :class:`FaultError` (modelling a crash — deliberately *not*
  a :class:`repro.errors.ReproError`, so it exercises the unexpected-
  exception paths, not the expected-diagnosis ones);
* ``delay`` by a fixed number of seconds (modelling a hang, bounded so
  the scope deadline's cooperative checking remains testable);
* ``corrupt`` the stage's return value, replacing it with a
  :class:`Corrupted` poison object whose every use raises (modelling a
  stage that returns garbage).

Plans are either built explicitly or fuzzed from a seed with
:meth:`FaultPlan.fuzz`; the same seed always yields the same plan, so CI
can sweep a fixed seed matrix and any failure reproduces locally.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import sleep
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

# Injection points are the pipeline's canonical stage names — the same
# vocabulary the tracer spans use, so traces and injected faults line up
# (re-exported here; the single definition lives in repro.obs.stages).
from repro.obs.stages import STAGES

#: Every fault action a plan may request.
ACTIONS: Tuple[str, ...] = ("raise", "delay", "corrupt")

#: Fault kinds interpreted by the *parallel supervisor*
#: (:mod:`repro.parallel.supervisor`) rather than by an in-process
#: ``fault_point`` call. For these the ``hit`` index is the **job
#: index** (the deterministic scheduling order of per-implementation
#: proof jobs), not a per-stage call counter — so a plan names "kill the
#: worker running job #2" independently of how jobs land on workers:
#:
#: * ``worker-kill`` — the worker assigned the job dies with
#:   ``os._exit`` before proving (first attempt only, so retries can be
#:   observed to succeed);
#: * ``worker-hang`` — the worker freezes *uncooperatively*: its
#:   heartbeat thread stops and the job never returns (first attempt
#:   only), exercising lost-heartbeat detection and the hard kill;
#: * ``cache-corrupt`` — the result-cache entry published for the job is
#:   overwritten with garbage bytes after the store, exercising checksum
#:   rejection on the next run.
#:
#: They are kept out of :data:`STAGES` so existing seeded fuzz plans are
#: unchanged; sweep them explicitly via ``FaultPlan.fuzz(seed,
#: stages=SUPERVISOR_STAGES)``.
SUPERVISOR_STAGES: Tuple[str, ...] = (
    "worker-kill",
    "worker-hang",
    "cache-corrupt",
)

#: Fault kinds interpreted by the *distributed* backends
#: (:mod:`repro.parallel.fleet`, :mod:`repro.parallel.transport`,
#: :mod:`repro.parallel.cacheserver`). As with the supervisor stages the
#: ``hit`` index names a deterministic ordinal, but which ordinal depends
#: on the stage:
#:
#: * ``drop-frame`` / ``delay-frame`` / ``corrupt-frame`` — the ``hit``-th
#:   frame the coordinator *sends* (a global outbound-frame ordinal) is
#:   dropped before the write, delayed by ``fault.delay``, or has its
#:   payload bytes flipped after the header is written — so the frame
#:   stays aligned on the wire and the receiver's checksum must reject
#:   it;
#: * ``partition-worker`` — the ``hit``-th worker to *register* is
#:   partitioned: the next message it sends while holding a lease is
#:   discarded and its connection severed, forcing lease reclamation (the
#:   worker may reconnect and registers as a fresh ordinal);
#: * ``worker-churn`` — the ``hit``-th worker to register is shut down
#:   right after its first completed job, exercising deregistration and
#:   requeue-free capacity loss;
#: * ``evict-under-read`` — the cache server deletes the entry behind its
#:   ``hit``-th *served* GET (misses do not count) after loading it,
#:   modelling an eviction racing a reader (the client must recompute,
#:   never crash).
#:
#: Like :data:`SUPERVISOR_STAGES` they stay out of :data:`STAGES` so the
#: existing seeded fuzz windows are unchanged; sweep them with
#: ``FaultPlan.fuzz(seed, stages=FLEET_STAGES)``.
FLEET_STAGES: Tuple[str, ...] = (
    "drop-frame",
    "delay-frame",
    "corrupt-frame",
    "partition-worker",
    "evict-under-read",
    "worker-churn",
)

#: Fault kinds interpreted by the *coordinator process itself* — the run
#: ledger (:mod:`repro.parallel.ledger`) and the report merge in
#: :mod:`repro.vcgen.checker`. They model the coordinator dying or its
#: write-ahead ledger being damaged, and drive the ``--resume``
#: differential tests in ``tests/test_chaos.py``:
#:
#: * ``kill-coordinator`` — the coordinator exits with ``os._exit(137)``
#:   (modelling SIGKILL: no atexit hooks, no flush; only fsync'd ledger
#:   records survive) immediately after the ``hit``-th ledger commit;
#: * ``kill-during-merge`` — the coordinator exits with ``os._exit(137)``
#:   at the ``hit``-th merge of a finished job into the report —
#:   *after* the verdict was committed but before it was reported;
#: * ``truncate-ledger-tail`` — after the ``hit``-th commit the ledger's
#:   trailing bytes are chopped mid-record, modelling a torn write the
#:   resume reader must skip (OL905), not crash on;
#: * ``duplicate-commit`` — the ``hit``-th ledger record is appended
#:   twice, exercising the reader's dedupe (no impl re-reported, no
#:   impl re-proved).
#:
#: As with the other out-of-process stages the ``hit`` index is a
#: deterministic ordinal (the commit/merge sequence number), and the
#: stages stay out of :data:`STAGES` so existing seeded fuzz plans are
#: unchanged; sweep them with ``FaultPlan.fuzz(seed,
#: stages=COORDINATOR_STAGES)``.
COORDINATOR_STAGES: Tuple[str, ...] = (
    "kill-coordinator",
    "kill-during-merge",
    "truncate-ledger-tail",
    "duplicate-commit",
)


class FaultError(RuntimeError):
    """The exception injected by ``raise`` faults (and raised by poison
    values). Intentionally outside the ``ReproError`` hierarchy: it
    models an internal crash, not a user-facing diagnosis."""


class Corrupted:
    """An opaque poison value: any attribute access or truth test raises.

    Returned by ``corrupt`` faults in place of a stage's real result, so
    whatever the next stage does with it blows up with a
    :class:`FaultError` — exercising the driver's isolation layer.
    """

    def __init__(self, origin: str = "?"):
        object.__setattr__(self, "_origin", origin)

    def __getattr__(self, name: str):
        raise FaultError(
            f"use of corrupted {object.__getattribute__(self, '_origin')} "
            f"value (attribute {name!r})"
        )

    def __bool__(self) -> bool:
        raise FaultError(
            f"truth test on corrupted "
            f"{object.__getattribute__(self, '_origin')} value"
        )

    def __repr__(self) -> str:
        return f"<Corrupted from {object.__getattribute__(self, '_origin')}>"


@dataclass(frozen=True)
class Fault:
    """One planned fault: act on the ``hit``-th call to ``stage``."""

    stage: str
    action: str
    hit: int = 0
    delay: float = 0.0

    def __post_init__(self):
        known = (
            STAGES + SUPERVISOR_STAGES + FLEET_STAGES + COORDINATOR_STAGES
        )
        if self.stage not in known:
            raise ValueError(
                f"unknown stage {self.stage!r}; known: {known}"
            )
        if self.action not in ACTIONS:
            raise ValueError(f"unknown action {self.action!r}; known: {ACTIONS}")
        if self.hit < 0:
            raise ValueError("hit index must be non-negative")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults, applied while :func:`inject` is active."""

    faults: Tuple[Fault, ...] = ()

    @classmethod
    def fuzz(
        cls,
        seed: int,
        *,
        stages: Sequence[str] = STAGES,
        max_faults: int = 3,
        max_hit: int = 2,
        max_delay: float = 0.05,
    ) -> "FaultPlan":
        """A pseudo-random plan fully determined by ``seed``.

        ``stages`` restricts which injection points may fault; ``max_hit``
        bounds the per-stage call index a fault may target; ``max_delay``
        bounds injected sleeps (keep it well under any deadline a test
        asserts, since a sleeping stage cannot observe the deadline).
        """
        rng = random.Random(seed)
        count = rng.randint(1, max(1, max_faults))
        faults: List[Fault] = []
        for _ in range(count):
            action = rng.choice(ACTIONS)
            faults.append(
                Fault(
                    stage=rng.choice(tuple(stages)),
                    action=action,
                    hit=rng.randint(0, max(0, max_hit)),
                    delay=rng.uniform(0.001, max_delay)
                    if action == "delay"
                    else 0.0,
                )
            )
        return cls(tuple(faults))

    def describe(self) -> str:
        if not self.faults:
            return "no faults"
        return ", ".join(
            f"{f.action}@{f.stage}#{f.hit}"
            + (f"({f.delay:.3f}s)" if f.action == "delay" else "")
            for f in self.faults
        )


@dataclass
class Injector:
    """Live state of an active plan: per-stage hit counters and a log."""

    plan: FaultPlan
    counts: Dict[str, int] = field(default_factory=dict)
    #: Every fault actually fired, as ``(stage, hit, action)`` triples.
    fired: List[Tuple[str, int, str]] = field(default_factory=list)

    def on_hit(self, stage: str, value):
        index = self.counts.get(stage, 0)
        self.counts[stage] = index + 1
        for fault in self.plan.faults:
            if fault.stage != stage or fault.hit != index:
                continue
            self.fired.append((stage, index, fault.action))
            if fault.action == "raise":
                raise FaultError(f"injected crash at {stage}#{index}")
            if fault.action == "delay":
                sleep(fault.delay)
            elif fault.action == "corrupt":
                value = Corrupted(f"{stage}#{index}")
        return value


#: The active injector, or None. Writes happen only inside :func:`inject`;
#: the clean path reads it once per stage boundary.
_ACTIVE: Optional[Injector] = None


def fault_point(stage: str, value=None):
    """A named injection point; returns ``value`` (possibly poisoned).

    Pipeline modules call this at their stage boundary, threading the
    stage's result through so ``corrupt`` faults can replace it. With no
    active plan this is a no-op returning ``value`` unchanged.
    """
    injector = _ACTIVE
    if injector is None:
        return value
    return injector.on_hit(stage, value)


def supervisor_fault_hits(stage: str) -> Dict[int, Fault]:
    """The active plan's faults at a supervisor stage, keyed by job index.

    Used by :mod:`repro.parallel.supervisor`: worker/cache faults are
    interpreted *in the supervisor*, not at an in-process
    :func:`fault_point`, because the action (SIGKILL a child, corrupt a
    cache file) spans process boundaries. Returns an empty mapping when
    no plan is active or the stage has no faults planned.
    """
    injector = _ACTIVE
    if injector is None:
        return {}
    return {
        fault.hit: fault
        for fault in injector.plan.faults
        if fault.stage == stage
    }


def record_supervisor_fault(stage: str, hit: int, action: str) -> None:
    """Log a supervisor-interpreted fault as fired (for test inspection).

    Mirrors what :meth:`Injector.on_hit` does for in-process faults, so
    ``injector.fired`` reflects supervisor faults too.
    """
    injector = _ACTIVE
    if injector is not None:
        injector.fired.append((stage, hit, action))


@contextmanager
def inject(plan: FaultPlan) -> Iterator[Injector]:
    """Activate ``plan`` for the duration of the ``with`` block.

    Yields the live :class:`Injector` so tests can inspect which faults
    actually fired. Nested activation is rejected: overlapping plans
    would make runs non-deterministic.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("fault injection is already active")
    injector = Injector(plan)
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None
