"""The unsound naive baseline: modular checking without alias confinement.

This is the "yes" answer of Section 3.0's dilemma made concrete: the
checker keeps the full background predicate (including the pivot
uniqueness and no-cycle axioms, whose *justification* is exactly the
restrictions it no longer enforces) but:

* skips the syntactic pivot-uniqueness pass, and
* drops owner-exclusion obligations and assumptions from the VCs.

It therefore verifies the paper's client programs *and* the alias-leaking
extensions of Sections 3.0/3.1; running the combined programs under the
interpreter then exhibits the runtime assertion failures — i.e. this
checker is modularly unsound, which is the point of the comparison.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.oolong.contracts import desugar_contracts
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits, Verdict
from repro.vcgen.checker import CheckReport, ImplStatus, ImplVerdict
from repro.vcgen.vc import vc_for_impl


def naive_check_scope(scope: Scope, limits: Optional[Limits] = None) -> CheckReport:
    """Check every implementation with restrictions disabled."""
    start = time.monotonic()
    check_well_formed(scope)
    scope = desugar_contracts(scope)
    report = CheckReport()
    for impls in scope.impls.values():
        for index, impl in enumerate(impls):
            bundle = vc_for_impl(scope, impl, owner_exclusion=False)
            result = bundle.prove(limits)
            if result.verdict is Verdict.UNSAT:
                status = ImplStatus.VERIFIED
            elif result.verdict is Verdict.SAT:
                status = ImplStatus.NOT_PROVED
            else:
                status = ImplStatus.RESOURCE_OUT
            report.verdicts.append(
                ImplVerdict(impl=impl, index=index, status=status, stats=result.stats)
            )
    report.elapsed = time.monotonic() - start
    return report
