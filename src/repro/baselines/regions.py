"""The Greenhouse–Boyland abstract-regions restriction.

Their effects system is close to data groups, but "their regions ... don't
allow a field to be included in more than one region, which we view as a
severe limitation" (Section 1). This baseline implements that structural
restriction so the comparison can count the programs data groups accept
and regions reject.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SourcePosition
from repro.oolong.ast import FieldDecl, GroupDecl
from repro.oolong.program import Scope


@dataclass(frozen=True)
class RegionViolation:
    """An attribute included in more than one region."""

    attribute: str
    regions: tuple
    position: Optional[SourcePosition] = None

    def __str__(self) -> str:
        rendered = ", ".join(self.regions)
        return f"{self.attribute!r} is included in multiple regions: {rendered}"


def check_single_region(scope: Scope) -> List[RegionViolation]:
    """Report every attribute with more than one *direct* region.

    Rep inclusions are counted alongside local ones: a field mapped into
    two groups also violates the single-region discipline.
    """
    violations: List[RegionViolation] = []
    for decl in scope.decls:
        if isinstance(decl, (GroupDecl, FieldDecl)):
            regions = list(decl.in_groups)
            if isinstance(decl, FieldDecl):
                for clause in decl.maps:
                    # A maps clause nests the mapped attribute's region
                    # under each target group; multiple targets multiply
                    # the regions of the mapped attribute.
                    if len(clause.into) > 1:
                        violations.append(
                            RegionViolation(
                                f"{decl.name}.{clause.mapped}",
                                tuple(clause.into),
                                decl.position,
                            )
                        )
            if len(regions) > 1:
                violations.append(
                    RegionViolation(decl.name, tuple(regions), decl.position)
                )
    return violations
