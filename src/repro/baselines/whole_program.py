"""Whole-program side-effect inference (Jouvelot–Gifford style).

The comparison point from the paper's Related Work: instead of declared,
modularly-checked modifies lists, *infer* each procedure's write effects
from the implementations. The inference is a fixpoint over the call graph
and therefore needs every implementation — exactly the modularity cost the
paper's technique avoids — and its effects are field-*name* sets, blind to
which object is touched (object-insensitive), so frame queries are coarser
than data-group reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from repro.errors import VerificationError
from repro.oolong.ast import (
    Assign,
    AssignNew,
    Call,
    Choice,
    Cmd,
    FieldAccess,
    Seq,
    VarCmd,
)
from repro.oolong.program import Scope


@dataclass(frozen=True)
class EffectTable:
    """Per-procedure write effects (field names), plus provenance info."""

    effects: Dict[str, FrozenSet[str]]
    missing_impls: FrozenSet[str]

    def writes(self, proc_name: str) -> FrozenSet[str]:
        return self.effects.get(proc_name, frozenset())

    @property
    def whole_program(self) -> bool:
        """True iff every called procedure had an implementation."""
        return not self.missing_impls


def _direct_writes(cmd: Cmd, writes: Set[str], calls: Set[str]) -> None:
    if isinstance(cmd, (Assign, AssignNew)):
        if isinstance(cmd.target, FieldAccess):
            writes.add(cmd.target.attr)
    elif isinstance(cmd, Seq):
        _direct_writes(cmd.first, writes, calls)
        _direct_writes(cmd.second, writes, calls)
    elif isinstance(cmd, Choice):
        _direct_writes(cmd.left, writes, calls)
        _direct_writes(cmd.right, writes, calls)
    elif isinstance(cmd, VarCmd):
        _direct_writes(cmd.body, writes, calls)
    elif isinstance(cmd, Call):
        calls.add(cmd.proc)


def infer_effects(scope: Scope) -> EffectTable:
    """Fixpoint effect inference over the call graph.

    Procedures without any implementation contribute the *top* effect (all
    declared fields) — the analysis cannot see inside them, which is how
    the modularity comparison quantifies the cost of missing code.
    """
    all_fields = frozenset(scope.fields)
    direct: Dict[str, Set[str]] = {}
    callees: Dict[str, Set[str]] = {}
    missing: Set[str] = set()
    for proc_name in scope.procs:
        impls = scope.impls_of(proc_name)
        writes: Set[str] = set()
        calls: Set[str] = set()
        if not impls:
            missing.add(proc_name)
            writes = set(all_fields)
        for impl in impls:
            _direct_writes(impl.body, writes, calls)
        direct[proc_name] = writes
        callees[proc_name] = calls

    effects: Dict[str, Set[str]] = {name: set(ws) for name, ws in direct.items()}
    changed = True
    while changed:
        changed = False
        for proc_name, called in callees.items():
            for callee in called:
                before = len(effects[proc_name])
                effects[proc_name] |= effects.get(callee, set(all_fields))
                if len(effects[proc_name]) != before:
                    changed = True
    return EffectTable(
        effects={name: frozenset(ws) for name, ws in effects.items()},
        missing_impls=frozenset(missing),
    )


def frame_query(table: EffectTable, proc_name: str, field_name: str) -> bool:
    """Is ``field_name`` of *every* object preserved across a call?

    Object-insensitive: one write to ``cnt`` anywhere makes every ``x.cnt``
    unpreserved — the precision gap against data groups, which distinguish
    the objects a licence reaches.
    """
    return field_name not in table.writes(proc_name)
