"""Baseline analyses the paper compares against (Section 1, Related Work).

* :mod:`repro.baselines.naive_modular` — modular checking *without* the
  two alias-confining restrictions: the "yes" horn of Section 3's dilemma.
  It verifies the paper's motivating programs but also accepts the alias
  leaks, and the interpreter exhibits the resulting runtime failures —
  modular soundness is lost.
* :mod:`repro.baselines.whole_program` — Jouvelot–Gifford-style effect
  inference: computes per-procedure write effects from implementations,
  needs the whole program, and answers frame queries at field-name
  granularity (object-insensitive, hence coarser than data groups).
* :mod:`repro.baselines.regions` — the Greenhouse–Boyland abstract-regions
  restriction: a field may be included in at most one region. A structural
  checker that rejects the multi-group programs data groups support.
"""

from repro.baselines.naive_modular import naive_check_scope
from repro.baselines.regions import RegionViolation, check_single_region
from repro.baselines.whole_program import (
    EffectTable,
    frame_query,
    infer_effects,
)

__all__ = [
    "EffectTable",
    "RegionViolation",
    "check_single_region",
    "frame_query",
    "infer_effects",
    "naive_check_scope",
]
