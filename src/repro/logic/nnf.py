"""Negation normal form, ordered negation, and skolemization.

``to_nnf`` eliminates :class:`Implies`/:class:`Iff` and pushes negation down
to atoms. ``negate`` offers the *ordered* negation of conjunctions used when
refuting verification conditions::

    !(A & B & C)  ~~>  !A  |  (A & !B)  |  (A & B & !C)

which lets the refutation of a later proof obligation assume the earlier
ones — exactly how the paper's hand proofs use the owner-exclusion check of
one call while discharging a later assert.

``skolemize`` removes existential quantifiers from an NNF formula by
introducing skolem constants/functions over the enclosing universals.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.logic.subst import subst_formula
from repro.logic.terms import (
    And,
    App,
    Const,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    OBLIGATION_MARKER,
    Or,
    Pred,
    Term,
    TrueF,
    Var,
    conj,
    disj,
)


def _is_marker(formula: Formula) -> bool:
    return isinstance(formula, Pred) and formula.name == OBLIGATION_MARKER


class FreshNames:
    """A deterministic fresh-name supply, one counter per prefix."""

    def __init__(self):
        self._counters: Dict[str, int] = {}

    def fresh(self, prefix: str) -> str:
        count = self._counters.get(prefix, 0) + 1
        self._counters[prefix] = count
        return f"{prefix}!{count}"


def to_nnf(formula: Formula, *, ordered: bool = False) -> Formula:
    """Convert to negation normal form (negations only on atoms).

    With ``ordered=True``, negated conjunctions expand to the ordered form
    documented in the module docstring instead of the plain De Morgan dual.
    """
    return _nnf(formula, positive=True, ordered=ordered)


def negate(formula: Formula, *, ordered: bool = True) -> Formula:
    """The NNF of ``!formula`` (ordered conjunction negation by default)."""
    return _nnf(formula, positive=False, ordered=ordered)


def _nnf(formula: Formula, positive: bool, ordered: bool) -> Formula:
    if isinstance(formula, TrueF):
        return TrueF() if positive else FalseF()
    if isinstance(formula, FalseF):
        return FalseF() if positive else TrueF()
    if isinstance(formula, (Eq, Pred)):
        return formula if positive else Not(formula)
    if isinstance(formula, Not):
        return _nnf(formula.body, not positive, ordered)
    if isinstance(formula, And):
        if positive:
            return conj(_nnf(c, True, ordered) for c in formula.conjuncts)
        return _negate_and(formula.conjuncts, ordered)
    if isinstance(formula, Or):
        if positive:
            return disj(_nnf(d, True, ordered) for d in formula.disjuncts)
        return conj(_nnf(d, False, ordered) for d in formula.disjuncts)
    if isinstance(formula, Implies):
        if positive:
            return disj(
                (
                    _nnf(formula.antecedent, False, ordered),
                    _nnf(formula.consequent, True, ordered),
                )
            )
        # !(A ==> B) = A & !B — already "ordered": B's refutation assumes A.
        return conj(
            (
                _nnf(formula.antecedent, True, ordered),
                _nnf(formula.consequent, False, ordered),
            )
        )
    if isinstance(formula, Iff):
        left_pos = _nnf(formula.left, True, ordered)
        left_neg = _nnf(formula.left, False, ordered)
        right_pos = _nnf(formula.right, True, ordered)
        right_neg = _nnf(formula.right, False, ordered)
        if positive:
            return disj((conj((left_pos, right_pos)), conj((left_neg, right_neg))))
        return disj((conj((left_pos, right_neg)), conj((left_neg, right_pos))))
    if isinstance(formula, Forall):
        if positive:
            return Forall(
                formula.vars,
                _nnf(formula.body, True, ordered),
                formula.triggers,
                formula.name,
                formula.width_cap,
            )
        return Exists(formula.vars, _nnf(formula.body, False, ordered))
    if isinstance(formula, Exists):
        if positive:
            return Exists(formula.vars, _nnf(formula.body, True, ordered))
        return Forall(formula.vars, _nnf(formula.body, False, ordered))
    raise TypeError(f"not a formula: {formula!r}")


def _negate_and(conjuncts: Tuple[Formula, ...], ordered: bool) -> Formula:
    """Negate a conjunction; obligation markers are never refuted.

    Markers are inert atoms occurring only positively, so a goal containing
    them is valid iff the marker-free goal is; skipping their refutation
    branches keeps that equivalence while letting the markers ride along in
    the ordered prefixes for diagnosis.
    """
    if not ordered:
        return disj(
            _nnf(c, False, ordered) for c in conjuncts if not _is_marker(c)
        )
    branches: List[Formula] = []
    for index, conjunct in enumerate(conjuncts):
        if _is_marker(conjunct):
            continue
        assumed = [_nnf(c, True, ordered) for c in conjuncts[:index]]
        branches.append(conj(assumed + [_nnf(conjunct, False, ordered)]))
    return disj(branches)


def skolemize(formula: Formula, fresh: FreshNames, prefix: str = "sk") -> Formula:
    """Eliminate Exists from an NNF formula.

    Each existential variable becomes a fresh constant, or a fresh function
    applied to the universally bound variables in whose scope it sits.
    """
    return _skolemize(formula, fresh, prefix, ())


def _skolemize(
    formula: Formula,
    fresh: FreshNames,
    prefix: str,
    universals: Tuple[str, ...],
) -> Formula:
    if isinstance(formula, (TrueF, FalseF, Eq, Pred)):
        return formula
    if isinstance(formula, Not):
        return formula  # NNF: the body is an atom
    if isinstance(formula, And):
        return And(
            tuple(_skolemize(c, fresh, prefix, universals) for c in formula.conjuncts)
        )
    if isinstance(formula, Or):
        return Or(
            tuple(_skolemize(d, fresh, prefix, universals) for d in formula.disjuncts)
        )
    if isinstance(formula, Forall):
        return Forall(
            formula.vars,
            _skolemize(formula.body, fresh, prefix, universals + formula.vars),
            formula.triggers,
            formula.name,
            formula.width_cap,
        )
    if isinstance(formula, Exists):
        mapping: Dict[str, Term] = {}
        for var in formula.vars:
            symbol = fresh.fresh(f"{prefix}.{var}")
            if universals:
                mapping[var] = App(symbol, tuple(Var(u) for u in universals))
            else:
                mapping[var] = Const(symbol)
        body = subst_formula(formula.body, mapping)
        return _skolemize(body, fresh, prefix, universals)
    if isinstance(formula, (Implies, Iff)):
        raise ValueError("skolemize expects an NNF formula (run to_nnf first)")
    raise TypeError(f"not a formula: {formula!r}")
