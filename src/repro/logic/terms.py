"""Term and formula ASTs for the untyped first-order logic of the paper.

Terms
-----
* :class:`Var` — a variable (free or bound by a quantifier).
* :class:`Const` — an uninterpreted constant (attribute names, ``null``,
  skolem constants, store constants like ``$0``).
* :class:`IntLit` — an integer literal; distinct literals denote distinct
  values.
* :class:`App` — a function application. Interpreted function symbols
  (``+``, ``-``, ``*``) are evaluated on literals by the prover; every other
  symbol is uninterpreted (``sel``, ``upd``, ``new``, ``succ``, skolem
  functions, ...).

Formulas
--------
Atoms are :class:`Eq` and :class:`Pred` (predicate application — ``alive``,
``inc``, ``linc``, ``rinc``, and boolean-valued operator atoms such as
``<``). Connectives: :class:`Not`, :class:`And`, :class:`Or`,
:class:`Implies`, :class:`Iff`; quantifiers :class:`Forall` (with optional
E-matching triggers) and :class:`Exists`.

A *trigger* is a tuple of term patterns (a multi-pattern); a quantifier may
carry several alternative triggers. The prover auto-derives triggers when
none are given.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Term:
    """Base class for logic terms."""


@dataclass(frozen=True)
class Var(Term):
    """A variable occurrence, referenced by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Term):
    """An uninterpreted constant symbol."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntLit(Term):
    """An integer literal; two distinct literals are provably unequal."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class App(Term):
    """An application ``fn(args...)``."""

    fn: str
    args: Tuple[Term, ...]

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.fn}({rendered})"


#: Head symbol of inert proof-obligation marker atoms. Markers appear only
#: positively in goals; the negation transform never refutes them (see
#: repro.logic.nnf), so they label refutation branches without affecting
#: validity.
OBLIGATION_MARKER = "@obligation"

#: Function symbols the prover evaluates on integer-literal arguments.
INTERPRETED_FNS = {"+", "-", "*"}

#: Predicate symbols the prover evaluates on integer-literal arguments.
INTERPRETED_PREDS = {"<", "<=", ">", ">="}


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Formula:
    """Base class for logic formulas."""


@dataclass(frozen=True)
class TrueF(Formula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseF(Formula):
    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Eq(Formula):
    """Equality between two terms."""

    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} = {self.right})"


@dataclass(frozen=True)
class Pred(Formula):
    """A predicate application ``name(args...)``."""

    name: str
    args: Tuple[Term, ...]

    def __str__(self) -> str:
        rendered = ", ".join(str(a) for a in self.args)
        return f"{self.name}({rendered})"


@dataclass(frozen=True)
class Not(Formula):
    body: Formula

    def __str__(self) -> str:
        return f"!{self.body}"


@dataclass(frozen=True)
class And(Formula):
    conjuncts: Tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " & ".join(str(c) for c in self.conjuncts) + ")"


@dataclass(frozen=True)
class Or(Formula):
    disjuncts: Tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " | ".join(str(d) for d in self.disjuncts) + ")"


@dataclass(frozen=True)
class Implies(Formula):
    antecedent: Formula
    consequent: Formula

    def __str__(self) -> str:
        return f"({self.antecedent} ==> {self.consequent})"


@dataclass(frozen=True)
class Iff(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} <=> {self.right})"


#: A multi-pattern: every pattern term must match for the trigger to fire.
MultiPattern = Tuple[Term, ...]


@dataclass(frozen=True)
class Forall(Formula):
    """Universal quantification with optional E-matching triggers.

    ``triggers`` is a tuple of alternative multi-patterns; an empty tuple
    means "let the prover derive triggers". ``width_cap`` optionally caps
    the instance width the prover will admit for this quantifier (1 makes
    it propagation-only); None defers to the prover's global limits.
    """

    vars: Tuple[str, ...]
    body: Formula
    triggers: Tuple[MultiPattern, ...] = field(default=(), compare=False)
    name: str = field(default="", compare=False)
    width_cap: "int | None" = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"(forall {' '.join(self.vars)} :: {self.body})"


@dataclass(frozen=True)
class Exists(Formula):
    vars: Tuple[str, ...]
    body: Formula

    def __str__(self) -> str:
        return f"(exists {' '.join(self.vars)} :: {self.body})"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def conj(formulas: Iterable[Formula]) -> Formula:
    """N-ary conjunction, flattening nested Ands and absorbing units."""
    flat: List[Formula] = []
    for formula in formulas:
        if isinstance(formula, TrueF):
            continue
        if isinstance(formula, FalseF):
            return FalseF()
        if isinstance(formula, And):
            flat.extend(formula.conjuncts)
        else:
            flat.append(formula)
    if not flat:
        return TrueF()
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(formulas: Iterable[Formula]) -> Formula:
    """N-ary disjunction, flattening nested Ors and absorbing units."""
    flat: List[Formula] = []
    for formula in formulas:
        if isinstance(formula, FalseF):
            continue
        if isinstance(formula, TrueF):
            return TrueF()
        if isinstance(formula, Or):
            flat.extend(formula.disjuncts)
        else:
            flat.append(formula)
    if not flat:
        return FalseF()
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def neq(left: Term, right: Term) -> Formula:
    """Disequality shorthand."""
    return Not(Eq(left, right))


def distinct_pairs(terms: Iterable[Term]) -> Formula:
    """Pairwise disequality of all given terms."""
    items = list(terms)
    clauses: List[Formula] = []
    for i, a in enumerate(items):
        for b in items[i + 1 :]:
            clauses.append(neq(a, b))
    return conj(clauses)
