"""Substitution and free-variable computation for terms and formulas.

Substitution is capture-avoiding: bound variables that clash with the
substitution's keys shadow them (the key is dropped inside the binder), and
bound variables that would capture a variable free in a substituted value
are renamed apart.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Set, Tuple

from repro.logic.terms import (
    And,
    App,
    Const,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    IntLit,
    Not,
    Or,
    Pred,
    Term,
    TrueF,
    Var,
)


def term_free_vars(term: Term) -> FrozenSet[str]:
    """All variable names occurring in ``term``."""
    if isinstance(term, Var):
        return frozenset((term.name,))
    if isinstance(term, (Const, IntLit)):
        return frozenset()
    if isinstance(term, App):
        result: Set[str] = set()
        for arg in term.args:
            result |= term_free_vars(arg)
        return frozenset(result)
    raise TypeError(f"not a term: {term!r}")


def formula_free_vars(formula: Formula) -> FrozenSet[str]:
    """All variable names occurring free in ``formula``."""
    if isinstance(formula, (TrueF, FalseF)):
        return frozenset()
    if isinstance(formula, Eq):
        return term_free_vars(formula.left) | term_free_vars(formula.right)
    if isinstance(formula, Pred):
        result: Set[str] = set()
        for arg in formula.args:
            result |= term_free_vars(arg)
        return frozenset(result)
    if isinstance(formula, Not):
        return formula_free_vars(formula.body)
    if isinstance(formula, And):
        result = set()
        for conjunct in formula.conjuncts:
            result |= formula_free_vars(conjunct)
        return frozenset(result)
    if isinstance(formula, Or):
        result = set()
        for disjunct in formula.disjuncts:
            result |= formula_free_vars(disjunct)
        return frozenset(result)
    if isinstance(formula, Implies):
        return formula_free_vars(formula.antecedent) | formula_free_vars(
            formula.consequent
        )
    if isinstance(formula, Iff):
        return formula_free_vars(formula.left) | formula_free_vars(formula.right)
    if isinstance(formula, (Forall, Exists)):
        return formula_free_vars(formula.body) - set(formula.vars)
    raise TypeError(f"not a formula: {formula!r}")


def subst_term(term: Term, mapping: Dict[str, Term]) -> Term:
    """Replace free variables of ``term`` according to ``mapping``."""
    if isinstance(term, Var):
        return mapping.get(term.name, term)
    if isinstance(term, (Const, IntLit)):
        return term
    if isinstance(term, App):
        return App(term.fn, tuple(subst_term(a, mapping) for a in term.args))
    raise TypeError(f"not a term: {term!r}")


def _fresh_name(base: str, taken: Set[str]) -> str:
    for index in itertools.count(1):
        candidate = f"{base}~{index}"
        if candidate not in taken:
            return candidate
    raise AssertionError("unreachable")


def _subst_binder(
    formula, mapping: Dict[str, Term]
) -> Tuple[Tuple[str, ...], Dict[str, Term], Dict[str, Term]]:
    """Common capture-avoiding handling for Forall/Exists.

    Returns the (possibly renamed) bound variables, the renaming to apply to
    the binder's body and triggers, and the surviving outer substitution.
    """
    inner = {k: v for k, v in mapping.items() if k not in formula.vars}
    if not inner:
        return formula.vars, {}, inner
    value_vars: Set[str] = set()
    for value in inner.values():
        value_vars |= term_free_vars(value)
    new_vars = []
    renaming: Dict[str, Term] = {}
    taken = value_vars | set(formula.vars) | set(inner)
    for var in formula.vars:
        if var in value_vars:
            fresh = _fresh_name(var, taken)
            taken.add(fresh)
            renaming[var] = Var(fresh)
            new_vars.append(fresh)
        else:
            new_vars.append(var)
    return tuple(new_vars), renaming, inner


def subst_formula(formula: Formula, mapping: Dict[str, Term]) -> Formula:
    """Capture-avoiding substitution of free variables in ``formula``."""
    if not mapping:
        return formula
    if isinstance(formula, (TrueF, FalseF)):
        return formula
    if isinstance(formula, Eq):
        return Eq(subst_term(formula.left, mapping), subst_term(formula.right, mapping))
    if isinstance(formula, Pred):
        return Pred(formula.name, tuple(subst_term(a, mapping) for a in formula.args))
    if isinstance(formula, Not):
        return Not(subst_formula(formula.body, mapping))
    if isinstance(formula, And):
        return And(tuple(subst_formula(c, mapping) for c in formula.conjuncts))
    if isinstance(formula, Or):
        return Or(tuple(subst_formula(d, mapping) for d in formula.disjuncts))
    if isinstance(formula, Implies):
        return Implies(
            subst_formula(formula.antecedent, mapping),
            subst_formula(formula.consequent, mapping),
        )
    if isinstance(formula, Iff):
        return Iff(
            subst_formula(formula.left, mapping),
            subst_formula(formula.right, mapping),
        )
    if isinstance(formula, Forall):
        new_vars, renaming, inner = _subst_binder(formula, mapping)
        body = subst_formula(formula.body, renaming) if renaming else formula.body
        triggers = formula.triggers
        if renaming or inner:
            combined = dict(renaming)
            combined.update(inner)
            triggers = tuple(
                tuple(subst_term(p, combined) for p in multi)
                for multi in formula.triggers
            )
        return Forall(
            new_vars,
            subst_formula(body, inner),
            triggers,
            formula.name,
            formula.width_cap,
        )
    if isinstance(formula, Exists):
        new_vars, renaming, inner = _subst_binder(formula, mapping)
        body = subst_formula(formula.body, renaming) if renaming else formula.body
        return Exists(new_vars, subst_formula(body, inner))
    raise TypeError(f"not a formula: {formula!r}")
