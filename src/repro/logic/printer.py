"""A stable, compact text format for terms and formulas.

The format is S-expression-flavoured and deterministic; the golden tests on
wlp output compare against it. It is intended for debugging and tests, not
for re-parsing.
"""

from __future__ import annotations

from repro.logic.terms import (
    And,
    App,
    Const,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    IntLit,
    Not,
    Or,
    Pred,
    Term,
    TrueF,
    Var,
)


def format_term(term: Term) -> str:
    if isinstance(term, Var):
        return f"?{term.name}"
    if isinstance(term, Const):
        return term.name
    if isinstance(term, IntLit):
        return str(term.value)
    if isinstance(term, App):
        inner = " ".join(format_term(a) for a in term.args)
        return f"({term.fn} {inner})"
    raise TypeError(f"not a term: {term!r}")


def format_formula(formula: Formula, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(formula, TrueF):
        return f"{pad}true"
    if isinstance(formula, FalseF):
        return f"{pad}false"
    if isinstance(formula, Eq):
        return f"{pad}(= {format_term(formula.left)} {format_term(formula.right)})"
    if isinstance(formula, Pred):
        inner = " ".join(format_term(a) for a in formula.args)
        return f"{pad}({formula.name} {inner})"
    if isinstance(formula, Not):
        return f"{pad}(not\n{format_formula(formula.body, indent + 1)})"
    if isinstance(formula, And):
        inner = "\n".join(format_formula(c, indent + 1) for c in formula.conjuncts)
        return f"{pad}(and\n{inner})"
    if isinstance(formula, Or):
        inner = "\n".join(format_formula(d, indent + 1) for d in formula.disjuncts)
        return f"{pad}(or\n{inner})"
    if isinstance(formula, Implies):
        return (
            f"{pad}(=>\n{format_formula(formula.antecedent, indent + 1)}\n"
            f"{format_formula(formula.consequent, indent + 1)})"
        )
    if isinstance(formula, Iff):
        return (
            f"{pad}(<=>\n{format_formula(formula.left, indent + 1)}\n"
            f"{format_formula(formula.right, indent + 1)})"
        )
    if isinstance(formula, Forall):
        vars_text = " ".join(formula.vars)
        triggers = ""
        if formula.triggers:
            rendered = " ".join(
                "{" + " ".join(format_term(p) for p in multi) + "}"
                for multi in formula.triggers
            )
            triggers = f" :pattern {rendered}"
        return (
            f"{pad}(forall ({vars_text}){triggers}\n"
            f"{format_formula(formula.body, indent + 1)})"
        )
    if isinstance(formula, Exists):
        vars_text = " ".join(formula.vars)
        return f"{pad}(exists ({vars_text})\n{format_formula(formula.body, indent + 1)})"
    raise TypeError(f"not a formula: {formula!r}")
