"""First-order logic infrastructure shared by the VC generator and prover.

Terms and formulas are immutable trees (:mod:`repro.logic.terms`), with
substitution and free-variable computation (:mod:`repro.logic.subst`),
negation-normal-form and skolemization transforms (:mod:`repro.logic.nnf`),
and a printer producing a stable S-expression-like syntax used by golden
tests (:mod:`repro.logic.printer`).
"""

from repro.logic.nnf import FreshNames, negate, skolemize, to_nnf
from repro.logic.printer import format_formula, format_term
from repro.logic.subst import formula_free_vars, subst_formula, subst_term, term_free_vars
from repro.logic.terms import (
    And,
    App,
    Const,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    IntLit,
    Not,
    Or,
    Pred,
    Term,
    TrueF,
    Var,
    conj,
    disj,
    distinct_pairs,
    neq,
)

__all__ = [
    "And",
    "App",
    "Const",
    "Eq",
    "Exists",
    "FalseF",
    "Forall",
    "Formula",
    "FreshNames",
    "Iff",
    "Implies",
    "IntLit",
    "Not",
    "Or",
    "Pred",
    "Term",
    "TrueF",
    "Var",
    "conj",
    "disj",
    "distinct_pairs",
    "format_formula",
    "format_term",
    "formula_free_vars",
    "negate",
    "neq",
    "skolemize",
    "subst_formula",
    "subst_term",
    "term_free_vars",
    "to_nnf",
]
