"""High-level convenience API: parse, lint, and check oolong programs."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    internal_error_diagnostic,
)
from repro.analysis.engine import LintResult, lint_scope
from repro.errors import ReproError
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits
from repro.vcgen.checker import CheckReport, ImplVerdict, check_scope

__all__ = [
    "CheckReport",
    "Diagnostic",
    "ImplVerdict",
    "LintResult",
    "Severity",
    "check_program",
    "check_program_resilient",
    "check_scope",
    "lint_program",
    "lint_scope",
    "parse_program",
    "parse_program_resilient",
]


def parse_program(source: str, *, recover: bool = False) -> Scope:
    """Parse an oolong program text into a well-formed scope.

    Fail-fast by default: the first syntax error raises. With
    ``recover=True`` the parser recovers at declaration/command
    boundaries and raises only at the end — a single :class:`ParseError`
    summarizing every error found (use :func:`parse_program_resilient`
    to get the partial scope and the individual diagnostics instead).
    """
    if recover:
        scope, diagnostics = parse_program_resilient(source)
        if diagnostics:
            from repro.errors import ParseError

            raise ParseError(
                f"{len(diagnostics)} syntax error(s): "
                + "; ".join(d.message for d in diagnostics[:5])
            )
        return scope
    scope = Scope.from_source(source)
    check_well_formed(scope)
    return scope


def parse_program_resilient(
    source: str, filename: Optional[str] = None
) -> Tuple[Scope, List[Diagnostic]]:
    """Parse with error recovery; returns the partial scope + diagnostics.

    Never raises on malformed input: lexical/syntax errors come back as
    ``OL001``/``OL002`` diagnostics, well-formedness failures of the
    surviving declarations as ``OL100``.
    """
    from repro.analysis.diagnostics import diagnostic_from_error
    from repro.errors import WellFormednessError

    scope, diagnostics = Scope.from_sources_recovering([(filename, source)])
    if not diagnostics:
        try:
            check_well_formed(scope)
        except WellFormednessError as error:
            diagnostics.append(diagnostic_from_error(error))
    return scope, diagnostics


def _maybe_tracing(tracer):
    """Install ``tracer`` for the call when given; no-op context otherwise."""
    if tracer is None:
        from contextlib import nullcontext

        return nullcontext()
    from repro.obs import tracing

    return tracing(tracer)


def _maybe_journaling(events):
    """Install an event journal for the call when given; no-op otherwise."""
    from repro.obs import journaling

    return journaling(events)


def check_program(
    source: str,
    limits: Optional[Limits] = None,
    *,
    tracer=None,
    events=None,
    explain: bool = False,
    parallel: Optional[int] = None,
    fleet=None,
    cache_dir: Optional[str] = None,
    cache_url: Optional[str] = None,
    cache_max_bytes: Optional[int] = None,
    job_timeout: Optional[float] = None,
    max_retries: int = 2,
    static_discharge: str = "off",
    check_discharge: bool = False,
    run_dir: Optional[str] = None,
    resume: bool = False,
) -> CheckReport:
    """Parse, validate, and verify an oolong program text.

    ``tracer``, when given, is a :class:`repro.obs.Tracer` installed for
    the duration of the call: the run's spans (stage boundaries,
    per-implementation, per-VC) and prover metrics land on it, ready for
    :func:`repro.obs.chrome_trace` / :func:`repro.obs.text_report`.

    ``events``, when given, is a :class:`repro.obs.EventJournal`
    installed for the duration of the call: the run's lifecycle records
    (lease grants, worker churn, retries/quarantines, cache traffic,
    degradation) land on it, ready for ``journal.write(path)`` or a live
    listener such as :class:`repro.obs.ProgressRenderer`.

    ``explain=True`` attaches a blame report or replayable proof log to
    each verdict (see :mod:`repro.obs.explain`).

    ``parallel=N`` checks implementations on ``N`` supervised worker
    processes, ``cache_dir`` enables the crash-safe incremental result
    cache, ``job_timeout`` is the hard per-job wall-clock bound, and
    ``max_retries`` the retry budget after worker deaths — see
    :mod:`repro.parallel` and :func:`repro.vcgen.checker.check_scope`.

    ``static_discharge``/``check_discharge`` control the interprocedural
    effect analyzer that discharges frame obligations before the prover —
    see :mod:`repro.analysis.effects` and
    :func:`repro.vcgen.checker.check_scope`.

    ``run_dir`` keeps a crash-safe run ledger in that directory and
    ``resume=True`` replays the verdicts it committed before a crash —
    see :mod:`repro.parallel.ledger`.
    """
    with _maybe_tracing(tracer), _maybe_journaling(events):
        return check_scope(
            parse_program(source),
            limits,
            explain=explain,
            parallel=parallel,
            fleet=fleet,
            cache_dir=cache_dir,
            cache_url=cache_url,
            cache_max_bytes=cache_max_bytes,
            job_timeout=job_timeout,
            max_retries=max_retries,
            static_discharge=static_discharge,
            check_discharge=check_discharge,
            run_dir=run_dir,
            resume=resume,
        )


def check_program_resilient(
    source: str,
    limits: Optional[Limits] = None,
    *,
    filename: Optional[str] = None,
    tracer=None,
    events=None,
    explain: bool = False,
    parallel: Optional[int] = None,
    fleet=None,
    cache_dir: Optional[str] = None,
    cache_url: Optional[str] = None,
    cache_max_bytes: Optional[int] = None,
    job_timeout: Optional[float] = None,
    max_retries: int = 2,
    static_discharge: str = "off",
    check_discharge: bool = False,
    run_dir: Optional[str] = None,
    resume: bool = False,
) -> CheckReport:
    """Parse, validate, and verify; never raises.

    The fault-tolerant driver: frontend errors (and any unexpected crash
    anywhere in the pipeline) are reported in ``report.fatal`` instead of
    propagating, every checkable implementation still gets a verdict, and
    the report always renders. This is the entry point the
    fault-injection harness drives.

    ``tracer`` installs a :class:`repro.obs.Tracer` for the call (see
    :func:`check_program`); spans still close on every failure path, so
    traces of crashing runs are complete.

    The supervision knobs (``parallel``/``cache_dir``/``job_timeout``/
    ``max_retries``) behave as in :func:`check_program`.
    """
    with _maybe_tracing(tracer), _maybe_journaling(events):
        return _check_program_resilient(
            source,
            limits,
            filename=filename,
            explain=explain,
            parallel=parallel,
            fleet=fleet,
            cache_dir=cache_dir,
            cache_url=cache_url,
            cache_max_bytes=cache_max_bytes,
            job_timeout=job_timeout,
            max_retries=max_retries,
            static_discharge=static_discharge,
            check_discharge=check_discharge,
            run_dir=run_dir,
            resume=resume,
        )


def _check_program_resilient(
    source: str,
    limits: Optional[Limits],
    *,
    filename: Optional[str],
    explain: bool = False,
    parallel: Optional[int] = None,
    fleet=None,
    cache_dir: Optional[str] = None,
    cache_url: Optional[str] = None,
    cache_max_bytes: Optional[int] = None,
    job_timeout: Optional[float] = None,
    max_retries: int = 2,
    static_discharge: str = "off",
    check_discharge: bool = False,
    run_dir: Optional[str] = None,
    resume: bool = False,
) -> CheckReport:
    report = CheckReport()
    try:
        scope, diagnostics = Scope.from_sources_recovering([(filename, source)])
    except Exception as exc:
        report.fatal.append(internal_error_diagnostic("parsing", exc))
        return report
    frontend_errors = [
        d for d in diagnostics if d.severity is Severity.ERROR
    ]
    if frontend_errors:
        report.fatal.extend(frontend_errors)
        report.diagnostics.extend(
            d for d in diagnostics if d.severity is not Severity.ERROR
        )
        return report
    report.diagnostics.extend(diagnostics)
    try:
        inner = check_scope(
            scope,
            limits,
            explain=explain,
            parallel=parallel,
            fleet=fleet,
            cache_dir=cache_dir,
            cache_url=cache_url,
            cache_max_bytes=cache_max_bytes,
            job_timeout=job_timeout,
            max_retries=max_retries,
            static_discharge=static_discharge,
            check_discharge=check_discharge,
            run_dir=run_dir,
            resume=resume,
        )
    except ReproError as exc:
        from repro.analysis.diagnostics import diagnostic_from_error

        report.fatal.append(diagnostic_from_error(exc))
        return report
    except Exception as exc:
        report.fatal.append(internal_error_diagnostic("checking", exc))
        return report
    inner.diagnostics = report.diagnostics + inner.diagnostics
    inner.fatal = report.fatal + inner.fatal
    return inner


def lint_program(source: str, filename: Optional[str] = None) -> LintResult:
    """Parse and statically analyse an oolong program text (no prover)."""
    return lint_scope(Scope.from_source(source, filename))
