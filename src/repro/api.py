"""High-level convenience API: parse, lint, and check oolong programs."""

from __future__ import annotations

from typing import Optional

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import LintResult, lint_scope
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits
from repro.vcgen.checker import CheckReport, ImplVerdict, check_scope

__all__ = [
    "CheckReport",
    "Diagnostic",
    "ImplVerdict",
    "LintResult",
    "Severity",
    "check_program",
    "check_scope",
    "lint_program",
    "lint_scope",
    "parse_program",
]


def parse_program(source: str) -> Scope:
    """Parse an oolong program text into a well-formed scope."""
    scope = Scope.from_source(source)
    check_well_formed(scope)
    return scope


def check_program(source: str, limits: Optional[Limits] = None) -> CheckReport:
    """Parse, validate, and verify an oolong program text."""
    return check_scope(parse_program(source), limits)


def lint_program(source: str, filename: Optional[str] = None) -> LintResult:
    """Parse and statically analyse an oolong program text (no prover)."""
    return lint_scope(Scope.from_source(source, filename))
