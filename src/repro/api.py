"""High-level convenience API: parse and check oolong programs."""

from __future__ import annotations

from typing import Optional

from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits
from repro.vcgen.checker import CheckReport, ImplVerdict, check_scope

__all__ = ["CheckReport", "ImplVerdict", "check_program", "check_scope", "parse_program"]


def parse_program(source: str) -> Scope:
    """Parse an oolong program text into a well-formed scope."""
    scope = Scope.from_source(source)
    check_well_formed(scope)
    return scope


def check_program(source: str, limits: Optional[Limits] = None) -> CheckReport:
    """Parse, validate, and verify an oolong program text."""
    return check_scope(parse_program(source), limits)
