"""A span-based tracer for the checking pipeline.

Design constraints, in order:

1. **The clean path stays fast.** With no tracer installed,
   :func:`span` is one module-global ``None`` check returning a shared
   no-op context manager — the same discipline as
   :func:`repro.testing.faults.fault_point`, and bounded the same way
   (``benchmarks/bench_observability.py`` keeps total hook cost on a
   corpus run under 1%).
2. **Spans always close.** Instrumentation sites use ``with`` blocks,
   so an injected crash (or a real one) unwinds through ``__exit__``,
   which stamps the end time and records the exception — traces of
   failing runs are complete, not truncated.
3. **Stage names are shared.** Stage-boundary spans use the names from
   :data:`repro.obs.stages.STAGES`, the same vocabulary the
   fault-injection harness keys on, so a trace and an injected fault
   line up by construction.

The span tree is implicit: each recorded :class:`Span` stores its parent
index and depth, and the exporters (:mod:`repro.obs.export`) rebuild
nesting from that — Chrome's trace viewer infers it from time
containment on the single thread lane we emit.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.stages import CAT_STAGE


@dataclass
class Span:
    """One recorded interval. Times are ``perf_counter`` seconds."""

    name: str
    category: str
    start: float
    end: Optional[float] = None
    parent: Optional[int] = None  # index into Tracer.spans
    depth: int = 0
    args: Dict[str, Any] = field(default_factory=dict)
    #: ``"TypeName: message"`` when the span was closed by an exception.
    error: Optional[str] = None

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start


class _SpanHandle:
    """Context manager yielded by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_index")

    def __init__(self, tracer: "Tracer", name: str, category: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args
        self._index: Optional[int] = None

    def set(self, **args: Any) -> None:
        """Attach (or update) arguments on the live span."""
        if self._index is not None:
            self._tracer.spans[self._index].args.update(args)

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        stack = tracer._stack
        span = Span(
            name=self._name,
            category=self._category,
            start=tracer._clock(),
            parent=stack[-1] if stack else None,
            depth=len(stack),
            args=self._args,
        )
        self._index = len(tracer.spans)
        tracer.spans.append(span)
        stack.append(self._index)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        span = tracer.spans[self._index]
        span.end = tracer._clock()
        if exc_type is not None:
            span.error = f"{exc_type.__name__}: {exc}"
        # ``with`` nesting guarantees LIFO order, but pop defensively to
        # self-heal if a handle was (incorrectly) closed out of order.
        while tracer._stack and tracer._stack.pop() != self._index:
            pass
        return False


class _NullSpanHandle:
    """The shared no-op handle returned when no tracer is installed."""

    __slots__ = ()

    def set(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpanHandle()


class Tracer:
    """Records a flat list of spans plus a metrics registry."""

    def __init__(self):
        self._clock = time.perf_counter
        self.origin: float = self._clock()
        self.spans: List[Span] = []
        self._stack: List[int] = []
        self.metrics = MetricsRegistry()

    def span(self, name: str, category: str = CAT_STAGE, **args: Any) -> _SpanHandle:
        return _SpanHandle(self, name, category, args)

    @property
    def open_spans(self) -> List[Span]:
        return [self.spans[i] for i in self._stack]

    def close(self) -> None:
        """Force-close any spans left open (a safety net for exporters;
        with ``with``-based instrumentation there should be none)."""
        now = self._clock()
        while self._stack:
            span = self.spans[self._stack.pop()]
            if span.end is None:
                span.end = now
                span.error = span.error or "span left open at tracer close"

    def current_index(self) -> Optional[int]:
        """Index of the innermost open span (parent for out-of-band
        recording), or None outside any span."""
        return self._stack[-1] if self._stack else None

    def record(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        *,
        parent: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> int:
        """Append an already-closed span (out-of-band recording).

        Used by the parallel supervisor to stamp per-job intervals it
        measured itself (assignment → result) rather than lived through
        a ``with`` block. Returns the new span's index so child spans
        (e.g. absorbed worker spans) can attach to it.
        """
        depth = self.spans[parent].depth + 1 if parent is not None else 0
        span = Span(
            name=name,
            category=category,
            start=start,
            end=end,
            parent=parent,
            depth=depth,
            args=dict(args or {}),
            error=error,
        )
        index = len(self.spans)
        self.spans.append(span)
        return index

    def export_spans(self) -> List[dict]:
        """The recorded spans as plain dicts, ready to cross a process
        boundary (closing any still-open spans first).

        Times stay in this process's ``perf_counter`` domain — on the
        platforms the supervisor runs workers on, ``perf_counter`` is
        the system-wide monotonic clock, so spans exported by a worker
        nest correctly inside the supervisor's own timeline.
        """
        self.close()
        return [
            {
                "name": span.name,
                "category": span.category,
                "start": span.start,
                "end": span.end,
                "parent": span.parent,
                "args": dict(span.args),
                "error": span.error,
            }
            for span in self.spans
        ]

    def absorb(
        self,
        exported: List[dict],
        *,
        parent: Optional[int] = None,
        offset: float = 0.0,
    ) -> None:
        """Graft spans exported by another tracer under ``parent``.

        Parent indices inside ``exported`` are remapped onto this
        tracer's span list; top-level exported spans become children of
        ``parent`` (or roots when None). Depths are recomputed so the
        exporters' nesting invariants keep holding.

        ``offset`` rebases remote timestamps onto this tracer's clock:
        spans shipped from another machine carry that machine's
        ``perf_counter`` domain, and the fleet's registration handshake
        estimates the additive offset landing them in ours (see
        ``repro.parallel.transport.clock_offset``). Rebased spans are
        clamped to this tracer's ``origin`` (and ends to their starts)
        so estimation jitter can never produce a pre-run-start or
        negative-duration span in the assembled Chrome trace.
        """
        base_depth = (
            self.spans[parent].depth + 1 if parent is not None else 0
        )
        remap: Dict[int, int] = {}
        for old_index, data in enumerate(exported):
            old_parent = data.get("parent")
            if old_parent is not None and old_parent in remap:
                new_parent = remap[old_parent]
                depth = self.spans[new_parent].depth + 1
            else:
                new_parent = parent
                depth = base_depth
            start = data["start"]
            end = data["end"]
            if offset:
                start += offset
                if end is not None:
                    end += offset
                if start < self.origin:
                    start = self.origin
                if end is not None and end < start:
                    end = start
            span = Span(
                name=data["name"],
                category=data["category"],
                start=start,
                end=end,
                parent=new_parent,
                depth=depth,
                args=dict(data.get("args", {})),
                error=data.get("error"),
            )
            remap[old_index] = len(self.spans)
            self.spans.append(span)

    def children_of(self, index: Optional[int]) -> List[int]:
        return [
            i for i, span in enumerate(self.spans) if span.parent == index
        ]

    def find(self, name: str, category: Optional[str] = None) -> List[Span]:
        return [
            span
            for span in self.spans
            if span.name == name
            and (category is None or span.category == category)
        ]


#: The installed tracer, or None. Written only by :func:`tracing`; the
#: clean path reads it once per instrumentation site.
_ACTIVE: Optional[Tracer] = None


def span(name: str, category: str = CAT_STAGE, **args: Any):
    """Open a span on the installed tracer — or a shared no-op.

    The pipeline calls this at every boundary it wants attributed; with
    no tracer installed the cost is one global read plus the (empty)
    kwargs dict. Expensive span arguments must be gated on
    :func:`active` at the call site.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, category, **args)


def active() -> bool:
    """True when a tracer is installed (gate for costly span args)."""
    return _ACTIVE is not None


def current() -> Optional[Tracer]:
    return _ACTIVE


def metrics() -> Optional[MetricsRegistry]:
    """The installed tracer's registry, or None on the clean path."""
    tracer = _ACTIVE
    return tracer.metrics if tracer is not None else None


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of the ``with`` block.

    Re-entrant: a nested installation shadows (and then restores) the
    outer one, so library code that accepts an explicit tracer composes
    with an ambient one.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
