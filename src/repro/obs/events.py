"""A structured event journal for fleet-wide observability.

The span tracer (:mod:`repro.obs.tracer`) answers "where did the time
go?" *inside* one process; this module answers "what happened?" *across*
the fleet: lease grants and expiries, worker churn, retries and
quarantines (OL902), cache traffic and corruption (OL903), frame
resyncs, and OL904 degradation — the lifecycle that is otherwise
invisible between the start banner and the final report.

Every record is a flat JSON object carrying

* ``event`` — the kind, drawn from :data:`EVENT_KINDS`;
* ``run_id`` — one opaque id per journal, so journals from several
  processes can be merged and still teased apart;
* ``seq`` — a monotone per-journal sequence number (total order even
  when two records land inside the same clock tick);
* ``t_mono`` / ``t_wall`` — monotonic seconds (for intervals) and wall
  seconds since the epoch (for cross-machine correlation);
* correlation ids (``worker``, ``job``, ``lease``, ``impl``/``index``)
  and a ``code`` field tying OL901/OL902/OL903/OL904 events to the
  diagnostics they accompany.

The journal follows the tracer's null-path discipline exactly: with no
journal installed, :func:`emit` is a single module-global read —
measured and guarded under 1% by ``benchmarks/bench_observability.py``.
``emit`` is thread-safe (the fleet coordinator's reader threads and the
cache server's client threads all emit concurrently) and listeners
(e.g. the ``--progress`` renderer) observe records in sequence order.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

# Every kind the journal can record.  The schema's ``enum`` mirrors this
# tuple; ``EventJournal.emit`` rejects kinds outside it so a typo at an
# emission site fails loudly in tests rather than producing a record the
# validator would reject later.
EVENT_KINDS = (
    # run lifecycle
    "check-start",
    "check-end",
    # server lifecycle (coordinator, worker pool, cache server)
    "server-start",
    "server-stop",
    # worker lifecycle
    "worker-spawn",
    "worker-registered",
    "worker-deregistered",
    "worker-died",
    "worker-respawn",
    "worker-churn",
    "worker-partition",
    # lease lifecycle (fleet)
    "lease-granted",
    "lease-renewed",
    "lease-expired",
    "lease-reclaimed",
    # job lifecycle
    "job-assigned",
    "job-retry",
    "job-quarantined",  # OL902
    "job-hard-timeout",  # OL901
    "job-deadline",  # OL901
    "impl-checked",
    # cache traffic
    "cache-hit",
    "cache-miss",
    "cache-store",
    "cache-evict",
    "cache-reject",  # OL903
    "cache-reconnected",
    # transport
    "frame-rejected",
    "frame-resync",
    # graceful degradation
    "degraded",  # OL904
    # crash-safe run ledger
    "ledger-commit",
    "ledger-skip",  # OL905
)

_KIND_SET = frozenset(EVENT_KINDS)


class EventJournal:
    """An in-memory, thread-safe journal of structured event records."""

    def __init__(self, run_id: Optional[str] = None):
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self.records: List[Dict[str, object]] = []
        self._seq = 0
        # Re-entrant: a listener observing a record may itself query the
        # journal (counts(), len()) without deadlocking.
        self._lock = threading.RLock()
        self._listeners: List[Callable[[Dict[str, object]], None]] = []

    def emit(self, event: str, **fields: object) -> Dict[str, object]:
        """Append one record; ``None``-valued fields are dropped."""
        if event not in _KIND_SET:
            raise ValueError(f"unknown event kind {event!r}")
        record: Dict[str, object] = {
            "event": event,
            "run_id": self.run_id,
            "t_mono": time.monotonic(),
            "t_wall": time.time(),
        }
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1
            self.records.append(record)
            # Listeners run under the lock so they observe records in
            # sequence order even with many emitting threads; they must
            # stay cheap (the progress renderer rate-limits itself).
            for listener in self._listeners:
                try:
                    listener(record)
                except Exception:
                    pass  # a broken listener must never fail a check
        return record

    def add_listener(self, listener: Callable[[Dict[str, object]], None]) -> None:
        with self._lock:
            self._listeners.append(listener)

    def __len__(self) -> int:
        return len(self.records)

    def counts(self) -> Dict[str, int]:
        """Record count per event kind (handy in tests and reports)."""
        out: Dict[str, int] = {}
        with self._lock:
            for record in self.records:
                kind = str(record["event"])
                out[kind] = out.get(kind, 0) + 1
        return out

    def to_jsonl(self) -> str:
        with self._lock:
            records = list(self.records)
        lines = [json.dumps(record, sort_keys=True) for record in records]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str, append: bool = False) -> None:
        """Write the journal as JSON Lines (one record per line).

        By default an existing file is truncated — successive runs do
        not interleave illegibly. With ``append`` the journal is added
        after whatever is already there; each run keeps its own
        ``run_id``, so :func:`repro.obs.schema.validate_event_journal`
        (which partitions its seq/t_mono invariants per run) still
        accepts the multi-run file.
        """
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "a" if append else "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())


# ----------------------------------------------------------------------
# Module-level installation, mirroring the tracer's `_ACTIVE` pattern.

_ACTIVE: Optional[EventJournal] = None

#: When a run ledger is open, the checker installs its commit function
#: here.  :func:`emit_impl_checked` is the single choke point every
#: backend (serial loop, local supervisor, fleet coordinator) crosses
#: when a verdict is decided, so tapping it here gives the write-ahead
#: ledger complete coverage without touching any emission site — and it
#: works even when no ``--events`` journal is installed.
_VERDICT_SINK: Optional[Callable[..., None]] = None


def journal() -> Optional[EventJournal]:
    """The installed journal, or None (the fast-path check)."""
    return _ACTIVE


def emit(event: str, **fields: object) -> None:
    """Emit to the installed journal; a single global read when disabled."""
    active = _ACTIVE
    if active is None:
        return
    active.emit(event, **fields)


def emit_impl_checked(
    verdict,
    *,
    cache_hit: bool = False,
    discharged: bool = False,
    preresolved: bool = False,
    lease: Optional[int] = None,
    worker: Optional[str] = None,
    attempt: Optional[int] = None,
) -> None:
    """Emit the ``impl-checked`` record for one decided verdict.

    Duck-typed on :class:`~repro.vcgen.checker.ImplVerdict` (this module
    must not import the checker) and shared by every backend so the
    record shape is identical whether the verdict came from the serial
    loop, the local supervisor, or the fleet coordinator. ``code``
    carries the OL9xx diagnostic code when the verdict has one, tying
    OL901/OL902 outcomes to their journal records. Consumers must dedupe
    by ``(impl, index)``: a degraded fleet re-announces its completed
    jobs through the local supervisor as ``preresolved`` records.
    """
    sink = _VERDICT_SINK
    if sink is not None:
        try:
            sink(verdict, preresolved=preresolved)
        except Exception:
            pass  # a broken ledger must never fail a check
    active = _ACTIVE
    if active is None:
        return
    error = getattr(verdict, "error", None)
    active.emit(
        "impl-checked",
        impl=verdict.impl.name,
        index=verdict.index,
        status=verdict.status.name.lower(),
        cache_hit=True if cache_hit else None,
        discharged=True if discharged else None,
        preresolved=True if preresolved else None,
        code=error.code if error is not None else None,
        lease=lease,
        worker=worker,
        attempt=attempt,
    )


def announce(record: Dict[str, object]) -> None:
    """Print one structured record as a JSON line on stdout.

    The long-running server entry points (``cache serve``, ``workers
    serve``) use this instead of prose banners so their stdout is
    machine-readable with the same shape as the journal; when a journal
    is installed the line carries its ``run_id`` so console output and
    journal records correlate.
    """
    active = _ACTIVE
    if active is not None:
        record = dict(record, run_id=active.run_id)
    print(json.dumps(record, sort_keys=True), flush=True)


@contextmanager
def verdict_sink(sink: Optional[Callable[..., None]]) -> Iterator[None]:
    """Install ``sink`` as the process-wide verdict tap for the duration.

    ``verdict_sink(None)`` is a no-op passthrough. The checker wraps its
    backend dispatch in this so the run ledger sees every decided
    verdict without any backend knowing the ledger exists.
    """
    global _VERDICT_SINK
    if sink is None:
        yield
        return
    previous = _VERDICT_SINK
    _VERDICT_SINK = sink
    try:
        yield
    finally:
        _VERDICT_SINK = previous


@contextmanager
def journaling(target: Optional[EventJournal]) -> Iterator[Optional[EventJournal]]:
    """Install ``target`` as the process-wide journal for the duration.

    ``journaling(None)`` is a no-op passthrough, so callers can write
    ``with journaling(maybe_journal):`` without branching.
    """
    global _ACTIVE
    if target is None:
        yield None
        return
    previous = _ACTIVE
    _ACTIVE = target
    try:
        yield target
    finally:
        _ACTIVE = previous


def read_journal(
    path: str,
    *,
    strict: bool = True,
    on_skip: Optional[Callable[[int, str], None]] = None,
) -> List[Dict[str, object]]:
    """Parse a JSONL journal file back into a list of records.

    A process killed mid-write (SIGKILL, power loss) leaves a torn
    final line; that is expected crash debris, not corruption, so an
    unparsable **last** line is always skipped — reported through
    ``on_skip(lineno, reason)`` when given — rather than raised.  An
    unparsable line *before* the last one means the file itself is
    damaged: raised under ``strict`` (the default), skipped via
    ``on_skip`` otherwise.
    """
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    last_lineno = len(lines)
    for lineno, line in enumerate(lines, 1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except ValueError as exc:
            reason = f"not JSON: {exc}"
            if lineno == last_lineno:
                reason = f"torn final record ({reason})"
            elif strict:
                raise ValueError(f"{path}:{lineno}: {reason}") from exc
            if on_skip is not None:
                on_skip(lineno, reason)
            continue
        records.append(record)
    return records
