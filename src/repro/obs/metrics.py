"""A zero-dependency metrics registry: counters, labelled counters, timers.

The registry is deliberately dumb — plain dicts of ints and floats — so
that feeding it from the hot pipeline costs a couple of dict operations
and exporting it is just :meth:`MetricsRegistry.to_dict`. It is owned by
a :class:`repro.obs.tracer.Tracer`; with no tracer active nothing in the
pipeline ever touches a registry.

Naming convention: dotted lowercase paths, subsystem first
(``prover.instantiations``, ``vcgen.goal_nodes``, ``checker.status.verified``).
Labelled counters add one level of keys under a single metric name
(``prover.instantiations.by_quantifier`` → quantifier name → count).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str, prefix: str = "oolong") -> str:
    """``prover.check_seconds`` → ``oolong_prover_check_seconds``."""
    flat = _PROM_BAD.sub("_", f"{prefix}_{name}" if prefix else name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def _prom_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


@dataclass
class TimerStat:
    """Aggregate of observed durations for one timer metric."""

    count: int = 0
    total: float = 0.0
    max: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": round(self.total, 6),
            "max_seconds": round(self.max, 6),
            "mean_seconds": round(self.total / self.count, 6) if self.count else 0.0,
        }


@dataclass
class MetricsRegistry:
    """Counters, labelled counters, and timers for one observed run."""

    counters: Dict[str, int] = field(default_factory=dict)
    labelled: Dict[str, Dict[str, int]] = field(default_factory=dict)
    timers: Dict[str, TimerStat] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def inc_labelled(self, name: str, label: str, amount: int = 1) -> None:
        bucket = self.labelled.setdefault(name, {})
        bucket[label] = bucket.get(label, 0) + amount

    def observe(self, name: str, seconds: float) -> None:
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = TimerStat()
        timer.observe(seconds)

    def record_prover_stats(self, stats) -> None:
        """Fold one implementation's ``ProverStats`` into the registry.

        Duck-typed on purpose: the registry must not import the prover
        (the prover is instrumented *by* this package, not a dependency
        of it).
        """
        self.inc("prover.checks")
        self.inc("prover.facts", stats.facts)
        self.inc("prover.instantiations", stats.instantiations)
        self.inc("prover.rounds", stats.rounds)
        self.inc("prover.branches", stats.branches)
        self.inc("prover.conflicts", stats.conflicts)
        self.inc("prover.egraph_merges", stats.merges)
        self.inc("prover.matches", stats.matches)
        self.inc("prover.unmatchable_quantifiers", stats.unmatchable_quantifiers)
        self.inc("prover.sat_markers", len(stats.sat_markers))
        self.observe("prover.check_seconds", stats.elapsed)
        for quantifier, count in stats.per_quantifier.items():
            self.inc_labelled(
                "prover.instantiations.by_quantifier", quantifier, count
            )

    def merge_dict(self, exported: dict) -> None:
        """Fold another registry's :meth:`to_dict` rendering into this one.

        Used by the parallel supervisor: workers run the instrumented
        pipeline under their own registry and ship ``to_dict()`` home,
        where counters add up, labels add up per key, and timers combine
        count/total/max (means are recomputed on export). Rounding in
        ``to_dict`` loses sub-microsecond precision; that is fine for
        aggregate timers.
        """
        for name, value in exported.get("counters", {}).items():
            self.inc(name, value)
        for name, bucket in exported.get("labelled", {}).items():
            for label, value in bucket.items():
                self.inc_labelled(name, label, value)
        for name, data in exported.get("timers", {}).items():
            timer = self.timers.get(name)
            if timer is None:
                timer = self.timers[name] = TimerStat()
            timer.count += data.get("count", 0)
            timer.total += data.get("total_seconds", 0.0)
            timer.max = max(timer.max, data.get("max_seconds", 0.0))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def top(self, name: str, n: int = 5) -> List[Tuple[str, int]]:
        """The ``n`` hottest labels of a labelled counter, descending."""
        bucket = self.labelled.get(name, {})
        ranked = sorted(bucket.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def to_dict(self) -> dict:
        """Stable machine-readable rendering (used by ``--metrics``)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "labelled": {
                name: dict(sorted(bucket.items()))
                for name, bucket in sorted(self.labelled.items())
            },
            "timers": {
                name: timer.to_dict()
                for name, timer in sorted(self.timers.items())
            },
        }

    def to_prometheus(self, prefix: str = "oolong") -> str:
        """Render the registry in the Prometheus text exposition format.

        Plain counters become ``counter`` samples; a labelled counter
        ``foo.by_bar`` becomes one ``counter`` family with a ``bar``
        label (falling back to a generic ``label`` key when the name
        does not follow the ``.by_<key>`` convention); a timer ``foo``
        becomes ``foo_count`` / ``foo_seconds_total`` counters plus a
        ``foo_seconds_max`` gauge. Families are emitted in sorted order
        so the output is stable for diffing and scraping tests.
        """
        lines: List[str] = []
        for name, value in sorted(self.counters.items()):
            metric = prometheus_name(name, prefix)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value}")
        for name, bucket in sorted(self.labelled.items()):
            base, sep, key = name.rpartition(".by_")
            if sep:
                metric = prometheus_name(base, prefix)
                label_key = _PROM_BAD.sub("_", key)
            else:
                metric = prometheus_name(name, prefix)
                label_key = "label"
            lines.append(f"# TYPE {metric} counter")
            for label, value in sorted(bucket.items()):
                escaped = _prom_label_value(label)
                lines.append(f'{metric}{{{label_key}="{escaped}"}} {value}')
        for name, timer in sorted(self.timers.items()):
            base = prometheus_name(name, prefix)
            if base.endswith("_seconds"):
                base = base[: -len("_seconds")]
            lines.append(f"# TYPE {base}_count counter")
            lines.append(f"{base}_count {timer.count}")
            lines.append(f"# TYPE {base}_seconds_total counter")
            lines.append(f"{base}_seconds_total {round(timer.total, 6)}")
            lines.append(f"# TYPE {base}_seconds_max gauge")
            lines.append(f"{base}_seconds_max {round(timer.max, 6)}")
        return "\n".join(lines) + ("\n" if lines else "")
