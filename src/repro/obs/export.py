"""Exporters: Chrome trace-event JSON, metrics JSON, and a text profile.

The Chrome trace format is the ``traceEvents`` JSON consumed by
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``: a flat list
of complete events (``"ph": "X"``) with microsecond timestamps; nesting
is inferred from time containment within one ``pid``/``tid`` lane. We
emit everything on a single lane, which matches the pipeline's
single-threaded execution, plus one metadata event naming the process.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.stages import CAT_STAGE, CAT_VC, STAGES
from repro.obs.tracer import Span, Tracer

#: pid/tid used for the single lane every span is emitted on.
TRACE_PID = 1
TRACE_TID = 1


def chrome_trace(tracer: Tracer, *, process_name: str = "oolong-check") -> dict:
    """Render the tracer's spans as a Chrome trace-event JSON object."""
    tracer.close()  # stamp any span a crash left open (defensive)
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": {"name": process_name},
        }
    ]
    for span in tracer.spans:
        args = dict(span.args)
        if span.error is not None:
            args["error"] = span.error
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round((span.start - tracer.origin) * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": TRACE_PID,
                "tid": TRACE_TID,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": process_name, "spanCount": len(tracer.spans)},
    }


def write_chrome_trace(path: str, tracer: Tracer, **kwargs) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer, **kwargs), handle, indent=1)
        handle.write("\n")


def metrics_json(registry: MetricsRegistry) -> str:
    """The registry as stable, indented JSON text."""
    return json.dumps(registry.to_dict(), indent=2, sort_keys=True)


def write_metrics(path: str, registry: MetricsRegistry) -> None:
    with open(path, "w") as handle:
        handle.write(metrics_json(registry))
        handle.write("\n")


def write_metrics_prometheus(path: str, registry: MetricsRegistry) -> None:
    """``--metrics FILE`` under ``--metrics-format prom``."""
    with open(path, "w") as handle:
        handle.write(registry.to_prometheus())


# ----------------------------------------------------------------------
# Human text report
# ----------------------------------------------------------------------


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}ms"


def _stage_totals(tracer: Tracer) -> List[tuple]:
    """Self-exclusive per-stage wall time would need subtraction; the
    inclusive total per stage name is what the breakdown reports (stage
    spans of the same name never nest within each other)."""
    totals = {}
    counts = {}
    for span in tracer.spans:
        if span.category != CAT_STAGE or not span.closed:
            continue
        totals[span.name] = totals.get(span.name, 0.0) + span.duration
        counts[span.name] = counts.get(span.name, 0) + 1
    ordered = [name for name in STAGES if name in totals]
    ordered += sorted(set(totals) - set(STAGES))
    return [(name, totals[name], counts[name]) for name in ordered]


def _slowest_vcs(tracer: Tracer, top: int) -> List[Span]:
    vcs = [s for s in tracer.spans if s.category == CAT_VC and s.closed]
    vcs.sort(key=lambda s: -s.duration)
    return vcs[:top]


def text_report(tracer: Tracer, *, top: int = 5) -> str:
    """The ``--profile`` report: stage breakdown, slowest VCs, hottest
    quantifiers, deadline pressure."""
    tracer.close()
    metrics = tracer.metrics
    lines: List[str] = ["== profile =="]

    totals = _stage_totals(tracer)
    if totals:
        lines.append("stage breakdown (inclusive):")
        width = max(len(name) for name, _, _ in totals)
        for name, total, count in totals:
            lines.append(
                f"  {name.ljust(width)}  {_fmt_ms(total):>10}  ({count} span(s))"
            )

    slowest = _slowest_vcs(tracer, top)
    if slowest:
        lines.append(f"slowest VCs (top {len(slowest)}):")
        for span in slowest:
            detail = ""
            if "verdict" in span.args:
                detail += f" verdict={span.args['verdict']}"
            if "instantiations" in span.args:
                detail += f" instances={span.args['instantiations']}"
            if "blame" in span.args:
                detail += f" blame[{span.args['blame']}]"
            if span.args.get("replay_ok") is not None:
                detail += f" replay_ok={span.args['replay_ok']}"
            if span.error is not None:
                detail += f" error={span.error}"
            lines.append(f"  {span.name}: {_fmt_ms(span.duration)}{detail}")

    hottest = metrics.top("prover.instantiations.by_quantifier", top)
    if hottest:
        lines.append(f"hottest quantifiers (top {len(hottest)}):")
        for quantifier, count in hottest:
            lines.append(f"  {quantifier}: {count} instance(s)")

    lines.extend(_deadline_pressure_lines(tracer))

    checks = metrics.counters.get("prover.checks", 0)
    if checks:
        timer = metrics.timers.get("prover.check_seconds")
        lines.append(
            f"prover: {checks} check(s), "
            f"{metrics.counters.get('prover.instantiations', 0)} instantiation(s), "
            f"{metrics.counters.get('prover.egraph_merges', 0)} e-graph merge(s), "
            f"max check {_fmt_ms(timer.max) if timer else 'n/a'}"
        )

    lines.extend(_fleet_lines(metrics.counters))
    return "\n".join(lines)


def _fleet_lines(counters) -> List[str]:
    """The distributed-checking block: lease/steal/requeue traffic.

    Only rendered when a fleet actually ran (any ``fleet.*`` counter
    present), so serial and pipe-parallel profiles are unchanged.
    """
    if not any(key.startswith("fleet.") for key in counters):
        return []
    get = counters.get
    lines = [
        "fleet supervision:",
        (
            f"  members: {get('fleet.registrations', 0)} registration(s), "
            f"{get('fleet.deregistrations', 0)} deregistration(s), "
            f"{get('fleet.respawns', 0)} respawn(s)"
        ),
        (
            f"  leases: {get('fleet.leases', 0)} granted / "
            f"{get('fleet.steals', 0)} steal(s), "
            f"{get('fleet.renewals', 0)} renewal(s), "
            f"{get('fleet.lease_expiries', 0)} expiration(s), "
            f"{get('fleet.requeues', 0)} requeue(s), "
            f"{get('fleet.quarantines', 0)} quarantine(s)"
        ),
    ]
    disruptions = (
        f"  disruptions: {get('fleet.partitions', 0)} partition(s), "
        f"{get('fleet.churn', 0)} churn(s), "
        f"{get('fleet.frames_rejected', 0)} rejected frame(s), "
        f"{get('fleet.stale_results', 0)} stale result(s)"
    )
    lines.append(disruptions)
    return lines


def _deadline_pressure_lines(tracer: Tracer) -> List[str]:
    """How close each proof came to its time budget, when one was set.

    Pressure is ``duration / time_budget`` of each ``prove`` stage span
    carrying a ``time_budget`` argument; resource-out and timed-out
    verdict counters round out the picture.
    """
    pressures = []
    for span in tracer.spans:
        if span.category != CAT_STAGE or span.name != "prove" or not span.closed:
            continue
        budget = span.args.get("time_budget")
        if budget:
            pressures.append((span.duration / budget, span))
    lines: List[str] = []
    if pressures:
        pressures.sort(key=lambda item: -item[0])
        worst, span = pressures[0]
        impl = span.args.get("impl", "?")
        lines.append(
            f"deadline pressure: worst {worst * 100:.1f}% of budget "
            f"({impl}, {_fmt_ms(span.duration)})"
        )
        hot = [(p, s) for p, s in pressures if p >= 0.8]
        for pressure, span in hot[:3]:
            if span is not pressures[0][1]:
                lines.append(
                    f"  also near budget: {span.args.get('impl', '?')} "
                    f"at {pressure * 100:.1f}%"
                )
    counters = tracer.metrics.counters
    starved = counters.get("checker.status.resource_out", 0)
    timed_out = counters.get("checker.status.timed_out", 0)
    if starved or timed_out:
        lines.append(
            f"deadline casualties: {starved} resource-out, "
            f"{timed_out} timed-out implementation(s)"
        )
    return lines


def validate_chrome_trace(payload: dict) -> Optional[str]:
    """Cheap structural validation; returns an error string or None.

    Used by tests and CI to assert exported traces are loadable:
    ``traceEvents`` must be a list of events whose complete events carry
    name/cat/ph/ts/dur/pid/tid with sane values.
    """
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return "traceEvents must be a non-empty list"
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            return f"event {index} is not an object"
        phase = event.get("ph")
        if phase not in ("X", "M"):
            return f"event {index} has unsupported phase {phase!r}"
        if phase == "M":
            continue
        for key in ("name", "cat", "ts", "dur", "pid", "tid"):
            if key not in event:
                return f"event {index} is missing {key!r}"
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            return f"event {index} has invalid ts {event['ts']!r}"
        if not isinstance(event["dur"], (int, float)) or event["dur"] < 0:
            return f"event {index} has invalid dur {event['dur']!r}"
    return None
