"""``repro.obs`` — zero-dependency telemetry for the checking pipeline.

Four layers:

* :mod:`repro.obs.tracer` — a span tracer covering every stage boundary
  named by :data:`repro.obs.stages.STAGES` (the same vocabulary the
  fault-injection harness keys on) plus per-implementation and per-VC
  child spans. The default is a no-op null path: with no tracer
  installed, :func:`span` costs one global read.
* :mod:`repro.obs.metrics` — a registry of counters/labelled
  counters/timers fed from ``ProverStats`` and vcgen sizes.
* :mod:`repro.obs.export` — Chrome trace-event JSON (open in Perfetto
  or ``chrome://tracing``), machine-readable metrics JSON (or the
  Prometheus text format), and the human ``--profile`` text report.
* :mod:`repro.obs.events` — a structured JSONL event journal for the
  *distributed* lifecycle (leases, worker churn, quarantines, cache
  traffic, degradation), schema-validated in-tree, with a ``--progress``
  renderer (:mod:`repro.obs.progress`) driven off the same stream.

Typical use::

    from repro import obs

    tracer = obs.Tracer()
    with obs.tracing(tracer):
        report = check_scope(scope, limits)
    obs.write_chrome_trace("out.json", tracer)
    print(obs.text_report(tracer))
"""

from repro.obs.analyze import (
    analyze_journal,
    journal_chrome_trace,
    render_report_text,
    run_ids,
    write_report,
)
from repro.obs.events import (
    EVENT_KINDS,
    EventJournal,
    emit,
    journal,
    journaling,
    read_journal,
)
from repro.obs.metrics import MetricsRegistry, TimerStat, prometheus_name
from repro.obs.progress import ProgressRenderer
from repro.obs.stages import (
    CAT_IMPL,
    CAT_PIPELINE,
    CAT_STAGE,
    CAT_VC,
    STAGES,
)
from repro.obs.tracer import (
    Span,
    Tracer,
    active,
    current,
    metrics,
    span,
    tracing,
)
from repro.obs.export import (
    chrome_trace,
    metrics_json,
    text_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
    write_metrics_prometheus,
)
from repro.obs.explain import (
    Explanation,
    InclusionCheck,
    attach_to_trace,
    explain_result,
    inclusion_chain,
)
from repro.obs.httpd import TelemetryHTTPServer, render_prometheus
from repro.obs.schema import (
    validate_event,
    validate_event_journal,
    validate_events_report,
    validate_explanation_report,
)

__all__ = [
    "CAT_IMPL",
    "CAT_PIPELINE",
    "CAT_STAGE",
    "CAT_VC",
    "EVENT_KINDS",
    "EventJournal",
    "Explanation",
    "InclusionCheck",
    "MetricsRegistry",
    "ProgressRenderer",
    "STAGES",
    "Span",
    "TelemetryHTTPServer",
    "TimerStat",
    "Tracer",
    "active",
    "analyze_journal",
    "attach_to_trace",
    "chrome_trace",
    "current",
    "emit",
    "explain_result",
    "inclusion_chain",
    "journal",
    "journal_chrome_trace",
    "journaling",
    "metrics",
    "metrics_json",
    "prometheus_name",
    "read_journal",
    "render_prometheus",
    "render_report_text",
    "run_ids",
    "span",
    "text_report",
    "tracing",
    "validate_chrome_trace",
    "validate_event",
    "validate_event_journal",
    "validate_events_report",
    "validate_explanation_report",
    "write_chrome_trace",
    "write_metrics",
    "write_metrics_prometheus",
    "write_report",
]
