"""The canonical stage vocabulary of the checking pipeline.

One tuple, shared by every subsystem that names stage boundaries:

* the fault-injection harness (:mod:`repro.testing.faults`) keys its
  injection points on these names;
* the tracer (:mod:`repro.obs.tracer`) emits a span with the same name
  at the same boundary, so a trace and an injected fault always line up;
* the metrics registry and the exporters group per-stage aggregates by
  these names.

Keep the tuple in pipeline order — reports iterate it to render stage
breakdowns in execution order. This module must stay import-free within
the package tree (it sits below both ``repro.obs`` and
``repro.testing``).
"""

from __future__ import annotations

from typing import Tuple

#: Every named stage boundary of the pipeline, in pipeline order.
STAGES: Tuple[str, ...] = (
    "lex",
    "parse",
    "wellformed",
    "pivot",
    "lint",
    "vcgen",
    "prove",
)

#: Span categories used by the tracer (``cat`` in Chrome trace events).
CAT_PIPELINE = "pipeline"
CAT_STAGE = "stage"
CAT_IMPL = "implementation"
CAT_VC = "vc"
