"""Journal analytics: reconstruct a run from its JSONL event journal.

The journal (:mod:`repro.obs.events`) records *what happened*; this
module answers the operator's questions about it after the fact —
"which worker was idle, what gated wall-clock, did the cache earn its
keep, which implementations hit OL901/OL902?" — from nothing but the
JSON Lines file a ``--events`` run leaves behind. Nothing here imports
the checker or the fleet: a journal shipped home from another machine
analyzes identically.

Three consumers sit on top of :func:`analyze_journal`:

* ``oolong events report FILE`` renders the report as text
  (:func:`render_report_text`) or JSON, pinned by
  ``report.schema.json`` next to this module;
* ``oolong events export --trace`` converts the journal's lease/job
  intervals into a Chrome trace (:func:`journal_chrome_trace`) so even
  fleet runs over *external* worker pools — whose in-process spans
  never came home — get a Perfetto timeline;
* ``benchmarks/bench_observability.py`` guards that analysis stays
  linear (``report_ms_per_10k_events``).

All analysis is single-pass over the records plus a sort; busy
intervals are reconstructed from ``lease-granted``/``job-assigned``
openings matched against ``impl-checked``/``lease-expired``/
``lease-reclaimed``/``job-hard-timeout``/``worker-died`` closings, so
both the fleet and the local supervisor backends reconstruct. The
critical path is the greedy backward chain over those intervals: from
the latest-ending interval, repeatedly hop to the latest-ending
interval that finished before the current one began — the job chain
that bounded wall-clock.
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

REPORT_SCHEMA_VERSION = 1

# Event kinds that open a busy interval for a worker.
_OPENERS = ("lease-granted", "job-assigned")
# OL9xx-carrying kinds tabulated as incidents.
_INCIDENT_KINDS = (
    "job-quarantined",
    "job-hard-timeout",
    "job-deadline",
    "cache-reject",
    "degraded",
)


class AnalysisError(ValueError):
    """Raised when the journal cannot be analyzed (no such run)."""


# ----------------------------------------------------------------------
# Run selection


def run_ids(records: Iterable[dict]) -> List[str]:
    """Distinct ``run_id`` values in first-appearance order."""
    seen: Dict[str, None] = {}
    for record in records:
        run = record.get("run_id")
        if isinstance(run, str) and run not in seen:
            seen[run] = None
    return list(seen)


def _select_run(
    records: Sequence[dict], run_id: Optional[str]
) -> Tuple[str, List[dict]]:
    if not records:
        raise AnalysisError("empty journal")
    if run_id is None:
        # Prefer the first run that actually checked something; a
        # journal from `workers serve --events` may lead with a bare
        # server-lifecycle run.
        for record in records:
            if record.get("event") == "check-start":
                run_id = str(record.get("run_id"))
                break
        else:
            run_id = str(records[0].get("run_id"))
    chosen = [r for r in records if r.get("run_id") == run_id]
    if not chosen:
        raise AnalysisError(
            f"run {run_id!r} not in journal (runs: {run_ids(records)})"
        )
    chosen.sort(key=lambda r: (r.get("seq", 0),))
    return run_id, chosen


def _as_float(value: object, default: float = 0.0) -> float:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return default


# ----------------------------------------------------------------------
# Interval reconstruction


class _Interval:
    __slots__ = (
        "worker",
        "impl",
        "index",
        "lease",
        "job",
        "attempt",
        "start",
        "end",
        "status",
        "code",
    )

    def __init__(self, record: dict):
        self.worker = str(record.get("worker", "?"))
        self.impl = record.get("impl")
        self.index = record.get("index")
        self.lease = record.get("lease")
        self.job = record.get("job")
        self.attempt = record.get("attempt")
        self.start = _as_float(record.get("t_mono"))
        self.end: Optional[float] = None
        self.status: Optional[str] = None
        self.code: Optional[str] = None

    def close(self, record: dict) -> None:
        self.end = _as_float(record.get("t_mono"), self.start)
        if self.end < self.start:
            self.end = self.start
        status = record.get("status")
        if isinstance(status, str):
            self.status = status
        code = record.get("code")
        if isinstance(code, str):
            self.code = code
        if self.impl is None and record.get("impl") is not None:
            self.impl = record.get("impl")
            self.index = record.get("index")

    @property
    def seconds(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start


def _reconstruct_intervals(records: Sequence[dict]) -> List[_Interval]:
    by_lease: Dict[object, _Interval] = {}
    by_worker: Dict[str, _Interval] = {}
    closed: List[_Interval] = []

    def _close(interval: _Interval, record: dict) -> None:
        interval.close(record)
        closed.append(interval)
        if interval.lease is not None:
            by_lease.pop(interval.lease, None)
        if by_worker.get(interval.worker) is interval:
            by_worker.pop(interval.worker, None)

    last_mono = 0.0
    for record in records:
        last_mono = max(last_mono, _as_float(record.get("t_mono"), last_mono))
        kind = record.get("event")
        if kind in _OPENERS:
            interval = _Interval(record)
            if interval.lease is not None:
                by_lease[interval.lease] = interval
            by_worker[interval.worker] = interval
            continue
        if kind in (
            "impl-checked",
            "lease-expired",
            "lease-reclaimed",
            "job-hard-timeout",
        ):
            lease = record.get("lease")
            interval = by_lease.get(lease) if lease is not None else None
            if interval is None:
                worker = record.get("worker")
                interval = (
                    by_worker.get(str(worker)) if worker is not None else None
                )
            if interval is not None:
                _close(interval, record)
            continue
        if kind == "worker-died":
            worker = record.get("worker")
            interval = (
                by_worker.get(str(worker)) if worker is not None else None
            )
            if interval is not None:
                _close(interval, record)
    # Anything still open at the end of the journal ends with the run.
    for interval in list(by_lease.values()) + list(by_worker.values()):
        if interval.end is None:
            interval.close({"t_mono": last_mono})
            closed.append(interval)
    # by_lease and by_worker can alias the same interval; dedupe while
    # preserving order.
    unique: List[_Interval] = []
    seen_ids = set()
    for interval in closed:
        if id(interval) not in seen_ids:
            seen_ids.add(id(interval))
            unique.append(interval)
    unique.sort(key=lambda i: (i.start, i.end if i.end is not None else i.start))
    return unique


# ----------------------------------------------------------------------
# Latency percentiles


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an ascending-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(1, int(math.ceil(q * len(ordered))))
    return ordered[min(rank, len(ordered)) - 1]


def _latency_summary(samples_ms: List[float]) -> dict:
    ordered = sorted(samples_ms)
    return {
        "count": len(ordered),
        "p50_ms": round(_percentile(ordered, 0.50), 3),
        "p90_ms": round(_percentile(ordered, 0.90), 3),
        "p99_ms": round(_percentile(ordered, 0.99), 3),
        "max_ms": round(ordered[-1], 3) if ordered else 0.0,
    }


# ----------------------------------------------------------------------
# Critical path


def _critical_path(
    intervals: Sequence[_Interval], run_start: float, wall: float
) -> dict:
    jobs = sorted(
        (i for i in intervals if i.impl is not None and i.end is not None),
        key=lambda i: (i.end, i.start),
    )
    chain: List[_Interval] = []
    if jobs:
        # Each hop wants the latest-ending job with end <= current.start.
        # With jobs sorted by end, that's one bisect per hop instead of a
        # scan — soak-sized journals (a long back-to-back chain) would
        # otherwise make this pass quadratic.
        ends = [i.end for i in jobs]
        pos = len(jobs) - 1
        chain.append(jobs[pos])
        while True:
            # min() keeps a zero-duration interval (end == start) from
            # satisfying its own predicate and looping forever.
            cut = min(bisect.bisect_right(ends, jobs[pos].start), pos)
            if cut == 0:
                break
            pos = cut - 1
            chain.append(jobs[pos])
        chain.reverse()
    total = sum(i.seconds for i in chain)
    return {
        "seconds": round(total, 6),
        "coverage": round(total / wall, 4) if wall > 0 else 0.0,
        "chain": [
            {
                "impl": str(i.impl),
                "index": i.index if isinstance(i.index, int) else -1,
                "worker": i.worker,
                "start": round(i.start - run_start, 6),
                "end": round((i.end or i.start) - run_start, 6),
                "seconds": round(i.seconds, 6),
                "status": i.status,
                "code": i.code,
            }
            for i in chain
        ],
    }


# ----------------------------------------------------------------------
# The report


def analyze_journal(
    records: Sequence[dict], run_id: Optional[str] = None
) -> dict:
    """Reconstruct one run from its journal records.

    ``records`` is the parsed journal (:func:`repro.obs.read_journal`);
    ``run_id`` selects the run in a multi-run (``--events-append``)
    file, defaulting to the first run containing a ``check-start``.
    Returns the report dict pinned by ``report.schema.json``.
    """
    run_id, records = _select_run(list(records), run_id)
    run_start = _as_float(records[0].get("t_mono"))
    run_end = run_start
    backend: Optional[str] = None
    ok: Optional[bool] = None
    impls_announced = 0
    event_counts: Dict[str, int] = {}
    for record in records:
        run_end = max(run_end, _as_float(record.get("t_mono"), run_end))
        kind = str(record.get("event", "?"))
        event_counts[kind] = event_counts.get(kind, 0) + 1
        if kind == "check-start":
            backend = record.get("backend") or backend
            impls_announced = int(_as_float(record.get("impls")))
        elif kind == "check-end":
            value = record.get("ok")
            if isinstance(value, bool):
                ok = value
    wall = max(run_end - run_start, 0.0)

    intervals = _reconstruct_intervals(records)

    # Per-worker utilization and idle gaps.
    worker_rows: List[dict] = []
    by_worker: Dict[str, List[_Interval]] = {}
    for interval in intervals:
        by_worker.setdefault(interval.worker, []).append(interval)
    first_seen: Dict[str, float] = {}
    for record in records:
        if record.get("event") in ("worker-registered", "worker-spawn"):
            name = record.get("worker")
            if name is not None:
                first_seen.setdefault(
                    str(name), _as_float(record.get("t_mono"), run_start)
                )
    for worker in sorted(
        set(by_worker) | set(first_seen), key=lambda w: (w not in by_worker, w)
    ):
        spans = by_worker.get(worker, [])
        busy = sum(i.seconds for i in spans)
        seen = first_seen.get(
            worker, spans[0].start if spans else run_start
        )
        horizon = max(run_end - seen, 0.0)
        # Idle gaps between consecutive busy intervals plus the lead-in
        # and tail; only gaps that are genuinely observable (positive).
        gaps: List[float] = []
        cursor = seen
        for interval in spans:
            if interval.start > cursor:
                gaps.append(interval.start - cursor)
            cursor = max(cursor, interval.end or interval.start)
        if run_end > cursor:
            gaps.append(run_end - cursor)
        worker_rows.append(
            {
                "worker": worker,
                "jobs": len(spans),
                "busy_seconds": round(busy, 6),
                "utilization": round(busy / horizon, 4) if horizon > 0 else 0.0,
                "idle_gaps": len(gaps),
                "longest_idle_seconds": round(max(gaps), 6) if gaps else 0.0,
            }
        )

    # Lease latencies: grant -> first renewal (heartbeat) and
    # grant -> result. Only the first renewal of each lease counts as
    # its heartbeat sample.
    grant_t: Dict[object, float] = {}
    beaten: set = set()
    first_beat: List[float] = []
    to_result: List[float] = []
    for record in records:
        kind = record.get("event")
        lease = record.get("lease")
        if lease is None:
            continue
        t = _as_float(record.get("t_mono"))
        if kind == "lease-granted":
            grant_t[lease] = t
            beaten.discard(lease)
        elif kind == "lease-renewed":
            if lease in grant_t and lease not in beaten:
                beaten.add(lease)
                first_beat.append((t - grant_t[lease]) * 1000.0)
        elif kind == "impl-checked" and lease in grant_t:
            to_result.append((t - grant_t.pop(lease)) * 1000.0)

    lease_counts = {
        "granted": event_counts.get("lease-granted", 0),
        "renewed": event_counts.get("lease-renewed", 0),
        "expired": event_counts.get("lease-expired", 0),
        "reclaimed": event_counts.get("lease-reclaimed", 0),
    }

    # Implementation outcomes, deduped by (impl, index): a degraded
    # fleet re-announces its completed jobs as `preresolved` records and
    # the last announcement wins.
    final: Dict[Tuple[object, object], dict] = {}
    for record in records:
        if record.get("event") == "impl-checked":
            final[(record.get("impl"), record.get("index"))] = record
    statuses: Dict[str, int] = {}
    for record in final.values():
        status = str(record.get("status", "?"))
        statuses[status] = statuses.get(status, 0) + 1
    by_code = {"OL901": 0, "OL902": 0, "OL903": 0, "OL904": 0}
    for record in final.values():
        code = record.get("code")
        if code in ("OL901", "OL902"):
            by_code[str(code)] += 1
    by_code["OL903"] = event_counts.get("cache-reject", 0)
    by_code["OL904"] = event_counts.get("degraded", 0)

    incidents: List[dict] = []
    for record in records:
        kind = str(record.get("event"))
        if kind not in _INCIDENT_KINDS:
            continue
        code = record.get("code")
        incidents.append(
            {
                "event": kind,
                "code": str(code) if isinstance(code, str) else "",
                "impl": str(record.get("impl", "")) or "",
                "index": (
                    record.get("index")
                    if isinstance(record.get("index"), int)
                    else -1
                ),
                "worker": str(record.get("worker", "")) or "",
                "detail": str(
                    record.get("reason", record.get("key", ""))
                ),
                "at": round(
                    _as_float(record.get("t_mono")) - run_start, 6
                ),
            }
        )

    cache_hits = event_counts.get("cache-hit", 0)
    cache_misses = event_counts.get("cache-miss", 0)
    lookups = cache_hits + cache_misses
    bytes_saved = 0
    for record in records:
        if record.get("event") == "cache-hit":
            bytes_saved += int(_as_float(record.get("bytes")))

    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "run_id": run_id,
        "backend": backend or "unknown",
        "ok": ok,
        "impls": impls_announced or len(final),
        "wall_seconds": round(wall, 6),
        "events": len(records),
        "event_counts": event_counts,
        "workers": worker_rows,
        "leases": {
            "counts": lease_counts,
            "grant_to_first_heartbeat": _latency_summary(first_beat),
            "grant_to_result": _latency_summary(to_result),
        },
        "faults": {
            "retries": event_counts.get("job-retry", 0),
            "quarantined": event_counts.get("job-quarantined", 0),
            "hard_timeouts": event_counts.get("job-hard-timeout", 0),
            "deadline": event_counts.get("job-deadline", 0),
            "cache_rejects": event_counts.get("cache-reject", 0),
            "degraded": event_counts.get("degraded", 0),
            "by_code": by_code,
            "incidents": incidents,
        },
        "cache": {
            "hits": cache_hits,
            "misses": cache_misses,
            "stores": event_counts.get("cache-store", 0),
            "evictions": event_counts.get("cache-evict", 0),
            "rejects": event_counts.get("cache-reject", 0),
            "hit_ratio": round(cache_hits / lookups, 4) if lookups else 0.0,
            "bytes_saved": bytes_saved,
        },
        "statuses": statuses,
        "critical_path": _critical_path(intervals, run_start, wall),
    }


# ----------------------------------------------------------------------
# Text rendering


def _fmt_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(
        str(cell).ljust(width) for cell, width in zip(cells, widths)
    ).rstrip()


def render_report_text(report: dict) -> str:
    """The operator-facing text rendering of one analyzed run."""
    lines: List[str] = []
    ok = report.get("ok")
    verdict = "ok" if ok else ("FAILED" if ok is False else "unknown")
    lines.append(
        f"run {report['run_id']}  backend={report['backend']}  "
        f"impls={report['impls']}  result={verdict}  "
        f"wall={report['wall_seconds']:.3f}s  events={report['events']}"
    )

    workers = report.get("workers", [])
    if workers:
        lines.append("")
        lines.append("workers")
        header = (
            "worker", "jobs", "busy_s", "util", "idle_gaps", "longest_idle_s"
        )
        rows = [
            (
                w["worker"],
                w["jobs"],
                f"{w['busy_seconds']:.3f}",
                f"{100 * w['utilization']:.1f}%",
                w["idle_gaps"],
                f"{w['longest_idle_seconds']:.3f}",
            )
            for w in workers
        ]
        widths = [
            max(len(str(header[i])), *(len(str(r[i])) for r in rows))
            for i in range(len(header))
        ]
        lines.append("  " + _fmt_row(header, widths))
        for row in rows:
            lines.append("  " + _fmt_row([str(c) for c in row], widths))

    leases = report.get("leases", {})
    counts = leases.get("counts", {})
    if counts.get("granted"):
        lines.append("")
        lines.append(
            "leases  granted={granted} renewed={renewed} "
            "expired={expired} reclaimed={reclaimed}".format(**counts)
        )
        for label, key in (
            ("grant->first-heartbeat", "grant_to_first_heartbeat"),
            ("grant->result", "grant_to_result"),
        ):
            stat = leases.get(key, {})
            if stat.get("count"):
                lines.append(
                    f"  {label}  n={stat['count']}  p50={stat['p50_ms']}ms"
                    f"  p90={stat['p90_ms']}ms  p99={stat['p99_ms']}ms"
                    f"  max={stat['max_ms']}ms"
                )

    faults = report.get("faults", {})
    by_code = faults.get("by_code", {})
    lines.append("")
    lines.append(
        "faults  retries={r} quarantined={q} hard_timeouts={h} "
        "deadline={d}  OL901={c1} OL902={c2} OL903={c3} OL904={c4}".format(
            r=faults.get("retries", 0),
            q=faults.get("quarantined", 0),
            h=faults.get("hard_timeouts", 0),
            d=faults.get("deadline", 0),
            c1=by_code.get("OL901", 0),
            c2=by_code.get("OL902", 0),
            c3=by_code.get("OL903", 0),
            c4=by_code.get("OL904", 0),
        )
    )
    for incident in faults.get("incidents", []):
        where = incident["impl"] or incident["detail"] or "-"
        index = incident["index"]
        if index >= 0:
            where = f"{where}#{index}"
        lines.append(
            f"  [{incident['code'] or '-----'}] {incident['event']}  "
            f"{where}  t+{incident['at']:.3f}s"
            + (f"  ({incident['detail']})" if incident["detail"] else "")
        )

    cache = report.get("cache", {})
    if cache.get("hits") or cache.get("misses") or cache.get("stores"):
        lines.append("")
        lines.append(
            "cache  hits={hits} misses={misses} stores={stores} "
            "rejects={rejects} evictions={evictions} "
            "hit_ratio={hit_ratio:.1%} bytes_saved={bytes_saved}".format(
                **cache
            )
        )

    statuses = report.get("statuses", {})
    if statuses:
        lines.append("")
        lines.append(
            "verdicts  "
            + "  ".join(
                f"{status}={count}"
                for status, count in sorted(statuses.items())
            )
        )

    path = report.get("critical_path", {})
    chain = path.get("chain", [])
    lines.append("")
    if chain:
        lines.append(
            f"critical path  {path['seconds']:.3f}s over {len(chain)} "
            f"job(s)  ({100 * path['coverage']:.1f}% of wall-clock)"
        )
        for link in chain:
            suffix = f" [{link['code']}]" if link.get("code") else ""
            lines.append(
                f"  t+{link['start']:.3f}s  {link['impl']}#{link['index']}"
                f"  {link['seconds']:.3f}s  on {link['worker']}"
                f"  {link.get('status') or ''}{suffix}".rstrip()
            )
    else:
        lines.append("critical path  (no job intervals in this journal)")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Chrome trace from the journal alone

_JOURNAL_TRACE_PID = 1
_MARKER_TID = 1


def journal_chrome_trace(
    records: Sequence[dict],
    run_id: Optional[str] = None,
    *,
    process_name: str = "oolong-journal",
) -> dict:
    """A Chrome trace reconstructed purely from journal records.

    Busy intervals become complete ("X") events on one lane per worker;
    OL9xx incidents and run lifecycle markers become zero-duration "X"
    events on a marker lane. The output passes
    :func:`repro.obs.export.validate_chrome_trace` — every timestamp is
    rebased on the run's first record, so nothing is negative even when
    the journal came from another machine.
    """
    run_id, records = _select_run(list(records), run_id)
    run_start = _as_float(records[0].get("t_mono"))
    events: List[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _JOURNAL_TRACE_PID,
            "tid": 0,
            "args": {"name": f"{process_name} {run_id}"},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": _JOURNAL_TRACE_PID,
            "tid": _MARKER_TID,
            "args": {"name": "events"},
        },
    ]
    lanes: Dict[str, int] = {}

    def _lane(worker: str) -> int:
        if worker not in lanes:
            lanes[worker] = _MARKER_TID + 1 + len(lanes)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": _JOURNAL_TRACE_PID,
                    "tid": lanes[worker],
                    "args": {"name": f"worker {worker}"},
                }
            )
        return lanes[worker]

    for interval in _reconstruct_intervals(records):
        name = (
            f"{interval.impl}#{interval.index}"
            if interval.impl is not None
            else f"job {interval.job}"
        )
        args = {"worker": interval.worker}
        if interval.lease is not None:
            args["lease"] = interval.lease
        if interval.attempt is not None:
            args["attempt"] = interval.attempt
        if interval.status is not None:
            args["status"] = interval.status
        if interval.code is not None:
            args["code"] = interval.code
        events.append(
            {
                "ph": "X",
                "name": name,
                "cat": "implementation",
                "ts": round(max(interval.start - run_start, 0.0) * 1e6, 3),
                "dur": round(max(interval.seconds, 0.0) * 1e6, 3),
                "pid": _JOURNAL_TRACE_PID,
                "tid": _lane(interval.worker),
                "args": args,
            }
        )

    marker_kinds = set(_INCIDENT_KINDS) | {
        "check-start",
        "check-end",
        "job-retry",
        "worker-died",
        "worker-partition",
        "frame-rejected",
        "frame-resync",
    }
    for record in records:
        kind = str(record.get("event"))
        if kind not in marker_kinds:
            continue
        args = {
            key: record[key]
            for key in ("impl", "index", "worker", "code", "reason", "job")
            if key in record
        }
        events.append(
            {
                "ph": "X",
                "name": kind,
                "cat": "event",
                "ts": round(
                    max(_as_float(record.get("t_mono")) - run_start, 0.0)
                    * 1e6,
                    3,
                ),
                "dur": 0.0,
                "pid": _JOURNAL_TRACE_PID,
                "tid": _MARKER_TID,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_report(path: str, report: dict) -> None:
    """Write one analyzed report as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
