"""Explainable verdicts: blame reports and auditable proofs.

PR 3 made the pipeline observable in *time and work*; this module makes
it observable in *reasoning*. Two verdict stories are told:

* **Blame** (``NOT_PROVED``, and resource/timeout verdicts where an
  obligation was identified): the prover's refuting branch — kept as a
  :class:`repro.prover.countermodel.Countermodel` instead of being
  discarded — is translated back through the vcgen vocabulary into a
  source-anchored report: which command wrote which field at which
  ``file:line``, which modifies-list entries the write-licence was
  checked against, and which inclusion chain (local ``≽`` and rep
  ``—field→`` edges) failed to license it.
* **Proof** (``VERIFIED``): the prover's append-only
  :class:`repro.prover.prooflog.ProofLog` is re-validated by the
  independent :func:`repro.prover.prooflog.replay_proof_log` kernel, so
  "verified" is auditable rather than trusted.

:func:`explain_result` builds the :class:`Explanation`;
:func:`attach_to_trace` folds a compact summary into the per-VC span of
the installed tracer so Perfetto shows failure reasons inline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.logic.terms import Const
from repro.prover.countermodel import Countermodel
from repro.prover.prooflog import ProofLog, ReplayResult, replay_proof_log

#: Version stamp of the ``--explain-format json`` payload, checked by
#: ``explanations.schema.json``.
SCHEMA_VERSION = 1

#: The entry-store constant of the VC vocabulary (``$0``) — the store a
#: method's own modifies list is evaluated in, hence the store argument
#: of the ``inc`` atoms a write/call licence is decided on.
_ENTRY_STORE = Const("$0")


def _attr_const_name(attr: str) -> str:
    return f"attr${attr}"


# ---------------------------------------------------------------------------
# Static inclusion chains (scope declarations, no prover involved)
# ---------------------------------------------------------------------------


def _inclusion_edges(scope) -> Dict[str, List[Tuple[str, str]]]:
    """Downward inclusion edges declared by the scope.

    ``u -> [(label, v), ...]``: local edges ``g ≽ member`` for every
    attribute declaring ``in g``, and rep edges ``g —field→ mapped`` for
    every pivot maps-into clause.
    """
    edges: Dict[str, List[Tuple[str, str]]] = {}
    for name in scope.attribute_names():
        decl = scope.attribute(name)
        for group in decl.in_groups:
            edges.setdefault(group, []).append(("≽", name))
    for field_name, group, mapped in scope.all_rep_triples():
        edges.setdefault(group, []).append((f"—{field_name}→", mapped))
    return edges


def inclusion_chain(scope, from_attr: str, to_attr: str) -> Optional[str]:
    """The declared inclusion chain from ``from_attr`` down to
    ``to_attr``, rendered (``w ≽ cnt``, ``g —f→ b ≽ a``), or None when
    the scope declares no such chain — which is exactly why the licence
    check failed."""
    if from_attr == to_attr:
        return from_attr
    edges = _inclusion_edges(scope)
    parents: Dict[str, Tuple[str, str]] = {}  # node -> (label, predecessor)
    queue = [from_attr]
    seen = {from_attr}
    while queue:
        node = queue.pop(0)
        for label, successor in edges.get(node, ()):
            if successor in seen:
                continue
            seen.add(successor)
            parents[successor] = (label, node)
            if successor == to_attr:
                hops: List[str] = [successor]
                while successor != from_attr:
                    label, successor = parents[successor]
                    hops.append(label)
                    hops.append(successor)
                return " ".join(reversed(hops))
            queue.append(successor)
    return None


# ---------------------------------------------------------------------------
# Countermodel interrogation
# ---------------------------------------------------------------------------


def _refuted_inclusions(
    model: Countermodel, entry_attr: str, written_attr: Optional[str]
) -> List[str]:
    """The false ``inc`` atoms deciding a write/call licence.

    Under the ordered goal negation, the refuting branch asserts the
    licence's ``incl`` disjunction *false* — one ground
    ``inc($0, owner, attr$entry, obj, attr$written)`` atom per modifies
    entry. Matching them by the entry-store and attribute-constant
    representatives recovers exactly the inclusion the branch refuted.
    """
    store_rep = model.rep(_ENTRY_STORE)
    entry_rep = model.rep(Const(_attr_const_name(entry_attr)))
    written_rep = (
        model.rep(Const(_attr_const_name(written_attr)))
        if written_attr is not None
        else None
    )
    found: List[str] = []
    for child_reps, truth in model.atoms("inc"):
        if truth is not False or len(child_reps) != 5:
            continue
        if child_reps[0] != store_rep or child_reps[2] != entry_rep:
            continue
        if written_rep is not None and child_reps[4] != written_rep:
            continue
        found.append("(inc " + " ".join(child_reps) + ") = false")
    return sorted(found)


def _violating_inclusions(
    model: Countermodel, entry_attr: str
) -> List[str]:
    """The true ``inc`` atoms witnessing an owner-exclusion violation.

    Owner exclusion forbids ``incl``; its refutation asserts some
    ``inc(S, owner, attr$entry, X, A)`` atom *true*.
    """
    entry_rep = model.rep(Const(_attr_const_name(entry_attr)))
    found: List[str] = []
    for child_reps, truth in model.atoms("inc"):
        if truth is not True or len(child_reps) != 5:
            continue
        if child_reps[2] != entry_rep:
            continue
        found.append("(inc " + " ".join(child_reps) + ") = true")
    return sorted(found)


# ---------------------------------------------------------------------------
# The explanation data model
# ---------------------------------------------------------------------------


@dataclass
class InclusionCheck:
    """One modifies-list entry a licence was checked against."""

    entry: str  # source text of the modifies entry, e.g. "t.w"
    entry_attr: str  # its attribute (the "w" of "t.w")
    written_attr: Optional[str]  # the attribute being written
    #: The declared inclusion chain from ``entry_attr`` down to
    #: ``written_attr`` — None when the scope declares none.
    chain: Optional[str]
    #: Countermodel witnesses: the ``inc`` atoms deciding this check.
    witnesses: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "entry": self.entry,
            "entry_attr": self.entry_attr,
            "written_attr": self.written_attr,
            "chain": self.chain,
            "witnesses": list(self.witnesses),
        }

    def describe(self) -> str:
        if self.chain is not None:
            status = f"declared chain: {self.chain}"
        elif self.written_attr is not None:
            status = (
                f"no declared inclusion chain from "
                f"{self.entry_attr!r} to {self.written_attr!r}"
            )
        else:
            status = "checked"
        text = f"{self.entry}: {status}"
        for witness in self.witnesses:
            text += f"\n  countermodel: {witness}"
        return text


@dataclass
class Explanation:
    """Why one implementation got its verdict.

    ``kind`` is ``"blame"`` (a failure anchored to a source command),
    ``"proof"`` (a replayable refutation log), or ``"none"`` (nothing to
    explain — e.g. an internal error before the prover ran).
    """

    kind: str
    impl: str
    index: int
    status: str
    #: Blame: the structured obligation (``ObligationInfo.to_dict()``).
    obligation: Optional[dict] = None
    #: Blame: one check per modifies-list entry of the licence.
    checks: List[InclusionCheck] = field(default_factory=list)
    #: Blame: the countermodel summary (``Countermodel.to_dict()``).
    countermodel: Optional[dict] = None
    #: Proof: the full log (kept as an object for programmatic replay) …
    proof_log: Optional[ProofLog] = None
    #: … and the independent replay verdict over it.
    replay: Optional[ReplayResult] = None

    def to_dict(self, *, max_steps: int = 200) -> dict:
        proof = None
        if self.proof_log is not None:
            proof = self.proof_log.to_dict(max_steps=max_steps)
            proof["replay_ok"] = (
                self.replay.ok if self.replay is not None else None
            )
            proof["replay"] = (
                self.replay.describe() if self.replay is not None else None
            )
        return {
            "kind": self.kind,
            "impl": self.impl,
            "index": self.index,
            "status": self.status,
            "obligation": self.obligation,
            "checks": [check.to_dict() for check in self.checks],
            "countermodel": self.countermodel,
            "proof": proof,
        }

    def render_text(self) -> str:
        head = f"{self.kind}: impl {self.impl}#{self.index} — {self.status}"
        lines = [head]
        if self.kind == "proof":
            assert self.proof_log is not None
            counts = self.proof_log.counts()
            rendered = " ".join(
                f"{kind}={count}" for kind, count in sorted(counts.items())
            )
            lines.append(
                f"  proof log: {len(self.proof_log)} step(s) ({rendered})"
            )
            if self.replay is not None:
                lines.append(f"  {self.replay.describe()}")
            return "\n".join(lines)
        if self.obligation is not None:
            lines.append(
                f"  obligation #{self.obligation.get('ident')}: "
                f"{self.obligation.get('kind')}: "
                f"{self.obligation.get('description')}"
            )
            if self.obligation.get("position"):
                lines.append(f"  source: {self.obligation['position']}")
            if self.obligation.get("target"):
                what = "wrote" if self.obligation.get("kind") == "write-licence" else "on"
                detail = f"  {what}: {self.obligation['target']}"
                if self.obligation.get("attr"):
                    detail += f" (attribute {self.obligation['attr']!r})"
                lines.append(detail)
            if self.obligation.get("callee"):
                lines.append(f"  callee: {self.obligation['callee']}")
        if self.checks:
            listed = ", ".join(
                self.obligation.get("modifies", []) if self.obligation else []
            )
            lines.append(f"  checked against modifies list [{listed}]:")
            for check in self.checks:
                lines.append("    " + check.describe().replace("\n", "\n    "))
        if self.countermodel is not None:
            merged = len(self.countermodel.get("classes", {}))
            instances = len(self.countermodel.get("instances", []))
            markers = self.countermodel.get("markers", [])
            lines.append(
                f"  countermodel: {merged} merged class(es), "
                f"{instances} quantifier instance(s), markers {markers}"
            )
        if len(lines) == 1:
            lines.append("  (no further detail available)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def _blame_checks(
    scope, obligation, model: Optional[Countermodel]
) -> List[InclusionCheck]:
    checks: List[InclusionCheck] = []
    written_attr = obligation.attr
    for entry in obligation.modifies:
        entry_attr = entry.split(".")[-1]
        chain = (
            inclusion_chain(scope, entry_attr, written_attr)
            if written_attr is not None
            else None
        )
        witnesses: List[str] = []
        if model is not None:
            if obligation.kind == "owner-exclusion":
                witnesses = _violating_inclusions(model, entry_attr)
            else:
                witnesses = _refuted_inclusions(model, entry_attr, written_attr)
        checks.append(
            InclusionCheck(
                entry=entry,
                entry_attr=entry_attr,
                written_attr=written_attr,
                chain=chain,
                witnesses=witnesses,
            )
        )
    return checks


def explain_result(
    scope, impl_name: str, index: int, status: str, obligation, result
) -> Explanation:
    """Build the explanation for one implementation's verdict.

    ``obligation`` is the :class:`repro.vcgen.wlp.ObligationInfo` the
    checker identified as failed/pending (or None); ``result`` the
    :class:`repro.prover.core.ProverResult` (or None when the prover
    never ran). Only called in explain mode — the default path never
    reaches this module.
    """
    if result is not None and result.proof_log is not None:
        return Explanation(
            kind="proof",
            impl=impl_name,
            index=index,
            status=status,
            proof_log=result.proof_log,
            replay=replay_proof_log(result.proof_log),
        )
    model = result.countermodel if result is not None else None
    if obligation is None and model is None:
        return Explanation(
            kind="none", impl=impl_name, index=index, status=status
        )
    explanation = Explanation(
        kind="blame",
        impl=impl_name,
        index=index,
        status=status,
        obligation=obligation.to_dict() if obligation is not None else None,
        countermodel=model.to_dict() if model is not None else None,
    )
    if obligation is not None:
        explanation.checks = _blame_checks(scope, obligation, model)
    return explanation


def blame_summary(explanation: Explanation) -> Optional[str]:
    """A one-line blame summary (for span args and report lines)."""
    if explanation.kind != "blame" or explanation.obligation is None:
        return None
    parts = [
        f"{explanation.obligation.get('kind')}",
        f"{explanation.obligation.get('description')}",
    ]
    missing = [c.entry for c in explanation.checks if c.chain is None]
    if missing:
        parts.append(f"no inclusion chain from {', '.join(missing)}")
    return " — ".join(part for part in parts if part)


def attach_to_trace(explanation: Explanation) -> None:
    """Fold a compact explanation summary into the per-VC span.

    Spans are plain records on the installed tracer, so the (already
    closed) ``vc <impl>`` span can still take args — Perfetto then shows
    the failure reason inline with the timing. No-op without a tracer.
    """
    from repro.obs import CAT_VC, current

    tracer = current()
    if tracer is None:
        return
    target = None
    for span in tracer.spans:
        if span.category == CAT_VC and span.name == f"vc {explanation.impl}":
            target = span  # last one wins: vcgen and prove both emit one
    if target is None:
        return
    args: dict = {"explanation": explanation.kind}
    summary = blame_summary(explanation)
    if summary is not None:
        args["blame"] = summary
    if explanation.replay is not None:
        args["replay_ok"] = explanation.replay.ok
        args["proof_steps"] = (
            len(explanation.proof_log) if explanation.proof_log else 0
        )
    target.args.update(args)
