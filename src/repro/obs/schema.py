"""A dependency-free JSON-schema subset interpreter.

The CI observability job validates ``--explain-format json`` payloads
against the in-tree ``explanations.schema.json``. The container policy
forbids third-party validators, so this module interprets the subset of
JSON Schema the in-tree schemas actually use:

``type`` (string or list of strings), ``properties`` / ``required`` /
``additionalProperties: false``, ``items``, ``enum``, and ``anyOf``.

:func:`validate` returns a list of human-readable errors (empty when the
instance conforms) rather than raising, so callers can report every
violation at once.
"""

from __future__ import annotations

import json
import os
from typing import Any, List

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: Any, name: str) -> bool:
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    expected = _TYPES.get(name)
    if expected is None:
        raise ValueError(f"unsupported schema type: {name!r}")
    if expected is bool:
        return isinstance(value, bool)
    if expected is dict or expected is list:
        return isinstance(value, expected)
    # strings/null: exact, and ints must not pass as strings etc.
    return isinstance(value, expected) and not isinstance(value, bool)


def validate(instance: Any, schema: dict, path: str = "$") -> List[str]:
    """All schema violations of ``instance``, as ``path: message`` lines."""
    errors: List[str] = []

    if "enum" in schema:
        if instance not in schema["enum"]:
            errors.append(f"{path}: {instance!r} not in {schema['enum']!r}")
        return errors

    if "anyOf" in schema:
        branches = schema["anyOf"]
        failures: List[List[str]] = []
        for branch in branches:
            branch_errors = validate(instance, branch, path)
            if not branch_errors:
                return errors
            failures.append(branch_errors)
        flat = "; ".join(error for branch in failures for error in branch)
        errors.append(f"{path}: no anyOf branch matched ({flat})")
        return errors

    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(_type_ok(instance, name) for name in names):
            errors.append(
                f"{path}: expected {'/'.join(names)}, "
                f"got {type(instance).__name__}"
            )
            return errors

    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required property {key!r}")
        properties = schema.get("properties", {})
        for key, value in instance.items():
            if key in properties:
                errors.extend(validate(value, properties[key], f"{path}.{key}"))
            elif schema.get("additionalProperties") is False:
                errors.append(f"{path}: unexpected property {key!r}")

    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            errors.extend(
                validate(item, schema["items"], f"{path}[{index}]")
            )

    return errors


def load_schema(name: str) -> dict:
    """Load an in-tree schema (e.g. ``explanations.schema.json``)."""
    with open(os.path.join(os.path.dirname(__file__), name)) as handle:
        return json.load(handle)


def validate_explanation_report(payload: Any) -> List[str]:
    """Violations of the ``--explain-format json`` payload schema."""
    return validate(payload, load_schema("explanations.schema.json"))


def validate_event(record: Any) -> List[str]:
    """Violations of one event-journal record against the in-tree schema."""
    return validate(record, load_schema("events.schema.json"))


def validate_event_journal(records: Any) -> List[str]:
    """Violations across a whole journal (a list of records).

    Beyond per-record schema checks this enforces the journal-level
    invariants the merge tooling relies on: ``seq`` strictly increasing
    per ``run_id``, and ``t_mono`` non-decreasing per ``run_id``.
    """
    if not isinstance(records, list):
        return ["$: expected a list of event records"]
    schema = load_schema("events.schema.json")
    errors: List[str] = []
    last_seq: dict = {}
    last_mono: dict = {}
    for index, record in enumerate(records):
        path = f"$[{index}]"
        record_errors = validate(record, schema, path)
        errors.extend(record_errors)
        if record_errors or not isinstance(record, dict):
            continue
        run_id = record["run_id"]
        seq = record["seq"]
        if run_id in last_seq and seq <= last_seq[run_id]:
            errors.append(
                f"{path}: seq {seq} not after {last_seq[run_id]} "
                f"for run {run_id!r}"
            )
        last_seq[run_id] = seq
        mono = record["t_mono"]
        if run_id in last_mono and mono < last_mono[run_id]:
            errors.append(
                f"{path}: t_mono went backwards for run {run_id!r}"
            )
        last_mono[run_id] = mono
    return errors


def validate_events_report(payload: Any) -> List[str]:
    """Violations of an ``oolong events report`` JSON payload."""
    return validate(payload, load_schema("report.schema.json"))
