"""A live progress renderer driven off the event journal.

``--progress`` attaches a :class:`ProgressRenderer` as a listener on the
run's :class:`~repro.obs.events.EventJournal` and repaints one status
line as lifecycle events arrive::

    checked 37/96 impls | 5 leases out | 12 cache hits | 1 quarantined | eta 14s

On a TTY the line is repainted in place (carriage return, no scroll);
when stderr is redirected it degrades to one plain line every few
seconds so logs stay readable.  Rendering is rate-limited and the
listener does nothing but integer bookkeeping otherwise, so it is safe
to leave attached on large fleet runs.

Jobs are deduplicated by ``(impl, index)``: a degraded fleet run hands
its finished jobs to the local supervisor as preresolved work, which
re-announces them — the renderer (and anyone else consuming journals)
must count each implementation once.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Optional, Set, Tuple, TextIO


class ProgressRenderer:
    """Event-journal listener that paints a one-line live status."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        *,
        min_interval: float = 0.1,
        line_interval: float = 2.0,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.line_interval = line_interval
        try:
            self.isatty = bool(self.stream.isatty())
        except Exception:
            self.isatty = False
        self.total: Optional[int] = None
        self.done: Set[Tuple[str, int]] = set()
        self.cache_hits = 0
        self.quarantined = 0
        self.leases: Set[int] = set()
        self.renders = 0
        self._started: Optional[float] = None
        self._last_render = 0.0
        self._last_width = 0
        self._finished = False

    # ------------------------------------------------------------------
    # journal listener

    def __call__(self, record: Dict[str, object]) -> None:
        event = record.get("event")
        if self._started is None:
            self._started = float(record.get("t_mono", time.monotonic()))
        if event == "check-start":
            impls = record.get("impls")
            if isinstance(impls, int):
                self.total = impls
        elif event == "impl-checked":
            key = (str(record.get("impl")), int(record.get("index", -1)))
            self.done.add(key)
            if record.get("cache_hit"):
                self.cache_hits += 1
            lease = record.get("lease")
            if isinstance(lease, int):
                self.leases.discard(lease)
        elif event == "cache-hit":
            pass  # counted via impl-checked to avoid double counting
        elif event == "lease-granted":
            lease = record.get("lease")
            if isinstance(lease, int):
                self.leases.add(lease)
        elif event in ("lease-expired", "lease-reclaimed"):
            lease = record.get("lease")
            if isinstance(lease, int):
                self.leases.discard(lease)
        elif event == "job-quarantined":
            self.quarantined += 1
        elif event == "check-end":
            self.finish(float(record.get("t_mono", time.monotonic())))
            return
        self._maybe_render(float(record.get("t_mono", time.monotonic())))

    # ------------------------------------------------------------------
    # rendering

    def status_line(self, now: Optional[float] = None) -> str:
        done = len(self.done)
        total = f"/{self.total}" if self.total is not None else ""
        parts = [f"checked {done}{total} impls"]
        if self.leases:
            parts.append(f"{len(self.leases)} leases out")
        if self.cache_hits:
            parts.append(f"{self.cache_hits} cache hits")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        eta = self._eta(now)
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        return " | ".join(parts)

    def _eta(self, now: Optional[float]) -> Optional[float]:
        done = len(self.done)
        if not done or self.total is None or self._started is None:
            return None
        remaining = self.total - done
        if remaining <= 0:
            return None
        elapsed = (now if now is not None else time.monotonic()) - self._started
        if elapsed <= 0:
            return None
        return remaining * (elapsed / done)

    def _maybe_render(self, now: float) -> None:
        if self._finished:
            return
        interval = self.min_interval if self.isatty else self.line_interval
        if now - self._last_render < interval:
            return
        self._render(now)

    def _render(self, now: float) -> None:
        line = self.status_line(now)
        try:
            if self.isatty:
                pad = " " * max(0, self._last_width - len(line))
                self.stream.write("\r" + line + pad)
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
        except Exception:
            return  # a closed stderr must never fail the check
        self._last_width = len(line)
        self._last_render = now
        self.renders += 1

    def finish(self, now: Optional[float] = None) -> None:
        """Paint the final state and terminate the in-place line."""
        if self._finished:
            return
        self._finished = True
        moment = now if now is not None else time.monotonic()
        line = self.status_line(moment)
        try:
            if self.isatty:
                pad = " " * max(0, self._last_width - len(line))
                self.stream.write("\r" + line + pad + "\n")
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
        except Exception:
            return
        self.renders += 1
