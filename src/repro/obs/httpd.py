"""An optional HTTP scrape endpoint for the standing servers.

``workers serve --http`` and ``cache serve --http`` mount this tiny
stdlib ``http.server`` thread next to their ``oolong-status-1`` status
socket so a real Prometheus (or a plain ``curl``) can scrape them
without speaking the framed status protocol:

* ``GET /metrics``  — Prometheus text exposition, rendered through the
  exact same path as ``workers status --metrics-format prom``
  (``MetricsRegistry.merge_dict(...).to_prometheus()``), so counter
  values agree with the status-protocol rendering by construction;
* ``GET /healthz``  — ``ok`` with status 200 while the server is up
  (the liveness probe);
* ``GET /status``   — the full status payload as JSON, identical to
  the ``oolong-status-1`` answer.

The handler is read-only and takes one ``snapshot`` callable (the same
one the :class:`~repro.parallel.transport.StatusServer` serves), so
mounting it on a new server type costs one constructor call.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Tuple

from repro.obs.metrics import MetricsRegistry


def render_prometheus(payload: dict) -> str:
    """The Prometheus text rendering of one status payload.

    One code path for every consumer (HTTP ``/metrics``, the CLI's
    ``--metrics-format prom``): rebuild a registry from the payload's
    ``metrics`` dict and render it, so all renderings are equal.
    """
    registry = MetricsRegistry()
    registry.merge_dict(payload.get("metrics", {}) or {})
    return registry.to_prometheus()


class TelemetryHTTPServer:
    """A daemon-thread HTTP server exposing /metrics, /healthz, /status."""

    def __init__(
        self,
        address: Tuple[str, int],
        snapshot: Callable[[], dict],
    ):
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            # The scrape endpoint must never write prose to the
            # server's stdout (it is machine-readable announce lines).
            def log_message(self, fmt, *args):  # noqa: N802
                pass

            def do_GET(self):  # noqa: N802
                try:
                    outer._respond(self)
                except BrokenPipeError:
                    pass

        self._server = ThreadingHTTPServer(address, _Handler)
        self._server.daemon_threads = True
        self.address: Tuple[str, int] = self._server.server_address[:2]
        self._snapshot = snapshot
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def _respond(self, handler: BaseHTTPRequestHandler) -> None:
        path = handler.path.split("?", 1)[0]
        if path == "/healthz":
            body = b"ok\n"
            content_type = "text/plain; charset=utf-8"
        elif path in ("/metrics", "/status"):
            try:
                payload = self._snapshot()
            except Exception as error:  # snapshot races server teardown
                handler.send_response(500)
                handler.end_headers()
                handler.wfile.write(f"snapshot failed: {error}\n".encode())
                return
            if path == "/metrics":
                body = render_prometheus(payload).encode("utf-8")
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            else:
                body = (
                    json.dumps(payload, sort_keys=True, indent=2) + "\n"
                ).encode("utf-8")
                content_type = "application/json"
        else:
            handler.send_response(404)
            handler.end_headers()
            handler.wfile.write(b"not found\n")
            return
        handler.send_response(200)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    def start(self) -> "TelemetryHTTPServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="oolong-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
