"""Structured countermodels: the refuting branch state, kept not discarded.

When the solver saturates a branch (``SAT`` — the goal is not provable),
the branch's E-graph *is* the countermodel: its equivalence classes say
which terms the refutation was forced to identify, its TRUE/FALSE
classes decide the atoms, its disequalities record the separations, and
the instantiation ledger names the quantifier witnesses the branch
fired. All of that used to be thrown away when the search unwound; in
explain mode it is captured here as a :class:`Countermodel` the upper
layers (:mod:`repro.obs.explain`) can interrogate after the solver is
gone.

The capture is a *normalized snapshot*: every node is rendered once, each
equivalence class picks a canonical representative string, and
applications are indexed by ``(head, child representatives)``. That
gives the explainer congruence-closure-faithful queries —
:meth:`Countermodel.rep` normalizes any ground term through the
snapshot, and :meth:`Countermodel.truth` decides atoms exactly as the
branch did — without holding onto the (backtracked) E-graph itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.printer import format_term
from repro.logic.terms import App, Const, IntLit, Term

#: Heads that encode boolean atoms of the VC vocabulary; the summary
#: renderer surfaces these first because they carry the story.
ATOM_HEADS = ("inc", "linc", "rinc", "alive", "isObj")


@dataclass
class InstanceWitness:
    """One quantifier instance alive in the refuting branch."""

    quantifier: str
    bindings: Dict[str, str]  # variable -> witness representative

    def to_dict(self) -> dict:
        return {
            "quantifier": self.quantifier,
            "bindings": dict(sorted(self.bindings.items())),
        }


@dataclass
class Countermodel:
    """A normalized snapshot of the refuting branch's ground state."""

    #: representative -> sorted member renderings (only classes with
    #: more than one member are interesting, but all are kept).
    classes: Dict[str, List[str]] = field(default_factory=dict)
    #: term rendering -> its class representative.
    term_class: Dict[str, str] = field(default_factory=dict)
    #: (head, child representatives) -> representative of the application.
    app_index: Dict[Tuple[str, Tuple[str, ...]], str] = field(
        default_factory=dict
    )
    #: asserted disequalities, as representative pairs.
    diseqs: List[Tuple[str, str]] = field(default_factory=list)
    true_rep: str = "@true"
    false_rep: str = "@false"
    #: quantifier instances fired on the path to this branch.
    instances: List[InstanceWitness] = field(default_factory=list)
    #: obligation-marker ids asserted true in the branch.
    markers: List[int] = field(default_factory=list)

    # -- queries --------------------------------------------------------

    def rep(self, term: Term) -> str:
        """The representative of ``term``, normalized through the model.

        Terms the branch never saw normalize structurally (children
        first), so queries about unseen terms still resolve as far as
        the model's congruences allow.
        """
        if isinstance(term, App):
            child_reps = tuple(self.rep(child) for child in term.args)
            hit = self.app_index.get((term.fn, child_reps))
            if hit is not None:
                return hit
            rendering = f"({term.fn} {' '.join(child_reps)})"
            return self.term_class.get(rendering, rendering)
        rendering = format_term(term)
        return self.term_class.get(rendering, rendering)

    def equal(self, left: Term, right: Term) -> Optional[bool]:
        left_rep, right_rep = self.rep(left), self.rep(right)
        if left_rep == right_rep:
            return True
        if self._diseq_reps(left_rep, right_rep):
            return False
        return None

    def _diseq_reps(self, left_rep: str, right_rep: str) -> bool:
        for a, b in self.diseqs:
            if (a, b) == (left_rep, right_rep) or (b, a) == (
                left_rep,
                right_rep,
            ):
                return True
        return False

    def truth(self, head: str, args: Sequence[Term]) -> Optional[bool]:
        """Three-valued truth of the atom ``head(args)`` in the branch."""
        child_reps = tuple(self.rep(a) for a in args)
        rep = self.app_index.get((head, child_reps))
        if rep is None:
            return None
        if rep == self.true_rep:
            return True
        if rep == self.false_rep:
            return False
        if self._diseq_reps(rep, self.true_rep):
            return False
        return None

    def atoms(self, head: str):
        """All recorded atoms with ``head``: ``(arg_reps, truth)`` pairs."""
        for (fn, child_reps), rep in self.app_index.items():
            if fn != head:
                continue
            if rep == self.true_rep:
                truth: Optional[bool] = True
            elif rep == self.false_rep or self._diseq_reps(rep, self.true_rep):
                truth = False
            else:
                truth = None
            yield child_reps, truth

    def decided_atoms(
        self, heads: Sequence[str] = ATOM_HEADS
    ) -> Tuple[List[str], List[str]]:
        """Rendered atoms decided true/false, for the report summary."""
        true_atoms: List[str] = []
        false_atoms: List[str] = []
        for head in heads:
            for child_reps, truth in self.atoms(head):
                rendering = f"({head} {' '.join(child_reps)})"
                if truth is True:
                    true_atoms.append(rendering)
                elif truth is False:
                    false_atoms.append(rendering)
        return sorted(true_atoms), sorted(false_atoms)

    def merged_classes(self) -> Dict[str, List[str]]:
        """Only the classes where the branch actually identified terms."""
        return {
            rep: members
            for rep, members in self.classes.items()
            if len(members) > 1
        }

    def to_dict(self, *, max_atoms: int = 40, max_classes: int = 20) -> dict:
        true_atoms, false_atoms = self.decided_atoms()
        merged = self.merged_classes()
        return {
            "true_atoms": true_atoms[:max_atoms],
            "false_atoms": false_atoms[:max_atoms],
            "classes": {
                rep: members
                for rep, members in sorted(merged.items())[:max_classes]
            },
            "diseqs": [list(pair) for pair in self.diseqs[:max_atoms]],
            "instances": [witness.to_dict() for witness in self.instances],
            "markers": list(self.markers),
        }


def capture_countermodel(egraph, seen_instances, markers) -> Countermodel:
    """Snapshot ``egraph`` (and the instantiation ledger) at a SAT leaf.

    ``seen_instances`` is the solver's ``_seen`` key set — pairs of
    ``(quantifier, witness node tuple)`` alive on the current branch;
    ``markers`` the obligation-marker ids true in the branch.
    """
    members_by_root: Dict[int, List[int]] = {}
    for node in range(egraph.node_count):
        members_by_root.setdefault(egraph.find(node), []).append(node)

    renderings = [format_term(egraph.term_of(n)) for n in range(egraph.node_count)]

    def preference(node: int) -> tuple:
        term = egraph.term_of(node)
        return (
            not isinstance(term, (Const, IntLit)),
            len(renderings[node]),
            renderings[node],
        )

    rep_of_root: Dict[int, str] = {}
    classes: Dict[str, List[str]] = {}
    for root, nodes in members_by_root.items():
        best = min(nodes, key=preference)
        rep = renderings[best]
        rep_of_root[root] = rep
        classes[rep] = sorted({renderings[n] for n in nodes})

    model = Countermodel(
        classes=classes,
        term_class={
            renderings[n]: rep_of_root[egraph.find(n)]
            for n in range(egraph.node_count)
        },
        true_rep=rep_of_root[egraph.find(egraph.TRUE)],
        false_rep=rep_of_root[egraph.find(egraph.FALSE)],
        markers=list(markers),
    )
    for node in range(egraph.node_count):
        head = egraph.head_of(node)
        if head is None:
            continue
        key = (
            head,
            tuple(rep_of_root[egraph.find(c)] for c in egraph.children_of(node)),
        )
        model.app_index.setdefault(key, rep_of_root[egraph.find(node)])
    model.diseqs = [
        (rep_of_root[egraph.find(a)], rep_of_root[egraph.find(b)])
        for a, b in egraph.diseq_pairs()
    ]
    for quantifier, witness_nodes in seen_instances:
        model.instances.append(
            InstanceWitness(
                quantifier=quantifier.name or "<anonymous>",
                bindings={
                    var: rep_of_root[egraph.find(node)]
                    for var, node in zip(quantifier.vars, witness_nodes)
                },
            )
        )
    model.instances.sort(key=lambda w: (w.quantifier, sorted(w.bindings.items())))
    return model
