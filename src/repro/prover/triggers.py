"""Automatic trigger (pattern) inference for quantifiers.

Hand-written triggers on the background axioms drive most proofs; this
module supplies patterns for quantifiers that lack them (e.g. the frame
quantifiers produced by wlp for method calls). The heuristic follows
Simplify's: collect application subterms of the body that mention at least
one bound variable and whose head is uninterpreted, prefer small patterns
that cover all bound variables, and fall back to a greedy multi-pattern
cover otherwise.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Tuple

from repro.logic.subst import term_free_vars
from repro.logic.terms import (
    And,
    App,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    INTERPRETED_FNS,
    INTERPRETED_PREDS,
    Not,
    Or,
    Pred,
    Term,
)

#: Heads never used as trigger patterns (folded by the E-graph, so their
#: instances would be unstable under rewriting).
_UNTRIGGERABLE = INTERPRETED_FNS | INTERPRETED_PREDS


def infer_triggers(
    quantifier: Forall,
) -> Tuple[Tuple[Term, ...], ...]:
    """Infer triggers for ``quantifier``; returns alternative multi-patterns.

    Returns an empty tuple when no pattern can cover the bound variables
    (the caller counts such quantifiers as unmatchable).
    """
    bound = frozenset(quantifier.vars)
    candidates = _candidate_patterns(quantifier.body, bound)
    if not candidates:
        return ()
    full = [p for p, vs in candidates if vs == bound]
    if full:
        # Keep the smallest few single-pattern triggers as alternatives.
        full.sort(key=_pattern_size)
        return tuple((p,) for p in full[:3])
    multi = _greedy_cover(candidates, bound)
    if multi is None:
        return ()
    return (tuple(multi),)


def _pattern_size(term: Term) -> int:
    if isinstance(term, App):
        return 1 + sum(_pattern_size(a) for a in term.args)
    return 1


def _candidate_patterns(
    body: Formula, bound: FrozenSet[str]
) -> List[Tuple[Term, FrozenSet[str]]]:
    """All application subterms usable as patterns, with their bound vars."""
    seen = set()
    result: List[Tuple[Term, FrozenSet[str]]] = []

    def add_term(term: Term) -> None:
        if isinstance(term, App):
            for arg in term.args:
                add_term(arg)
            if term.fn in _UNTRIGGERABLE or term in seen:
                return
            vars_used = term_free_vars(term) & bound
            if vars_used:
                seen.add(term)
                result.append((term, frozenset(vars_used)))

    def walk(formula: Formula) -> None:
        if isinstance(formula, Eq):
            add_term(formula.left)
            add_term(formula.right)
        elif isinstance(formula, Pred):
            if formula.name not in _UNTRIGGERABLE:
                as_term = App(formula.name, formula.args)
                add_term(as_term)
            else:
                for arg in formula.args:
                    add_term(arg)
        elif isinstance(formula, Not):
            walk(formula.body)
        elif isinstance(formula, And):
            for conjunct in formula.conjuncts:
                walk(conjunct)
        elif isinstance(formula, Or):
            for disjunct in formula.disjuncts:
                walk(disjunct)
        elif isinstance(formula, Implies):
            walk(formula.antecedent)
            walk(formula.consequent)
        elif isinstance(formula, Iff):
            walk(formula.left)
            walk(formula.right)
        elif isinstance(formula, (Forall, Exists)):
            walk(formula.body)

    walk(body)
    return result


def _greedy_cover(
    candidates: Sequence[Tuple[Term, FrozenSet[str]]], bound: FrozenSet[str]
) -> List[Term]:
    """Greedy set cover of the bound variables by candidate patterns."""
    uncovered = set(bound)
    chosen: List[Term] = []
    pool = sorted(candidates, key=lambda c: (-len(c[1]), _pattern_size(c[0])))
    while uncovered:
        best = None
        best_gain = 0
        for pattern, vars_used in pool:
            gain = len(vars_used & uncovered)
            if gain > best_gain:
                best, best_gain = pattern, gain
        if best is None:
            return None
        chosen.append(best)
        uncovered -= term_free_vars(best)
    return chosen
