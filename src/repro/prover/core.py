"""The refutation engine: case splitting + quantifier instantiation.

``Solver`` accepts closed formulas (hypotheses) and decides satisfiability
of their conjunction, under explicit resource limits. ``prove_valid``
wraps the refutation style used for verification conditions: assert the
axioms and hypotheses, assert the *ordered negation* of the goal, and read
``UNSAT`` as "the VC is valid".

Search strategy (Simplify-flavoured):

1. Assert unit facts into the E-graph; park disjunctions and quantifiers.
2. Repeatedly simplify disjunctions against the E-graph (drop satisfied
   ones, prune refuted disjuncts, unit-propagate single survivors).
3. When splits remain, branch on the smallest disjunction (backtracking the
   E-graph via its trail).
4. At a split-free leaf, run an E-matching round over the quantifier pool;
   new instances are asserted and the loop continues. Saturation without
   conflict yields ``SAT`` (the goal is not provable); exceeding the
   instance/time budget yields ``RESOURCE_OUT`` — the analogue of the
   matching-loop divergence the paper reports for cyclic rep inclusions.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.logic.nnf import FreshNames, negate, skolemize, to_nnf
from repro.logic.subst import formula_free_vars, subst_formula
from repro.logic.terms import (
    And,
    App,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    Pred,
    Term,
    TrueF,
)
from repro.prover.countermodel import Countermodel, capture_countermodel
from repro.prover.egraph import EGraph
from repro.prover.matching import match_multipattern
from repro.prover.prooflog import (
    CLOSE_CLAUSE,
    CLOSE_KERNEL,
    STEP_BRANCH,
    STEP_CLOSE,
    STEP_END_SPLIT,
    STEP_FACT,
    STEP_INSTANCE,
    STEP_PROPAGATE,
    STEP_SPLIT,
    ProofLog,
    ProofStep,
    flatten_forall,
)
from repro.prover.triggers import infer_triggers


class Verdict(enum.Enum):
    """Outcome of a satisfiability check."""

    UNSAT = "unsat"
    SAT = "sat"
    RESOURCE_OUT = "resource-out"


@dataclass
class Limits:
    """Resource bounds for one ``check`` call."""

    max_instances: int = 20000
    max_rounds: int = 40
    max_depth: int = 400
    max_branches: int = 200000
    max_matches_per_round: int = 5000
    #: Wall-clock budget for one ``check`` call — i.e. per implementation
    #: when driven by ``check_scope``. Enforced cooperatively: between
    #: fact assertions, search rounds, case splits, and matches.
    time_budget: Optional[float] = 30.0
    #: Wall-clock budget for a whole ``check_scope`` batch, shared by all
    #: implementations. The driver turns it into ``scope_deadline``.
    scope_time_budget: Optional[float] = None
    #: Absolute ``time.monotonic()`` deadline shared across solver
    #: instances (set by the driver from ``scope_time_budget``). Checked
    #: at the same cooperative points as ``time_budget``, so a
    #: pathological implementation cannot starve the rest of the batch.
    scope_deadline: Optional[float] = None
    #: Relevancy filter: a candidate instance is asserted only while its
    #: number of not-yet-refuted top-level disjuncts (its *width*) is at
    #: most this. Width 0 is a conflict, width 1 unit-propagates, width 2
    #: is a narrow case split. Wider instances are reconsidered on later
    #: rounds once more of their disjuncts are refuted.
    max_instance_width: int = 1
    #: When a round adds nothing at ``max_instance_width``, one extra pass
    #: admits instances up to ``max_instance_width + escalation_bonus``
    #: before the branch is declared saturated. 0 disables escalation.
    escalation_bonus: int = 2


@dataclass
class ProverStats:
    """Counters accumulated during a check."""

    instantiations: int = 0
    rounds: int = 0
    branches: int = 0
    conflicts: int = 0
    max_depth: int = 0
    unmatchable_quantifiers: int = 0
    per_quantifier: Dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0
    #: Values of "@obligation" marker atoms true in the first saturated
    #: branch (diagnosis of which proof obligation a non-proof stuck on).
    sat_markers: List[int] = field(default_factory=list)
    #: Closed formulas asserted into the solver (axioms + hypotheses +
    #: negated goal).
    facts: int = 0
    #: E-graph class unions performed (cumulative congruence-closure
    #: work, including backtracked branches).
    merges: int = 0
    #: Trigger match bindings enumerated by E-matching (before the
    #: relevancy filter prunes them down to ``instantiations``).
    matches: int = 0
    #: ``matches`` attributed per quantifier name (raw E-matching volume;
    #: compare with ``per_quantifier`` to see the relevancy filter's cut).
    matches_by_quantifier: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Machine-readable rendering (surfaced per verdict by
        ``CheckReport.to_dict`` and fed to the metrics registry)."""
        return {
            "instantiations": self.instantiations,
            "rounds": self.rounds,
            "branches": self.branches,
            "conflicts": self.conflicts,
            "max_depth": self.max_depth,
            "unmatchable_quantifiers": self.unmatchable_quantifiers,
            "per_quantifier": dict(sorted(self.per_quantifier.items())),
            "elapsed": round(self.elapsed, 6),
            "sat_markers": list(self.sat_markers),
            "facts": self.facts,
            "merges": self.merges,
            "matches": self.matches,
            "matches_by_quantifier": dict(
                sorted(self.matches_by_quantifier.items())
            ),
        }


@dataclass
class ProverResult:
    """Verdict plus statistics; ``valid`` reads the refutation outcome."""

    verdict: Verdict
    stats: ProverStats
    #: In explain mode only: the refuting branch snapshot on ``SAT`` …
    countermodel: Optional[Countermodel] = None
    #: … and the replayable step record of the refutation on ``UNSAT``.
    proof_log: Optional[ProofLog] = None

    @property
    def valid(self) -> bool:
        """For ``prove_valid``: the goal is proved iff refutation closed."""
        return self.verdict is Verdict.UNSAT


@dataclass
class _QuantRecord:
    formula: Forall
    triggers: Tuple[Tuple[Term, ...], ...]


class _State:
    """Branch-local search state (disjunctions and quantifier pool)."""

    __slots__ = ("disjunctions", "quants", "rounds")

    def __init__(self, disjunctions=None, quants=None, rounds=0):
        self.disjunctions: List[Or] = disjunctions if disjunctions is not None else []
        self.quants: List[_QuantRecord] = quants if quants is not None else []
        self.rounds = rounds

    def clone(self) -> "_State":
        return _State(list(self.disjunctions), list(self.quants), self.rounds)


class Solver:
    """A refutation-based solver for closed first-order formulas."""

    def __init__(self, limits: Optional[Limits] = None, *, explain: bool = False):
        self.limits = limits or Limits()
        self.egraph = EGraph()
        self.stats = ProverStats()
        self._fresh = FreshNames()
        self._facts: List[Formula] = []
        self._seen: Set[Tuple] = set()
        self._seen_trail: List[Tuple] = []
        self._instance_cache: Dict[Tuple, Formula] = {}
        self._deadline: Optional[float] = None
        self._cache_version: int = -1
        self._lookup_cache: Dict[int, Tuple] = {}
        self._eval_cache: Dict[int, Tuple] = {}
        #: Explain mode: journal proof steps and keep the refuting branch.
        #: The default (off) path pays only ``is not None`` checks.
        self.explain = explain
        self._journal: Optional[List[ProofStep]] = [] if explain else None
        self._countermodel: Optional[Countermodel] = None

    # ------------------------------------------------------------------
    # Loading formulas
    # ------------------------------------------------------------------

    def add(self, formula: Formula) -> None:
        """Assert a closed formula (axiom or hypothesis)."""
        free = formula_free_vars(formula)
        if free:
            raise ValueError(f"formula must be closed; free: {sorted(free)}")
        nnf = to_nnf(formula)
        self._facts.append(skolemize(nnf, self._fresh, "hyp"))
        self.stats.facts += 1

    def add_negated_goal(self, goal: Formula) -> None:
        """Assert the ordered negation of ``goal`` (refutation setup)."""
        free = formula_free_vars(goal)
        if free:
            raise ValueError(f"goal must be closed; free: {sorted(free)}")
        nnf = negate(goal, ordered=True)
        self._facts.append(skolemize(nnf, self._fresh, "cex"))
        self.stats.facts += 1

    # ------------------------------------------------------------------
    # Main entry points
    # ------------------------------------------------------------------

    def check(self) -> ProverResult:
        """Decide satisfiability of the asserted conjunction."""
        start = time.monotonic()
        if self.limits.time_budget is not None:
            self._deadline = start + self.limits.time_budget
        if self.limits.scope_deadline is not None:
            self._deadline = (
                self.limits.scope_deadline
                if self._deadline is None
                else min(self._deadline, self.limits.scope_deadline)
            )
        state = _State()
        verdict: Optional[Verdict] = None
        for fact in self._facts:
            if self._out_of_time():
                self._record_sat_markers()
                verdict = Verdict.RESOURCE_OUT
                break
            if self._journal is not None:
                self._journal.append(ProofStep(STEP_FACT, formula=fact))
            if not self._assert(fact, state):
                if self._journal is not None:
                    self._journal.append(
                        ProofStep(STEP_CLOSE, reason=CLOSE_KERNEL)
                    )
                verdict = Verdict.UNSAT
                break
        if verdict is None:
            verdict = self._search(state, 0)
        self.stats.elapsed = time.monotonic() - start
        self.stats.merges = self.egraph.merges
        result = ProverResult(verdict, self.stats)
        if self._journal is not None and verdict is Verdict.UNSAT:
            result.proof_log = ProofLog(list(self._journal))
        if verdict is Verdict.SAT:
            result.countermodel = self._countermodel
        return result

    # ------------------------------------------------------------------
    # Assertion of NNF formulas
    # ------------------------------------------------------------------

    def _assert(self, formula: Formula, state: _State) -> bool:
        """Assert an NNF formula; returns False on E-graph conflict."""
        if isinstance(formula, TrueF):
            return True
        if isinstance(formula, FalseF):
            self.stats.conflicts += 1
            return False
        if isinstance(formula, And):
            for conjunct in formula.conjuncts:
                if not self._assert(conjunct, state):
                    return False
            return True
        if isinstance(formula, Or):
            return self._assert_disjunction(formula, state)
        if isinstance(formula, Forall):
            self._add_quantifier(formula, state)
            return True
        if isinstance(formula, Exists):
            body = skolemize(formula, self._fresh, "wit")
            return self._assert(body, state)
        if isinstance(formula, Eq):
            left = self.egraph.intern(formula.left)
            right = self.egraph.intern(formula.right)
            if not self.egraph.assert_eq(left, right):
                self.stats.conflicts += 1
                return False
            return True
        if isinstance(formula, Pred):
            node = self.egraph.intern(App(formula.name, formula.args))
            if not self.egraph.assert_eq(node, self.egraph.TRUE):
                self.stats.conflicts += 1
                return False
            return True
        if isinstance(formula, Not):
            body = formula.body
            if isinstance(body, Eq):
                left = self.egraph.intern(body.left)
                right = self.egraph.intern(body.right)
                if not self.egraph.assert_diseq(left, right):
                    self.stats.conflicts += 1
                    return False
                return True
            if isinstance(body, Pred):
                node = self.egraph.intern(App(body.name, body.args))
                if not self.egraph.assert_eq(node, self.egraph.FALSE):
                    self.stats.conflicts += 1
                    return False
                return True
            # Non-atomic negation: normalize and retry.
            return self._assert(to_nnf(formula), state)
        raise TypeError(f"cannot assert {formula!r}")

    def _assert_disjunction(self, formula: Or, state: _State) -> bool:
        status, remaining = self._simplify_disjunction(formula)
        if status == "sat":
            return True
        if status == "conflict":
            self.stats.conflicts += 1
            return False
        if len(remaining) == 1:
            return self._assert(remaining[0], state)
        state.disjunctions.append(Or(tuple(remaining)))
        return True

    def _add_quantifier(self, formula: Forall, state: _State) -> None:
        # Flatten a Forall prefix so triggers can cover all variables.
        # Shared with the proof-log replay checker, which must register
        # structurally identical quantifiers.
        formula = flatten_forall(formula)
        triggers = formula.triggers
        if not triggers:
            triggers = infer_triggers(formula)
            if not triggers:
                self.stats.unmatchable_quantifiers += 1
                return
        state.quants.append(_QuantRecord(formula, triggers))

    # ------------------------------------------------------------------
    # Three-valued evaluation against the E-graph
    # ------------------------------------------------------------------

    def _eval(self, formula: Formula) -> Optional[bool]:
        if isinstance(formula, TrueF):
            return True
        if isinstance(formula, FalseF):
            return False
        if isinstance(formula, Eq):
            left = self.egraph.intern(formula.left)
            right = self.egraph.intern(formula.right)
            if self.egraph.are_equal(left, right):
                return True
            if self.egraph.are_diseq(left, right):
                return False
            return None
        if isinstance(formula, Pred):
            node = self.egraph.intern(App(formula.name, formula.args))
            return self.egraph.truth(node)
        if isinstance(formula, Not):
            inner = self._eval(formula.body)
            return None if inner is None else not inner
        if isinstance(formula, And):
            value = True
            for conjunct in formula.conjuncts:
                inner = self._eval(conjunct)
                if inner is False:
                    return False
                if inner is None:
                    value = None
            return value
        if isinstance(formula, Or):
            value = False
            for disjunct in formula.disjuncts:
                inner = self._eval(disjunct)
                if inner is True:
                    return True
                if inner is None:
                    value = None
            return value
        return None  # quantifiers and anything else: unknown

    # Passive evaluation: like _eval, but never interns terms. Terms not
    # present in the E-graph evaluate to "unknown". Lookups and formula
    # evaluations are memoized by object identity, invalidated whenever the
    # E-graph changes (its version counter bumps).

    def _refresh_caches(self) -> None:
        if self._cache_version != self.egraph.version:
            self._cache_version = self.egraph.version
            self._lookup_cache.clear()
            self._eval_cache.clear()

    def _lookup(self, term) -> Optional[int]:
        self._refresh_caches()
        key = id(term)
        hit = self._lookup_cache.get(key)
        # The pinned object must be *this* term: ids are reused once an
        # object is freed, and a stale hit would silently evaluate the
        # wrong term (making verdicts depend on heap layout).
        if hit is not None and hit[0] is term:
            return hit[1]
        node = self.egraph.lookup(term)
        self._lookup_cache[key] = (term, node)
        return node

    def _eval_passive(self, formula: Formula) -> Optional[bool]:
        self._refresh_caches()
        key = id(formula)
        hit = self._eval_cache.get(key)
        if hit is not None and hit[0] is formula:
            return hit[1]
        value = self._eval_passive_raw(formula)
        self._eval_cache[key] = (formula, value)
        return value

    def _eval_passive_raw(self, formula: Formula) -> Optional[bool]:
        if isinstance(formula, TrueF):
            return True
        if isinstance(formula, FalseF):
            return False
        if isinstance(formula, Eq):
            left = self._lookup(formula.left)
            right = self._lookup(formula.right)
            if left is None or right is None:
                return None
            if self.egraph.are_equal(left, right):
                return True
            if self.egraph.are_diseq(left, right):
                return False
            return None
        if isinstance(formula, Pred):
            node = self._lookup(App(formula.name, formula.args))
            return None if node is None else self.egraph.truth(node)
        if isinstance(formula, Not):
            inner = self._eval_passive(formula.body)
            return None if inner is None else not inner
        if isinstance(formula, And):
            value = True
            for conjunct in formula.conjuncts:
                inner = self._eval_passive(conjunct)
                if inner is False:
                    return False
                if inner is None:
                    value = None
            return value
        if isinstance(formula, Or):
            value = False
            for disjunct in formula.disjuncts:
                inner = self._eval_passive(disjunct)
                if inner is True:
                    return True
                if inner is None:
                    value = None
            return value
        return None

    def _instance_width(self, formula: Formula) -> int:
        """Number of top-level disjuncts not currently refuted.

        The relevancy measure for candidate instances: 0 means the instance
        conflicts, 1 means it unit-propagates, k means asserting it parks a
        k-way case split.
        """
        value = self._eval_passive(formula)
        if value is True:
            return -1  # redundant, skip entirely
        if value is False:
            return 0
        if isinstance(formula, Or):
            return sum(max(self._instance_width(d), 0) for d in formula.disjuncts)
        return 1

    def _simplify_disjunction(self, formula: Or):
        remaining: List[Formula] = []
        for disjunct in formula.disjuncts:
            value = self._eval(disjunct)
            if value is True:
                return "sat", []
            if value is None:
                remaining.append(disjunct)
        if not remaining:
            return "conflict", []
        return "open", remaining

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _out_of_time(self) -> bool:
        return self._deadline is not None and time.monotonic() > self._deadline

    def _search(self, state: _State, depth: int) -> Verdict:
        self.stats.max_depth = max(self.stats.max_depth, depth)
        if depth > self.limits.max_depth:
            self._record_sat_markers()
            return Verdict.RESOURCE_OUT
        while True:
            if self._out_of_time():
                self._record_sat_markers()
                return Verdict.RESOURCE_OUT
            progressed, verdict = self._propagate(state)
            if verdict is not None:
                return verdict
            if progressed:
                continue
            if state.disjunctions:
                return self._split(state, depth)
            # Leaf: instantiate quantifiers.
            if state.rounds >= self.limits.max_rounds:
                self._record_sat_markers()
                return Verdict.RESOURCE_OUT
            state.rounds += 1
            self.stats.rounds += 1
            outcome = self._instantiate_round(state, self.limits.max_instance_width)
            # Escalate gradually: admit wider case splits, one width step at
            # a time, before declaring the branch saturated.
            bonus = 1
            while outcome == 0 and bonus <= self.limits.escalation_bonus:
                outcome = self._instantiate_round(
                    state, self.limits.max_instance_width + bonus
                )
                bonus += 1
            if outcome == "resource":
                self._record_sat_markers()
                return Verdict.RESOURCE_OUT
            if outcome == "conflict":
                return Verdict.UNSAT
            if outcome == 0:
                # The branch saturated: the goal is not provable, and this
                # E-graph *is* the refutation's counterexample. Record the
                # obligation markers (forced: a resource-out sibling may
                # have left stale ones behind) and, in explain mode,
                # snapshot the branch before the unwind discards it.
                self._record_sat_markers(force=True)
                if self.explain and self._countermodel is None:
                    self._countermodel = capture_countermodel(
                        self.egraph, self._seen, self.stats.sat_markers
                    )
                return Verdict.SAT

    def _propagate(self, state: _State) -> Tuple[bool, Optional[Verdict]]:
        """One pass of disjunction simplification / unit propagation."""
        progressed = False
        surviving: List[Or] = []
        for disjunction in state.disjunctions:
            status, remaining = self._simplify_disjunction(disjunction)
            if status == "sat":
                progressed = True
                continue
            if status == "conflict":
                self.stats.conflicts += 1
                if self._journal is not None:
                    self._journal.append(
                        ProofStep(
                            STEP_CLOSE, clause=disjunction, reason=CLOSE_CLAUSE
                        )
                    )
                return progressed, Verdict.UNSAT
            if len(remaining) == 1:
                if self._journal is not None:
                    self._journal.append(
                        ProofStep(
                            STEP_PROPAGATE,
                            formula=remaining[0],
                            clause=disjunction,
                        )
                    )
                if not self._assert(remaining[0], state):
                    if self._journal is not None:
                        self._journal.append(
                            ProofStep(STEP_CLOSE, reason=CLOSE_KERNEL)
                        )
                    return progressed, Verdict.UNSAT
                progressed = True
            elif len(remaining) < len(disjunction.disjuncts):
                surviving.append(Or(tuple(remaining)))
                progressed = True
            else:
                surviving.append(disjunction)
        state.disjunctions = surviving
        return progressed, None

    def _split(self, state: _State, depth: int) -> Verdict:
        # Pick the smallest disjunction; among equals prefer the most
        # recently derived one — instance-derived splits are usually local
        # to the contradiction being built.
        best_index = max(
            range(len(state.disjunctions)),
            key=lambda i: (-len(state.disjunctions[i].disjuncts), i),
        )
        disjunction = state.disjunctions[best_index]
        rest = [d for d in state.disjunctions if d is not disjunction]
        if self._journal is not None:
            self._journal.append(ProofStep(STEP_SPLIT, clause=disjunction))
        saw_resource = False
        for index, disjunct in enumerate(disjunction.disjuncts):
            if self._out_of_time():
                self._record_sat_markers()
                return Verdict.RESOURCE_OUT
            if self.stats.branches >= self.limits.max_branches:
                self._record_sat_markers()
                return Verdict.RESOURCE_OUT
            self.stats.branches += 1
            if self._journal is not None:
                self._journal.append(
                    ProofStep(STEP_BRANCH, formula=disjunct, index=index)
                )
            mark = self.egraph.push()
            seen_mark = len(self._seen_trail)
            child = _State(list(rest), list(state.quants), state.rounds)
            ok = self._assert(disjunct, child)
            if not ok and self._journal is not None:
                self._journal.append(ProofStep(STEP_CLOSE, reason=CLOSE_KERNEL))
            result = self._search(child, depth + 1) if ok else Verdict.UNSAT
            self.egraph.pop(mark)
            self._pop_seen(seen_mark)
            if result is Verdict.SAT:
                return Verdict.SAT
            if result is Verdict.RESOURCE_OUT:
                saw_resource = True
        if saw_resource:
            return Verdict.RESOURCE_OUT
        if self._journal is not None:
            self._journal.append(ProofStep(STEP_END_SPLIT))
        return Verdict.UNSAT

    def _record_sat_markers(self, force: bool = False) -> None:
        """Remember which obligation markers hold in the current branch.

        Recorded at the first saturated (SAT) leaf — where ``force``
        overwrites any markers left by an earlier resource-out branch —
        and at resource-out points, so ``RESOURCE_OUT``/``TIMED_OUT``
        verdicts can still name the obligation the prover was chewing on.
        """
        if self.stats.sat_markers:
            if not force:
                return
            self.stats.sat_markers.clear()
        from repro.logic.terms import IntLit as _IntLit

        for node in self.egraph.apps_with_head("@obligation"):
            if self.egraph.truth(node) is True:
                children = self.egraph.children_of(node)
                if children:
                    term = self.egraph.term_of(children[0])
                    if isinstance(term, _IntLit):
                        self.stats.sat_markers.append(term.value)

    def _pop_seen(self, mark: int) -> None:
        while len(self._seen_trail) > mark:
            self._seen.discard(self._seen_trail.pop())

    # ------------------------------------------------------------------
    # Instantiation
    # ------------------------------------------------------------------

    def _instantiate_round(self, state: _State, width_limit: Optional[int] = None):
        """Match every pooled quantifier; assert relevant new instances.

        Candidates are gathered first, filtered by *width* (see
        ``Limits.max_instance_width``), and asserted narrowest-first so that
        conflicts and unit propagations land before case splits. Skipped
        candidates are not marked seen — they are reconsidered on later
        rounds, when more of their disjuncts may have been refuted.

        Returns the number of asserted instances, or "conflict"/"resource".
        """
        if width_limit is None:
            width_limit = self.limits.max_instance_width
        candidates = []
        for record in list(state.quants):
            quantifier = record.formula
            effective_limit = width_limit
            if quantifier.width_cap is not None:
                effective_limit = min(width_limit, quantifier.width_cap)
            for multipattern in record.triggers:
                matches = 0
                for binding in match_multipattern(
                    self.egraph,
                    multipattern,
                    stats=self.stats,
                    name=quantifier.name or "<anonymous>",
                ):
                    if self._out_of_time():
                        return "resource"
                    matches += 1
                    if matches > self.limits.max_matches_per_round:
                        break
                    if set(binding) != set(quantifier.vars):
                        continue  # trigger did not bind every variable
                    key = (
                        quantifier,
                        tuple(binding[v] for v in quantifier.vars),
                    )
                    if key in self._seen:
                        continue
                    instance = self._instance_cache.get(key)
                    if instance is None:
                        mapping = {
                            v: self.egraph.term_of(node)
                            for v, node in binding.items()
                        }
                        instance = subst_formula(quantifier.body, mapping)
                        self._instance_cache[key] = instance
                    width = self._instance_width(instance)
                    if width < 0 or width > effective_limit:
                        continue
                    candidates.append(
                        (width, len(candidates), key, quantifier, instance, effective_limit)
                    )
        candidates.sort(key=lambda c: (c[0], c[1]))
        added = 0
        for _, _, key, quantifier, instance, effective_limit in candidates:
            if self._out_of_time():
                return "resource"
            if key in self._seen:
                continue
            # Re-check relevance: earlier assertions may have settled it.
            width = self._instance_width(instance)
            if width < 0 or width > effective_limit:
                continue
            self._seen.add(key)
            self._seen_trail.append(key)
            self.stats.instantiations += 1
            name = quantifier.name or "<anonymous>"
            self.stats.per_quantifier[name] = (
                self.stats.per_quantifier.get(name, 0) + 1
            )
            if self.stats.instantiations > self.limits.max_instances:
                return "resource"
            added += 1
            if self._journal is not None:
                witnesses = {
                    v: self.egraph.term_of(node)
                    for v, node in zip(quantifier.vars, key[1])
                }
                self._journal.append(
                    ProofStep(
                        STEP_INSTANCE,
                        formula=instance,
                        quantifier=quantifier,
                        witnesses=witnesses,
                    )
                )
            if not self._assert(instance, state):
                if self._journal is not None:
                    self._journal.append(
                        ProofStep(STEP_CLOSE, reason=CLOSE_KERNEL)
                    )
                return "conflict"
        return added


def prove_valid(
    axioms: List[Formula],
    goal: Formula,
    limits: Optional[Limits] = None,
    *,
    explain: bool = False,
) -> ProverResult:
    """Prove ``(and axioms) ==> goal`` by refutation.

    ``UNSAT`` means the implication is valid; ``SAT`` means the prover
    saturated without closing (not provable with the given axioms);
    ``RESOURCE_OUT`` means the instantiation/time budget was exhausted.
    With ``explain``, the result additionally carries a replayable
    :class:`~repro.prover.prooflog.ProofLog` (``UNSAT``) or a
    :class:`~repro.prover.countermodel.Countermodel` (``SAT``).
    """
    solver = Solver(limits, explain=explain)
    for axiom in axioms:
        solver.add(axiom)
    solver.add_negated_goal(goal)
    return solver.check()
