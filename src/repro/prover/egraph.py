"""An E-graph: congruence closure over ground terms with an undo trail.

Terms are hash-consed into integer node ids. A union-find (union by size,
no path compression, so that unions can be undone) maintains equivalence
classes; a signature table drives congruence propagation; class member
lists support E-matching; disequalities and integer constant values are
tracked for consistency.

Boolean structure is encoded by two distinguished nodes ``TRUE`` and
``FALSE`` (asserted distinct): a predicate atom holds iff its node is
merged with ``TRUE``.

All class-level mutations (unions, disequalities, signature-table updates)
record undo entries; :meth:`EGraph.push` / :meth:`EGraph.pop` provide the
backtracking used by the tableau search. Node *creation* is permanent —
interned terms survive pops, only their merges are undone — which keeps
instance deduplication stable across branches. Consequently a node's
parent registrations are also permanent and kept per child *node*; a merge
collects the absorbed class's parents through its (undo-tracked) member
list, so nodes created in abandoned branches still participate in
congruence later.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ProverError
from repro.logic.terms import App, Const, IntLit, Term, Var

#: Function symbols folded on integer literals.
_ARITH = {"+": lambda a, b: a + b, "-": lambda a, b: a - b, "*": lambda a, b: a * b}

#: Comparison symbols folded on integer literals (to TRUE/FALSE).
_COMPARE = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class EGraph:
    """Hash-consed ground terms with congruence closure and backtracking."""

    def __init__(self):
        # Node payloads, parallel arrays indexed by node id.
        self._term: List[Term] = []  # original term of each node
        self._head: List[Optional[str]] = []  # fn symbol for app nodes
        self._children: List[Tuple[int, ...]] = []

        # Union-find state.
        self._parent: List[int] = []
        self._size: List[int] = []
        self._members: List[List[int]] = []  # member node ids, per root
        self._uses: List[List[int]] = []  # parent app nodes, per root
        self._int_value: List[Optional[int]] = []  # per root

        # Hash-consing and congruence signatures.
        self._memo: Dict[object, int] = {}
        self._sig: Dict[Tuple[str, Tuple[int, ...]], int] = {}

        # Head-symbol index for E-matching: fn -> app node ids.
        self._head_index: Dict[str, List[int]] = {}

        # Asserted disequalities (node id pairs).
        self._diseqs: List[Tuple[int, int]] = []

        # Interpreted app nodes pending constant folding.
        self._interpreted: List[int] = []

        # Undo trail: list of (tag, payload...) tuples.
        self._trail: List[Tuple] = []

        self._conflict: bool = False

        #: Bumped on every state change (node creation, union, pop); lets
        #: clients invalidate evaluation caches cheaply.
        self.version: int = 0

        #: Cumulative count of class unions performed. Deliberately NOT
        #: undone by :meth:`pop`: it measures congruence-closure *work*
        #: (for telemetry), not live state.
        self.merges: int = 0

        self.TRUE = self.intern(Const("@true"))
        self.FALSE = self.intern(Const("@false"))
        ok = self.assert_diseq(self.TRUE, self.FALSE)
        assert ok

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------

    def intern(self, term: Term) -> int:
        """Intern a ground term, returning its node id.

        Interning an application also performs upward congruence: if an
        existing application is congruent under the current equalities, the
        two nodes are merged immediately.
        """
        if isinstance(term, Const):
            key = ("c", term.name)
            existing = self._memo.get(key)
            if existing is not None:
                return existing
            node = self._new_node(term, None, ())
            self._memo[key] = node
            return node
        if isinstance(term, IntLit):
            key = ("i", term.value)
            existing = self._memo.get(key)
            if existing is not None:
                return existing
            node = self._new_node(term, None, ())
            self._memo[key] = node
            self._int_value[node] = term.value
            return node
        if isinstance(term, App):
            child_ids = tuple(self.intern(a) for a in term.args)
            key = ("a", term.fn, child_ids)
            existing = self._memo.get(key)
            if existing is not None:
                return existing
            node = self._new_node(term, term.fn, child_ids)
            self._memo[key] = node
            self._head_index.setdefault(term.fn, []).append(node)
            # Parent registration is PERMANENT and per child *node* (not per
            # root): nodes survive pops, so their congruence bookkeeping
            # must too. Merges collect a class's parents via its member
            # list, which is itself undo-tracked.
            for child in set(child_ids):
                self._uses[child].append(node)
            if term.fn in _ARITH or term.fn in _COMPARE:
                self._interpreted.append(node)
            # Upward congruence with an existing application.
            signature = (term.fn, tuple(self.find(c) for c in child_ids))
            other = self._sig.get(signature)
            if other is not None and self.find(other) != self.find(node):
                self._merge(node, other)
                self._check_diseqs()
            else:
                self._trail.append(("sig", signature, self._sig.get(signature)))
                self._sig[signature] = node
            self._fold_interpreted()
            return node
        if isinstance(term, Var):
            raise ProverError(f"cannot intern non-ground term containing {term}")
        raise TypeError(f"not a term: {term!r}")

    def _new_node(self, term: Term, head: Optional[str], children: Tuple[int, ...]) -> int:
        self.version += 1
        node = len(self._term)
        self._term.append(term)
        self._head.append(head)
        self._children.append(children)
        self._parent.append(node)
        self._size.append(1)
        self._members.append([node])
        self._uses.append([])
        self._int_value.append(None)
        return node

    # ------------------------------------------------------------------
    # Union-find
    # ------------------------------------------------------------------

    def find(self, node: int) -> int:
        while self._parent[node] != node:
            node = self._parent[node]
        return node

    def are_equal(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def are_diseq(self, a: int, b: int) -> bool:
        """True iff ``a != b`` follows from asserted facts."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        va, vb = self._int_value[ra], self._int_value[rb]
        if va is not None and vb is not None and va != vb:
            return True
        for x, y in self._diseqs:
            rx, ry = self.find(x), self.find(y)
            if (rx, ry) == (ra, rb) or (rx, ry) == (rb, ra):
                return True
        return False

    # ------------------------------------------------------------------
    # Assertions
    # ------------------------------------------------------------------

    def assert_eq(self, a: int, b: int) -> bool:
        """Merge two classes; False (and conflict state) on inconsistency."""
        if self._conflict:
            return False
        self._merge(a, b)
        if not self._conflict:
            self._fold_interpreted()
            self._check_diseqs()
        return not self._conflict

    def assert_diseq(self, a: int, b: int) -> bool:
        if self._conflict:
            return False
        if self.find(a) == self.find(b):
            self._set_conflict()
            return False
        self.version += 1
        self._diseqs.append((a, b))
        self._trail.append(("diseq", len(self._diseqs) - 1))
        return True

    def truth(self, node: int) -> Optional[bool]:
        """Three-valued truth of a boolean node relative to TRUE/FALSE."""
        root = self.find(node)
        if root == self.find(self.TRUE):
            return True
        if root == self.find(self.FALSE):
            return False
        if self.are_diseq(node, self.TRUE):
            return False
        return None

    @property
    def in_conflict(self) -> bool:
        return self._conflict

    def _set_conflict(self) -> None:
        if not self._conflict:
            self._conflict = True
            self._trail.append(("conflict",))

    # ------------------------------------------------------------------
    # Congruence closure
    # ------------------------------------------------------------------

    def _merge(self, a: int, b: int) -> None:
        pending = [(a, b)]
        while pending and not self._conflict:
            x, y = pending.pop()
            rx, ry = self.find(x), self.find(y)
            if rx == ry:
                continue
            if self._size[rx] < self._size[ry]:
                rx, ry = ry, rx
            # Integer value consistency and propagation.
            vx, vy = self._int_value[rx], self._int_value[ry]
            if vx is not None and vy is not None and vx != vy:
                self._set_conflict()
                return
            # Union ry into rx.
            self.version += 1
            self.merges += 1
            absorbed_members = list(self._members[ry])
            surviving_members = list(self._members[rx])
            self._trail.append(
                ("union", rx, ry, self._size[rx], self._int_value[rx],
                 len(self._members[rx]))
            )
            self._parent[ry] = rx
            self._size[rx] += self._size[ry]
            self._members[rx].extend(absorbed_members)
            if vx is None and vy is not None:
                self._int_value[rx] = vy
            # Re-signature the parents of every member of BOTH classes
            # (permanent per-node registrations). Both sides are needed:
            # a surviving-side parent may have lost its signature entry to
            # a pop, and this merge is its chance to collide with a
            # congruent peer.
            for member in absorbed_members + surviving_members:
                for parent in self._uses[member]:
                    signature = (
                        self._head[parent],
                        tuple(self.find(c) for c in self._children[parent]),
                    )
                    other = self._sig.get(signature)
                    if other is not None and self.find(other) != self.find(parent):
                        pending.append((parent, other))
                    else:
                        self._trail.append(
                            ("sig", signature, self._sig.get(signature))
                        )
                        self._sig[signature] = parent

    def _check_diseqs(self) -> None:
        for x, y in self._diseqs:
            if self.find(x) == self.find(y):
                self._set_conflict()
                return

    def _fold_interpreted(self) -> None:
        """Constant-fold interpreted applications to a fixpoint."""
        changed = True
        while changed and not self._conflict:
            changed = False
            for node in self._interpreted:
                values = [self._int_value[self.find(c)] for c in self._children[node]]
                if any(v is None for v in values):
                    continue
                fn = self._head[node]
                if fn in _ARITH:
                    result = _ARITH[fn](values[0], values[1])
                    lit = self.intern(IntLit(result))
                    if self.find(node) != self.find(lit):
                        self._merge(node, lit)
                        changed = True
                elif fn in _COMPARE:
                    result = _COMPARE[fn](values[0], values[1])
                    target = self.TRUE if result else self.FALSE
                    if self.find(node) != self.find(target):
                        self._merge(node, target)
                        changed = True
            if changed:
                self._check_diseqs()

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------

    def push(self) -> int:
        """Mark the current state; returns a token for :meth:`pop`."""
        return len(self._trail)

    def pop(self, mark: int) -> None:
        """Undo all mutations recorded after ``mark``."""
        self.version += 1
        while len(self._trail) > mark:
            entry = self._trail.pop()
            tag = entry[0]
            if tag == "union":
                _, rx, ry, old_size, old_value, old_members = entry
                self._parent[ry] = ry
                self._size[rx] = old_size
                self._int_value[rx] = old_value
                del self._members[rx][old_members:]
            elif tag == "sig":
                _, key, old = entry
                if old is None:
                    self._sig.pop(key, None)
                else:
                    self._sig[key] = old
            elif tag == "diseq":
                del self._diseqs[entry[1] :]
            elif tag == "conflict":
                self._conflict = False
            else:  # pragma: no cover - defensive
                raise ProverError(f"unknown trail entry {tag!r}")

    # ------------------------------------------------------------------
    # Introspection (used by the matcher and diagnostics)
    # ------------------------------------------------------------------

    def lookup(self, term: Term) -> Optional[int]:
        """The node id of ``term`` if it is already interned, else None.

        Never creates nodes — used by the relevancy filter to evaluate
        candidate instances without polluting the term universe.
        """
        if isinstance(term, Const):
            return self._memo.get(("c", term.name))
        if isinstance(term, IntLit):
            return self._memo.get(("i", term.value))
        if isinstance(term, App):
            child_ids = []
            for arg in term.args:
                child = self.lookup(arg)
                if child is None:
                    return None
                child_ids.append(child)
            node = self._memo.get(("a", term.fn, tuple(child_ids)))
            if node is not None:
                return node
            # Fall back to a congruence lookup through the signature table.
            signature = (term.fn, tuple(self.find(c) for c in child_ids))
            return self._sig.get(signature)
        return None

    def term_of(self, node: int) -> Term:
        return self._term[node]

    def head_of(self, node: int) -> Optional[str]:
        return self._head[node]

    def children_of(self, node: int) -> Tuple[int, ...]:
        return self._children[node]

    def apps_with_head(self, fn: str) -> Tuple[int, ...]:
        return tuple(self._head_index.get(fn, ()))

    def class_members(self, node: int) -> Iterable[int]:
        return tuple(self._members[self.find(node)])

    def class_apps_with_head(self, node: int, fn: str) -> Iterable[int]:
        return tuple(
            m for m in self._members[self.find(node)] if self._head[m] == fn
        )

    def int_value_of(self, node: int) -> Optional[int]:
        return self._int_value[self.find(node)]

    def diseq_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """The asserted disequalities, as node-id pairs (for countermodels)."""
        return tuple(self._diseqs)

    @property
    def node_count(self) -> int:
        return len(self._term)
