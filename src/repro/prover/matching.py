"""E-matching: matching trigger patterns against the E-graph.

A pattern is a term containing variables. A match is a substitution from
pattern variables to E-graph nodes such that the instantiated pattern is
*congruent* to an existing node — matching is modulo the current
equalities, which is what lets e.g. the pattern ``inc(S, sel(S,Z,F), B, X, G)``
match a ground atom ``inc($0, u, g, x, a)`` when ``u`` has been merged with
``sel($0, x, f)``.

Multi-patterns match each constituent pattern in sequence under a shared
substitution.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence, Tuple

from repro.logic.terms import App, Const, IntLit, Term, Var
from repro.prover.egraph import EGraph

Binding = Dict[str, int]


def match_multipattern(
    egraph: EGraph, patterns: Sequence[Term], stats=None, name=None
) -> Iterator[Binding]:
    """All bindings matching every pattern of the multi-pattern.

    ``stats``, when given, is a ``ProverStats``-shaped object whose
    ``matches`` counter is bumped per binding enumerated — the raw
    E-matching volume, before the solver's relevancy filter prunes it.
    ``name`` additionally attributes those matches to a quantifier in
    ``stats.matches_by_quantifier``.
    """
    for binding in _match_sequence(egraph, patterns, 0, {}):
        if stats is not None:
            stats.matches += 1
            if name is not None:
                by_name = stats.matches_by_quantifier
                by_name[name] = by_name.get(name, 0) + 1
        yield binding


def _match_sequence(
    egraph: EGraph, patterns: Sequence[Term], index: int, binding: Binding
) -> Iterator[Binding]:
    if index == len(patterns):
        yield dict(binding)
        return
    pattern = patterns[index]
    for extended in _match_anywhere(egraph, pattern, binding):
        yield from _match_sequence(egraph, patterns, index + 1, extended)


def _match_anywhere(
    egraph: EGraph, pattern: Term, binding: Binding
) -> Iterator[Binding]:
    """Match ``pattern`` against any node in the E-graph."""
    if not isinstance(pattern, App):
        raise ValueError(f"trigger pattern must be an application: {pattern}")
    for node in egraph.apps_with_head(pattern.fn):
        yield from _match_app(egraph, pattern, node, binding)


def _match_app(
    egraph: EGraph, pattern: App, node: int, binding: Binding
) -> Iterator[Binding]:
    """Match an application pattern against a specific application node."""
    children = egraph.children_of(node)
    if len(children) != len(pattern.args):
        return
    yield from _match_children(egraph, pattern.args, children, 0, binding)


def _match_children(
    egraph: EGraph,
    pattern_args: Tuple[Term, ...],
    child_nodes: Tuple[int, ...],
    index: int,
    binding: Binding,
) -> Iterator[Binding]:
    if index == len(pattern_args):
        yield binding
        return
    pattern = pattern_args[index]
    child = child_nodes[index]
    for extended in _match_term(egraph, pattern, child, binding):
        yield from _match_children(egraph, pattern_args, child_nodes, index + 1, extended)


def _match_term(
    egraph: EGraph, pattern: Term, node: int, binding: Binding
) -> Iterator[Binding]:
    """Match ``pattern`` against the *class* of ``node``."""
    if isinstance(pattern, Var):
        bound = binding.get(pattern.name)
        if bound is None:
            extended = dict(binding)
            extended[pattern.name] = node
            yield extended
        elif egraph.are_equal(bound, node):
            yield binding
        return
    if isinstance(pattern, (Const, IntLit)):
        target = egraph.intern(pattern)
        if egraph.are_equal(target, node):
            yield binding
        return
    if isinstance(pattern, App):
        for member in egraph.class_apps_with_head(node, pattern.fn):
            yield from _match_app(egraph, pattern, member, binding)
        return
    raise TypeError(f"not a pattern term: {pattern!r}")
