"""Append-only proof logs and their independent replay checker.

When the solver runs in explain mode and closes a refutation, it leaves
behind a :class:`ProofLog`: one :class:`ProofStep` per reasoning event —
fact asserted, quantifier instance fired, unit propagation performed,
case split opened, branch decided, branch closed. ``UNSAT`` then stops
being a bare verdict: the log is the proof.

:func:`replay_proof_log` re-validates the log with a deliberately small
trusted kernel — the E-graph (congruence closure over ground literals)
plus a three-valued evaluator — and **none** of the solver's search
machinery: no E-matching, no relevancy filter, no split heuristics. The
checker verifies that

* every asserted instance really is a substitution instance of a
  quantifier the log previously asserted (``subst_formula`` equality);
* every unit propagation is justified: the clause it propagates from was
  genuinely derived (parked earlier on this branch) and every other
  disjunct evaluates to false;
* every case split covers *all* disjuncts of a derived clause, and every
  branch of it is closed;
* every branch closure is justified — either the ground kernel is in
  conflict, or some derived clause has every disjunct false;
* the closures compose: when the log ends, the whole refutation tree is
  closed back to the root.

The replay deliberately re-derives conflicts instead of trusting the
recorded ones, so a corrupted or fabricated log is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.logic.printer import format_formula, format_term
from repro.logic.subst import subst_formula
from repro.logic.terms import (
    And,
    App,
    Eq,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    Pred,
    Term,
    TrueF,
)
from repro.prover.egraph import EGraph

#: Step kinds, in the vocabulary the solver journals.
STEP_FACT = "fact"
STEP_INSTANCE = "instance"
STEP_PROPAGATE = "propagate"
STEP_SPLIT = "split"
STEP_BRANCH = "branch"
STEP_CLOSE = "close"
STEP_END_SPLIT = "end-split"

#: Close justifications.
CLOSE_KERNEL = "kernel"  # the ground kernel (E-graph) is inconsistent
CLOSE_CLAUSE = "clause"  # a derived clause has every disjunct refuted


def flatten_forall(formula: Forall) -> Forall:
    """Merge a ``Forall`` prefix into one quantifier (solver pooling form).

    Shared with the solver so that the quantifiers the replay checker
    registers are structurally identical to the ones the solver pooled
    and instantiated.
    """
    while isinstance(formula.body, Forall):
        inner = formula.body
        triggers = inner.triggers or formula.triggers
        caps = [c for c in (formula.width_cap, inner.width_cap) if c is not None]
        formula = Forall(
            formula.vars + inner.vars,
            inner.body,
            triggers,
            formula.name or inner.name,
            min(caps) if caps else None,
        )
    return formula


def _one_line(formula: Formula) -> str:
    return " ".join(format_formula(formula).split())


@dataclass(frozen=True)
class ProofStep:
    """One reasoning event of a closed refutation."""

    kind: str
    #: The formula this step asserts (fact / instance / propagated unit /
    #: branch decision), when it asserts one.
    formula: Optional[Formula] = None
    #: The clause justifying a propagation, split, or clause-closure.
    clause: Optional[Or] = None
    #: For instances: the pooled quantifier and its witness substitution.
    quantifier: Optional[Forall] = None
    witnesses: Optional[Dict[str, Term]] = None
    #: For branches: the 0-based disjunct index within the split clause.
    index: Optional[int] = None
    #: For closes: :data:`CLOSE_KERNEL` or :data:`CLOSE_CLAUSE`.
    reason: Optional[str] = None

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.kind}
        if self.formula is not None:
            payload["formula"] = _one_line(self.formula)
        if self.clause is not None:
            payload["clause"] = _one_line(self.clause)
        if self.quantifier is not None:
            payload["quantifier"] = self.quantifier.name or "<anonymous>"
        if self.witnesses is not None:
            payload["witnesses"] = {
                var: format_term(term)
                for var, term in sorted(self.witnesses.items())
            }
        if self.index is not None:
            payload["index"] = self.index
        if self.reason is not None:
            payload["reason"] = self.reason
        return payload


@dataclass
class ProofLog:
    """The append-only record of one closed refutation."""

    steps: List[ProofStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def counts(self) -> Dict[str, int]:
        by_kind: Dict[str, int] = {}
        for step in self.steps:
            by_kind[step.kind] = by_kind.get(step.kind, 0) + 1
        return by_kind

    def to_dict(self, *, max_steps: Optional[int] = None) -> dict:
        steps = self.steps if max_steps is None else self.steps[:max_steps]
        return {
            "steps": [step.to_dict() for step in steps],
            "total_steps": len(self.steps),
            "truncated": max_steps is not None and len(self.steps) > max_steps,
            "counts": self.counts(),
        }


@dataclass
class ReplayResult:
    """Outcome of independently re-validating a proof log."""

    ok: bool
    steps_checked: int = 0
    splits: int = 0
    closes: int = 0
    instances: int = 0
    #: Human description of the first failing step, when ``ok`` is False.
    error: Optional[str] = None

    def describe(self) -> str:
        if self.ok:
            return (
                f"replay ok: {self.steps_checked} step(s), "
                f"{self.splits} split(s), {self.closes} close(s), "
                f"{self.instances} instance(s)"
            )
        return f"replay FAILED: {self.error}"


class _Frame:
    """One open case split during replay."""

    __slots__ = ("clause", "seen", "open_index", "mark", "pending_snapshot")

    def __init__(self, clause: Or):
        self.clause = clause
        self.seen: set = set()  # closed branch indices
        self.open_index: Optional[int] = None
        self.mark: Optional[int] = None
        self.pending_snapshot: Optional[list] = None


class _ReplayError(Exception):
    pass


class _Replayer:
    """The small trusted kernel: an E-graph plus a ground evaluator."""

    def __init__(self):
        self.egraph = EGraph()
        self.pending: List[Or] = []  # derived clauses on the current path
        self.quants: List[Forall] = []
        self.frames: List[_Frame] = []
        self.done = False  # the root refutation is closed

    # -- three-valued evaluation (never creates kernel state) ----------

    def _eval(self, formula: Formula) -> Optional[bool]:
        if isinstance(formula, TrueF):
            return True
        if isinstance(formula, FalseF):
            return False
        if isinstance(formula, Eq):
            left = self.egraph.intern(formula.left)
            right = self.egraph.intern(formula.right)
            if self.egraph.are_equal(left, right):
                return True
            if self.egraph.are_diseq(left, right):
                return False
            return None
        if isinstance(formula, Pred):
            node = self.egraph.intern(App(formula.name, formula.args))
            return self.egraph.truth(node)
        if isinstance(formula, Not):
            inner = self._eval(formula.body)
            return None if inner is None else not inner
        if isinstance(formula, And):
            value: Optional[bool] = True
            for conjunct in formula.conjuncts:
                inner = self._eval(conjunct)
                if inner is False:
                    return False
                if inner is None:
                    value = None
            return value
        if isinstance(formula, Or):
            value = False
            for disjunct in formula.disjuncts:
                inner = self._eval(disjunct)
                if inner is True:
                    return True
                if inner is None:
                    value = None
            return value
        return None  # quantifiers: unknown

    # -- ground assertion (mirrors the solver's deterministic _assert) --

    def assert_ground(self, formula: Formula) -> None:
        """Assert an NNF formula into the kernel; conflicts set the
        E-graph's conflict flag (checked by closes, never fatal here)."""
        if self.egraph.in_conflict:
            return
        if isinstance(formula, TrueF):
            return
        if isinstance(formula, FalseF):
            # An explicit falsum: force the kernel inconsistent.
            ok = self.egraph.assert_diseq(self.egraph.TRUE, self.egraph.TRUE)
            assert not ok
            return
        if isinstance(formula, And):
            for conjunct in formula.conjuncts:
                self.assert_ground(conjunct)
                if self.egraph.in_conflict:
                    return
            return
        if isinstance(formula, Or):
            remaining = []
            for disjunct in formula.disjuncts:
                value = self._eval(disjunct)
                if value is True:
                    return
                if value is None:
                    remaining.append(disjunct)
            if not remaining:
                self.assert_ground(FalseF())
                return
            if len(remaining) == 1:
                self.assert_ground(remaining[0])
                return
            self.pending.append(formula)
            return
        if isinstance(formula, Forall):
            self.quants.append(flatten_forall(formula))
            return
        if isinstance(formula, Exists):
            raise _ReplayError(
                "unexpected existential in a proof log (facts are "
                "skolemized before assertion)"
            )
        if isinstance(formula, Eq):
            left = self.egraph.intern(formula.left)
            right = self.egraph.intern(formula.right)
            self.egraph.assert_eq(left, right)
            return
        if isinstance(formula, Pred):
            node = self.egraph.intern(App(formula.name, formula.args))
            self.egraph.assert_eq(node, self.egraph.TRUE)
            return
        if isinstance(formula, Not):
            body = formula.body
            if isinstance(body, Eq):
                left = self.egraph.intern(body.left)
                right = self.egraph.intern(body.right)
                self.egraph.assert_diseq(left, right)
                return
            if isinstance(body, Pred):
                node = self.egraph.intern(App(body.name, body.args))
                self.egraph.assert_eq(node, self.egraph.FALSE)
                return
            raise _ReplayError(
                f"cannot assert non-literal negation {_one_line(formula)}"
            )
        raise _ReplayError(f"cannot assert {formula!r}")

    # -- clause justification ------------------------------------------

    def _find_derived_clause(
        self, clause: Or, *, spare: Optional[Formula] = None
    ) -> Or:
        """A pending clause covering ``clause``: its disjuncts must be a
        superset of the clause's, and every disjunct not in the clause —
        and not the ``spare`` survivor — must evaluate to false."""
        wanted = set(clause.disjuncts)
        for parked in self.pending:
            have = set(parked.disjuncts)
            if not wanted <= have:
                continue
            omitted = [
                d for d in parked.disjuncts
                if d not in wanted and d is not spare and d != spare
            ]
            if all(self._eval(d) is False for d in omitted):
                return parked
        raise _ReplayError(
            f"clause {_one_line(clause)} was never derived on this branch "
            "(or its pruned disjuncts are not refuted)"
        )

    def _justify_close(self, step: ProofStep) -> None:
        if self.egraph.in_conflict:
            return  # the ground kernel re-derived the conflict
        if step.reason == CLOSE_CLAUSE and step.clause is not None:
            # The closing clause must be derived and fully refuted.
            wanted = set(step.clause.disjuncts)
            for parked in self.pending:
                if wanted <= set(parked.disjuncts) and all(
                    self._eval(d) is False for d in parked.disjuncts
                ):
                    return
            raise _ReplayError(
                f"close by clause {_one_line(step.clause)}: no derived "
                "clause with every disjunct refuted"
            )
        raise _ReplayError(
            "close is not justified: kernel is consistent and no refuted "
            "clause was given"
        )

    # -- branch bookkeeping --------------------------------------------

    def _close_current(self) -> None:
        """Close the innermost open branch (or the root)."""
        if not self.frames:
            self.done = True
            return
        frame = self.frames[-1]
        if frame.open_index is None:
            raise _ReplayError("close without an open branch")
        self.egraph.pop(frame.mark)
        self.pending = frame.pending_snapshot
        frame.seen.add(frame.open_index)
        frame.open_index = None

    def step_fact(self, step: ProofStep) -> None:
        if step.formula is None:
            raise _ReplayError("fact step carries no formula")
        self.assert_ground(step.formula)

    def step_instance(self, step: ProofStep) -> None:
        if step.quantifier is None or step.formula is None:
            raise _ReplayError("instance step is missing its quantifier")
        quantifier = flatten_forall(step.quantifier)
        if quantifier not in self.quants:
            raise _ReplayError(
                f"instance of unregistered quantifier "
                f"{quantifier.name or '<anonymous>'}"
            )
        witnesses = step.witnesses or {}
        if set(witnesses) != set(quantifier.vars):
            raise _ReplayError(
                f"instance witnesses {sorted(witnesses)} do not bind "
                f"exactly {sorted(quantifier.vars)}"
            )
        expected = subst_formula(quantifier.body, dict(witnesses))
        if expected != step.formula:
            raise _ReplayError(
                f"recorded instance is not the substitution instance of "
                f"{quantifier.name or '<anonymous>'}"
            )
        self.assert_ground(step.formula)

    def step_propagate(self, step: ProofStep) -> None:
        if step.formula is None or step.clause is None:
            raise _ReplayError("propagate step is missing its clause")
        if step.formula not in set(step.clause.disjuncts):
            raise _ReplayError("propagated unit is not in its clause")
        parked = self._find_derived_clause(step.clause, spare=step.formula)
        others = [
            d for d in parked.disjuncts if d != step.formula
        ]
        if not all(self._eval(d) is False for d in others):
            raise _ReplayError(
                f"propagation from {_one_line(parked)}: a sibling "
                "disjunct is not refuted"
            )
        self.pending = [p for p in self.pending if p is not parked]
        self.assert_ground(step.formula)

    def step_split(self, step: ProofStep) -> None:
        if step.clause is None:
            raise _ReplayError("split step carries no clause")
        parked = self._find_derived_clause(step.clause)
        self.pending = [p for p in self.pending if p is not parked]
        self.frames.append(_Frame(step.clause))

    def step_branch(self, step: ProofStep) -> None:
        if not self.frames:
            raise _ReplayError("branch outside any split")
        frame = self.frames[-1]
        if frame.open_index is not None:
            raise _ReplayError("branch opened while another is open")
        if step.index is None or not (
            0 <= step.index < len(frame.clause.disjuncts)
        ):
            raise _ReplayError(f"branch index {step.index!r} out of range")
        if step.index in frame.seen:
            raise _ReplayError(f"branch {step.index} decided twice")
        decision = frame.clause.disjuncts[step.index]
        if step.formula is not None and step.formula != decision:
            raise _ReplayError(
                "branch decision does not match the split clause"
            )
        frame.open_index = step.index
        frame.mark = self.egraph.push()
        frame.pending_snapshot = list(self.pending)
        self.assert_ground(decision)

    def step_close(self, step: ProofStep) -> None:
        self._justify_close(step)
        self._close_current()

    def step_end_split(self, step: ProofStep) -> None:
        if not self.frames:
            raise _ReplayError("end-split outside any split")
        frame = self.frames[-1]
        if frame.open_index is not None:
            raise _ReplayError("end-split with a branch still open")
        expected = set(range(len(frame.clause.disjuncts)))
        if frame.seen != expected:
            missing = sorted(expected - frame.seen)
            raise _ReplayError(
                f"split on {_one_line(frame.clause)} closed without "
                f"branch(es) {missing}"
            )
        self.frames.pop()
        # All branches refuted: the split's own branch point is closed.
        self._close_current()


def replay_proof_log(log: ProofLog) -> ReplayResult:
    """Independently re-validate a proof log with the ground kernel.

    Returns a :class:`ReplayResult`; ``ok`` is True iff every step is
    justified and the refutation tree closes back to the root.
    """
    replayer = _Replayer()
    result = ReplayResult(ok=False)
    handlers = {
        STEP_FACT: replayer.step_fact,
        STEP_INSTANCE: replayer.step_instance,
        STEP_PROPAGATE: replayer.step_propagate,
        STEP_SPLIT: replayer.step_split,
        STEP_BRANCH: replayer.step_branch,
        STEP_CLOSE: replayer.step_close,
        STEP_END_SPLIT: replayer.step_end_split,
    }
    for position, step in enumerate(log.steps):
        if replayer.done:
            result.error = f"step {position}: trailing step after the root closed"
            return result
        handler = handlers.get(step.kind)
        if handler is None:
            result.error = f"step {position}: unknown step kind {step.kind!r}"
            return result
        try:
            handler(step)
        except _ReplayError as error:
            result.error = f"step {position} ({step.kind}): {error}"
            return result
        result.steps_checked += 1
        if step.kind == STEP_SPLIT:
            result.splits += 1
        elif step.kind == STEP_CLOSE:
            result.closes += 1
        elif step.kind == STEP_INSTANCE:
            result.instances += 1
    if not replayer.done:
        result.error = "log ended before the refutation closed"
        return result
    result.ok = True
    return result
