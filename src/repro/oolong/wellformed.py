"""Static well-formedness checking for oolong scopes.

Enforced rules (Section 2 of the paper):

1. **Self-contained names** — every group, field, attribute, and procedure
   referred to anywhere in the scope is declared in the scope.
2. **Acyclic local inclusions** — the ``in`` clauses of groups may not form
   a cycle.
3. **Modifies designators** are rooted at a formal parameter of their
   procedure, traverse declared fields, and end at a declared attribute.
4. **Implementations** match a declared procedure and repeat its parameter
   list verbatim; their bodies reference only declared fields (data groups
   are not allowed in commands), declared procedures with correct arity,
   and in-scope variables (formals or enclosing ``var`` binders).
5. ``var`` binders may not shadow a formal parameter or an enclosing binder
   (oolong names are unique, so shadowing is rejected rather than resolved).

These checks are pure name/shape checks; the pivot-uniqueness restriction is
a separate pass in :mod:`repro.restrictions.pivot`.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.errors import SourcePosition, WellFormednessError
from repro.oolong.ast import (
    Assert,
    Assign,
    AssignNew,
    Assume,
    BinOp,
    BoolConst,
    Call,
    Choice,
    Cmd,
    Expr,
    FieldAccess,
    FieldDecl,
    GroupDecl,
    Id,
    ImplDecl,
    IntConst,
    NullConst,
    ProcDecl,
    Seq,
    Skip,
    UnOp,
    VarCmd,
)
from repro.oolong.program import Scope


def check_well_formed(scope: Scope) -> None:
    """Raise :class:`WellFormednessError` on the first violated rule."""
    from repro.obs import span
    from repro.testing.faults import fault_point

    with span("wellformed"):
        fault_point("wellformed")
        _check_group_acyclicity(scope)
        for decl in scope.decls:
            if isinstance(decl, GroupDecl):
                _check_in_targets(scope, decl.name, decl.in_groups, decl.position)
            elif isinstance(decl, FieldDecl):
                _check_field(scope, decl)
            elif isinstance(decl, ProcDecl):
                _check_proc(scope, decl)
            elif isinstance(decl, ImplDecl):
                _check_impl(scope, decl)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


def _check_in_targets(
    scope: Scope,
    owner: str,
    in_groups,
    position: Optional[SourcePosition],
) -> None:
    for group_name in in_groups:
        if not scope.is_group(group_name):
            raise WellFormednessError(
                f"{owner!r} declared in {group_name!r}, which is not a declared group",
                position,
            )


def _check_field(scope: Scope, decl: FieldDecl) -> None:
    _check_in_targets(scope, decl.name, decl.in_groups, decl.position)
    for clause in decl.maps:
        if not scope.is_attribute(clause.mapped):
            raise WellFormednessError(
                f"field {decl.name!r} maps undeclared attribute {clause.mapped!r}",
                decl.position,
            )
        for group_name in clause.into:
            if not scope.is_group(group_name):
                raise WellFormednessError(
                    f"field {decl.name!r} maps {clause.mapped!r} into "
                    f"{group_name!r}, which is not a declared group",
                    decl.position,
                )


def _check_group_acyclicity(scope: Scope) -> None:
    """Reject cycles among group ``in`` clauses via three-color DFS."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in scope.groups}

    def visit(name: str, trail: List[str]) -> None:
        color[name] = GRAY
        trail.append(name)
        decl = scope.group(name)
        assert decl is not None
        for parent in decl.in_groups:
            if parent not in color:
                continue  # undeclared parent is reported elsewhere
            if color[parent] == GRAY:
                cycle = " -> ".join(trail + [parent])
                raise WellFormednessError(
                    f"cyclic group inclusion: {cycle}", decl.position
                )
            if color[parent] == WHITE:
                visit(parent, trail)
        trail.pop()
        color[name] = BLACK

    for name in list(color):
        if color[name] == WHITE:
            visit(name, [])


def _check_proc(scope: Scope, decl: ProcDecl) -> None:
    if len(set(decl.params)) != len(decl.params):
        raise WellFormednessError(
            f"procedure {decl.name!r} repeats a parameter name", decl.position
        )
    for condition in decl.requires + decl.ensures:
        _check_contract_expr(scope, condition, set(decl.params), decl)
    for designator in decl.modifies:
        if designator.root not in decl.params:
            raise WellFormednessError(
                f"modifies designator {designator} of {decl.name!r} is not rooted "
                "at a formal parameter",
                decl.position,
            )
        for field_name in designator.path:
            if not scope.is_field(field_name):
                raise WellFormednessError(
                    f"modifies designator {designator} of {decl.name!r} selects "
                    f"{field_name!r}, which is not a declared field",
                    decl.position,
                )
        if not scope.is_attribute(designator.attr):
            raise WellFormednessError(
                f"modifies designator {designator} of {decl.name!r} ends at "
                f"{designator.attr!r}, which is not a declared attribute",
                decl.position,
            )


def _check_contract_expr(scope: Scope, expr, params, decl: ProcDecl) -> None:
    """requires/ensures clauses reference only formals and declared fields."""
    from repro.oolong.ast import BinOp as _BinOp, UnOp as _UnOp

    if isinstance(expr, (NullConst, BoolConst, IntConst)):
        return
    if isinstance(expr, Id):
        if expr.name not in params:
            raise WellFormednessError(
                f"contract of {decl.name!r} references {expr.name!r}, which is "
                "not a formal parameter",
                decl.position,
            )
        return
    if isinstance(expr, FieldAccess):
        if not scope.is_field(expr.attr):
            raise WellFormednessError(
                f"contract of {decl.name!r} selects {expr.attr!r}, which is "
                "not a declared field",
                decl.position,
            )
        _check_contract_expr(scope, expr.obj, params, decl)
        return
    if isinstance(expr, _BinOp):
        _check_contract_expr(scope, expr.left, params, decl)
        _check_contract_expr(scope, expr.right, params, decl)
        return
    if isinstance(expr, _UnOp):
        _check_contract_expr(scope, expr.operand, params, decl)
        return
    raise TypeError(f"not an oolong expression: {expr!r}")


def _check_impl(scope: Scope, decl: ImplDecl) -> None:
    proc = scope.proc(decl.name)
    if proc is None:
        raise WellFormednessError(
            f"implementation of undeclared procedure {decl.name!r}", decl.position
        )
    if proc.params != decl.params:
        raise WellFormednessError(
            f"implementation of {decl.name!r} must repeat the parameter list "
            f"{list(proc.params)}, found {list(decl.params)}",
            decl.position,
        )
    _check_cmd(scope, decl.body, set(decl.params), set(decl.params), decl)


# ---------------------------------------------------------------------------
# Commands and expressions
# ---------------------------------------------------------------------------


def _check_cmd(
    scope: Scope,
    cmd: Cmd,
    bound: Set[str],
    formals: Set[str],
    impl: ImplDecl,
) -> None:
    if isinstance(cmd, (Assert, Assume)):
        _check_expr(scope, cmd.condition, bound, impl)
    elif isinstance(cmd, Skip):
        pass
    elif isinstance(cmd, VarCmd):
        if cmd.name in bound:
            raise WellFormednessError(
                f"'var {cmd.name}' shadows an existing variable in impl "
                f"{impl.name!r}",
                cmd.position,
            )
        _check_cmd(scope, cmd.body, bound | {cmd.name}, formals, impl)
    elif isinstance(cmd, Assign):
        _check_expr(scope, cmd.target, bound, impl)
        _check_expr(scope, cmd.rhs, bound, impl)
        _check_assign_target(cmd.target, formals, impl, cmd.position)
    elif isinstance(cmd, AssignNew):
        _check_expr(scope, cmd.target, bound, impl)
        _check_assign_target(cmd.target, formals, impl, cmd.position)
    elif isinstance(cmd, Seq):
        _check_cmd(scope, cmd.first, bound, formals, impl)
        _check_cmd(scope, cmd.second, bound, formals, impl)
    elif isinstance(cmd, Choice):
        _check_cmd(scope, cmd.left, bound, formals, impl)
        _check_cmd(scope, cmd.right, bound, formals, impl)
    elif isinstance(cmd, Call):
        proc = scope.proc(cmd.proc)
        if proc is None:
            raise WellFormednessError(
                f"call to undeclared procedure {cmd.proc!r} in impl {impl.name!r}",
                cmd.position,
            )
        if len(proc.params) != len(cmd.args):
            raise WellFormednessError(
                f"call to {cmd.proc!r} passes {len(cmd.args)} arguments, "
                f"declared with {len(proc.params)}",
                cmd.position,
            )
        for arg in cmd.args:
            _check_expr(scope, arg, bound, impl)
    else:
        raise TypeError(f"not an oolong command: {cmd!r}")


def _check_assign_target(
    target: Expr,
    formals: Set[str],
    impl: ImplDecl,
    position: Optional[SourcePosition],
) -> None:
    """Targets are local variables or field designators — never formals."""
    if isinstance(target, Id):
        if target.name in formals:
            raise WellFormednessError(
                f"assignment to formal parameter {target.name!r} in impl "
                f"{impl.name!r} (formals are unchangeable once bound)",
                position,
            )
    elif not isinstance(target, FieldAccess):
        raise WellFormednessError(
            f"assignment target must be a variable or field designator in impl "
            f"{impl.name!r}",
            position,
        )


def _check_expr(scope: Scope, expr: Expr, bound: Set[str], impl: ImplDecl) -> None:
    if isinstance(expr, (NullConst, BoolConst, IntConst)):
        return
    if isinstance(expr, Id):
        if expr.name not in bound:
            raise WellFormednessError(
                f"unbound variable {expr.name!r} in impl {impl.name!r}",
                expr.position,
            )
        return
    if isinstance(expr, FieldAccess):
        if scope.is_group(expr.attr):
            raise WellFormednessError(
                f"data group {expr.attr!r} used in a command (groups are "
                "allowed only in modifies lists)",
                expr.position,
            )
        if not scope.is_field(expr.attr):
            raise WellFormednessError(
                f"access to undeclared field {expr.attr!r} in impl {impl.name!r}",
                expr.position,
            )
        _check_expr(scope, expr.obj, bound, impl)
        return
    if isinstance(expr, BinOp):
        _check_expr(scope, expr.left, bound, impl)
        _check_expr(scope, expr.right, bound, impl)
        return
    if isinstance(expr, UnOp):
        _check_expr(scope, expr.operand, bound, impl)
        return
    raise TypeError(f"not an oolong expression: {expr!r}")
