"""A recursive-descent parser for oolong.

Grammar (Figures 0 and 1 of the paper, plus ``if``/``skip`` sugar)::

    Program   ::= Decl*
    Decl      ::= 'group' Id ['in' IdList]
                | 'field' Id ['in' IdList] ('maps' Id 'into' IdList)*
                | 'proc' Id '(' [IdList] ')' ['modifies' DesigList]
                | 'impl' Id '(' [IdList] ')' '{' Cmd '}'
    Desig     ::= Id ('.' Id)+

    Cmd       ::= CmdSeq ('[]' CmdSeq)*
    CmdSeq    ::= CmdAtom (';' CmdAtom)*
    CmdAtom   ::= 'assert' Expr | 'assume' Expr
                | 'var' Id 'in' Cmd 'end'
                | 'skip'
                | 'if' Expr 'then' Cmd 'else' Cmd 'end'
                | '(' Cmd ')'
                | Id '(' [ExprList] ')'
                | Expr ':=' ('new' '(' ')' | Expr)

    Expr      ::= Or
    Or        ::= And ('||' And)*
    And       ::= Cmp ('&&' Cmp)*
    Cmp       ::= Add (('='|'!='|'<'|'<='|'>'|'>=') Add)?
    Add       ::= Mul (('+'|'-') Mul)*
    Mul       ::= Unary ('*' Unary)*
    Unary     ::= ('!'|'-') Unary | Postfix
    Postfix   ::= Primary ('.' Id)*
    Primary   ::= 'null' | 'true' | 'false' | Int | Id | '(' Expr ')'

The ``if`` form is desugared exactly as the paper prescribes::

    if B then C else D end  =  (assume !B ; D) [] (assume B ; C)

Error handling comes in two modes. The default is fail-fast: the first
grammar violation raises :class:`repro.errors.ParseError`. With
``recover=True`` the parser switches to panic-mode recovery: each error
is recorded, the token stream is synchronized at the next declaration or
command boundary, and parsing continues — so one run surfaces *every*
syntax error in a file. :func:`parse_program_recovering` packages the
recovered declarations together with the collected errors (and converts
them to ``OL001``/``OL002`` diagnostics on request).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import LexError, ParseError
from repro.oolong.ast import (
    Assert,
    Assign,
    AssignNew,
    Assume,
    BinOp,
    BoolConst,
    Call,
    Choice,
    Cmd,
    Decl,
    Designator,
    Expr,
    FieldAccess,
    FieldDecl,
    GroupDecl,
    Id,
    ImplDecl,
    IntConst,
    MapsClause,
    NullConst,
    ProcDecl,
    Seq,
    Skip,
    UnOp,
    VarCmd,
)
from repro.oolong.lexer import tokenize
from repro.oolong.tokens import Token, TokenKind
from repro.testing.faults import fault_point

_COMPARISONS = {
    TokenKind.EQ: "=",
    TokenKind.NE: "!=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}


#: Keywords that can only start a declaration — panic-mode sync points.
_DECL_STARTS = frozenset(
    (TokenKind.GROUP, TokenKind.FIELD, TokenKind.PROC, TokenKind.IMPL)
)

#: Tokens that end the current command context during command-level sync.
_CMD_BOUNDARIES = frozenset(
    (
        TokenKind.SEMI,
        TokenKind.RBRACE,
        TokenKind.END,
        TokenKind.BOX,
        TokenKind.EOF,
    )
)

#: Recovery stops recording past this many errors per source (cascade cap).
MAX_RECOVERED_ERRORS = 25


class Parser:
    """Parses a pre-tokenized oolong source.

    ``recover=True`` enables panic-mode error recovery: grammar
    violations are appended to :attr:`errors` and parsing resynchronizes
    instead of raising. Fail-fast (the default) raises on first error.
    """

    def __init__(self, tokens: List[Token], *, recover: bool = False):
        self._tokens = tokens
        self._index = 0
        self._recover = recover
        #: Errors collected in recovery mode, in source order of detection.
        self.errors: List[ParseError] = []

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _match(self, kind: TokenKind) -> bool:
        if self._check(kind):
            self._advance()
            return True
        return False

    def _expect(self, kind: TokenKind, context: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r} {context}, found {token.kind.value!r}",
                token.position,
            )
        return self._advance()

    def _ident(self, context: str) -> str:
        return self._expect(TokenKind.IDENT, context).value

    def _ident_list(self, context: str) -> Tuple[str, ...]:
        names = [self._ident(context)]
        while self._match(TokenKind.COMMA):
            names.append(self._ident(context))
        return tuple(names)

    # -- panic-mode recovery -----------------------------------------------

    def _record(self, error: ParseError) -> None:
        if len(self.errors) < MAX_RECOVERED_ERRORS:
            self.errors.append(error)

    def _synchronize_decl(self, start_index: int) -> None:
        """Skip tokens until the next declaration keyword at brace depth 0.

        Guarantees progress: if the failed production consumed nothing,
        one token is discarded before scanning, so the driver loop always
        terminates.
        """
        if self._index == start_index and not self._check(TokenKind.EOF):
            self._advance()
        depth = 0
        while not self._check(TokenKind.EOF):
            kind = self._peek().kind
            if kind is TokenKind.LBRACE:
                depth += 1
            elif kind is TokenKind.RBRACE:
                depth = max(depth - 1, 0)
            elif kind in _DECL_STARTS and depth == 0:
                return
            self._advance()

    def _synchronize_cmd(self) -> None:
        """Skip tokens up to (not including) the next command boundary."""
        while True:
            kind = self._peek().kind
            if kind in _CMD_BOUNDARIES or kind in _DECL_STARTS:
                return
            self._advance()

    # -- declarations ------------------------------------------------------

    def parse_program(self) -> Tuple[Decl, ...]:
        """Parse a whole program: a sequence of declarations up to EOF.

        In recovery mode a failed declaration is recorded and skipped up
        to the next declaration boundary; all successfully parsed
        declarations (before, between, and after errors) are returned.
        """
        decls: List[Decl] = []
        while not self._check(TokenKind.EOF):
            start_index = self._index
            try:
                decls.append(self.parse_decl())
            except ParseError as error:
                if not self._recover:
                    raise
                self._record(error)
                self._synchronize_decl(start_index)
        return tuple(decls)

    def parse_decl(self) -> Decl:
        token = self._peek()
        if token.kind is TokenKind.GROUP:
            return self._parse_group()
        if token.kind is TokenKind.FIELD:
            return self._parse_field()
        if token.kind is TokenKind.PROC:
            return self._parse_proc()
        if token.kind is TokenKind.IMPL:
            return self._parse_impl()
        raise ParseError(
            f"expected a declaration, found {token.kind.value!r}", token.position
        )

    def _parse_group(self) -> GroupDecl:
        position = self._advance().position
        name = self._ident("after 'group'")
        in_groups: Tuple[str, ...] = ()
        if self._match(TokenKind.IN):
            in_groups = self._ident_list("in 'in' clause")
        return GroupDecl(name, in_groups, position)

    def _parse_field(self) -> FieldDecl:
        position = self._advance().position
        name = self._ident("after 'field'")
        in_groups: Tuple[str, ...] = ()
        if self._match(TokenKind.IN):
            in_groups = self._ident_list("in 'in' clause")
        maps: List[MapsClause] = []
        while self._match(TokenKind.MAPS):
            mapped = self._ident("after 'maps'")
            self._expect(TokenKind.INTO, "in maps clause")
            into = self._ident_list("in 'into' clause")
            maps.append(MapsClause(mapped, into))
        return FieldDecl(name, in_groups, tuple(maps), position)

    def _parse_params(self) -> Tuple[str, ...]:
        self._expect(TokenKind.LPAREN, "before parameter list")
        params: Tuple[str, ...] = ()
        if not self._check(TokenKind.RPAREN):
            params = self._ident_list("in parameter list")
        self._expect(TokenKind.RPAREN, "after parameter list")
        return params

    def _parse_proc(self) -> ProcDecl:
        position = self._advance().position
        name = self._ident("after 'proc'")
        params = self._parse_params()
        modifies: List[Designator] = []
        requires: List[Expr] = []
        ensures: List[Expr] = []
        while True:
            if self._match(TokenKind.MODIFIES):
                modifies.append(self._parse_designator())
                while self._match(TokenKind.COMMA):
                    modifies.append(self._parse_designator())
            elif self._match(TokenKind.REQUIRES):
                requires.append(self.parse_expr())
            elif self._match(TokenKind.ENSURES):
                ensures.append(self.parse_expr())
            else:
                break
        return ProcDecl(
            name, params, tuple(modifies), tuple(requires), tuple(ensures), position
        )

    def _parse_designator(self) -> Designator:
        root = self._ident("at start of modifies designator")
        selectors: List[str] = []
        self._expect(TokenKind.DOT, "in modifies designator")
        selectors.append(self._ident("after '.'"))
        while self._match(TokenKind.DOT):
            selectors.append(self._ident("after '.'"))
        return Designator(root, tuple(selectors[:-1]), selectors[-1])

    def _parse_impl(self) -> ImplDecl:
        position = self._advance().position
        name = self._ident("after 'impl'")
        params = self._parse_params()
        self._expect(TokenKind.LBRACE, "before implementation body")
        body = self.parse_cmd()
        self._expect(TokenKind.RBRACE, "after implementation body")
        return ImplDecl(name, params, body, position)

    # -- commands ----------------------------------------------------------

    def parse_cmd(self) -> Cmd:
        """Parse a command; ``[]`` binds loosest, then ``;``."""
        cmd = self._parse_seq()
        while self._match(TokenKind.BOX):
            cmd = Choice(cmd, self._parse_seq())
        return cmd

    def _parse_seq(self) -> Cmd:
        cmd = self._parse_atom_recovering()
        while self._match(TokenKind.SEMI):
            cmd = Seq(cmd, self._parse_atom_recovering())
        return cmd

    def _parse_atom_recovering(self) -> Cmd:
        """One atomic command; in recovery mode a failed atom becomes a
        ``skip`` hole and the stream synchronizes at the next ``;`` (or
        the end of the enclosing command context), so every malformed
        statement in a body yields its own error."""
        if not self._recover:
            return self._parse_atom_cmd()
        try:
            return self._parse_atom_cmd()
        except ParseError as error:
            self._record(error)
            self._synchronize_cmd()
            return Skip()

    def _parse_atom_cmd(self) -> Cmd:
        token = self._peek()
        if token.kind is TokenKind.ASSERT:
            self._advance()
            return Assert(self.parse_expr(), token.position)
        if token.kind is TokenKind.ASSUME:
            self._advance()
            return Assume(self.parse_expr(), token.position)
        if token.kind is TokenKind.VAR:
            self._advance()
            name = self._ident("after 'var'")
            self._expect(TokenKind.IN, "after local variable name")
            body = self.parse_cmd()
            self._expect(TokenKind.END, "after 'var' body")
            return VarCmd(name, body, token.position)
        if token.kind is TokenKind.SKIP:
            self._advance()
            return Skip()
        if token.kind is TokenKind.IF:
            return self._parse_if(token)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            cmd = self.parse_cmd()
            self._expect(TokenKind.RPAREN, "after parenthesized command")
            return cmd
        if token.kind is TokenKind.IDENT and self._peek(1).kind is TokenKind.LPAREN:
            return self._parse_call(token)
        return self._parse_assignment(token)

    def _parse_if(self, token: Token) -> Cmd:
        """Desugar ``if B then C else D end`` per the paper's encoding."""
        self._advance()
        condition = self.parse_expr()
        self._expect(TokenKind.THEN, "in if command")
        then_cmd = self.parse_cmd()
        self._expect(TokenKind.ELSE, "in if command")
        else_cmd = self.parse_cmd()
        self._expect(TokenKind.END, "after if command")
        negated = UnOp("!", condition)
        return Choice(
            Seq(Assume(negated, token.position), else_cmd),
            Seq(Assume(condition, token.position), then_cmd),
        )

    def _parse_call(self, token: Token) -> Cmd:
        proc = self._ident("at call")
        self._expect(TokenKind.LPAREN, "after procedure name")
        args: List[Expr] = []
        if not self._check(TokenKind.RPAREN):
            args.append(self.parse_expr())
            while self._match(TokenKind.COMMA):
                args.append(self.parse_expr())
        self._expect(TokenKind.RPAREN, "after call arguments")
        return Call(proc, tuple(args), token.position)

    def _parse_assignment(self, token: Token) -> Cmd:
        target = self.parse_expr()
        if not isinstance(target, (Id, FieldAccess)):
            raise ParseError(
                "assignment target must be a variable or a field designator",
                token.position,
            )
        self._expect(TokenKind.ASSIGN, "in assignment")
        if self._check(TokenKind.NEW):
            self._advance()
            self._expect(TokenKind.LPAREN, "after 'new'")
            self._expect(TokenKind.RPAREN, "after 'new('")
            return AssignNew(target, token.position)
        rhs = self.parse_expr()
        return Assign(target, rhs, token.position)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        expr = self._parse_and()
        while self._match(TokenKind.OR):
            expr = BinOp("||", expr, self._parse_and())
        return expr

    def _parse_and(self) -> Expr:
        expr = self._parse_cmp()
        while self._match(TokenKind.AND):
            expr = BinOp("&&", expr, self._parse_cmp())
        return expr

    def _parse_cmp(self) -> Expr:
        expr = self._parse_add()
        kind = self._peek().kind
        if kind in _COMPARISONS:
            self._advance()
            expr = BinOp(_COMPARISONS[kind], expr, self._parse_add())
        return expr

    def _parse_add(self) -> Expr:
        expr = self._parse_mul()
        while True:
            if self._match(TokenKind.PLUS):
                expr = BinOp("+", expr, self._parse_mul())
            elif self._match(TokenKind.MINUS):
                expr = BinOp("-", expr, self._parse_mul())
            else:
                return expr

    def _parse_mul(self) -> Expr:
        expr = self._parse_unary()
        while self._match(TokenKind.STAR):
            expr = BinOp("*", expr, self._parse_unary())
        return expr

    def _parse_unary(self) -> Expr:
        if self._match(TokenKind.NOT):
            return UnOp("!", self._parse_unary())
        if self._match(TokenKind.MINUS):
            return UnOp("-", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while self._check(TokenKind.DOT):
            dot = self._advance()
            attr = self._ident("after '.'")
            expr = FieldAccess(expr, attr, dot.position)
        return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.NULL:
            self._advance()
            return NullConst()
        if token.kind is TokenKind.TRUE:
            self._advance()
            return BoolConst(True)
        if token.kind is TokenKind.FALSE:
            self._advance()
            return BoolConst(False)
        if token.kind is TokenKind.INT:
            self._advance()
            return IntConst(int(token.value))
        if token.kind is TokenKind.IDENT:
            self._advance()
            return Id(token.value, token.position)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self.parse_expr()
            self._expect(TokenKind.RPAREN, "after parenthesized expression")
            return expr
        raise ParseError(
            f"expected an expression, found {token.kind.value!r}", token.position
        )

    def expect_eof(self) -> None:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            raise ParseError(
                f"unexpected trailing input: {token.kind.value!r}", token.position
            )


def parse_program_text(
    source: str,
    filename=None,
    *,
    recover: bool = False,
    errors: Optional[List[ParseError]] = None,
) -> Tuple[Decl, ...]:
    """Parse an oolong program source text into a declaration tuple.

    ``filename``, when given, is recorded in every source position so
    multi-file diagnostics can name the file they point into.

    Fail-fast by default: the first grammar violation raises. With
    ``recover=True`` every syntax error is appended to ``errors`` (a
    caller-supplied list) and the surviving declarations are returned.
    """
    tokens = tokenize(source, filename)
    from repro.obs import span

    with span("parse", file=filename) as sp:
        parser = Parser(tokens, recover=recover)
        decls = parser.parse_program()
        parser.expect_eof()
        if errors is not None:
            errors.extend(parser.errors)
        sp.set(decls=len(decls), errors=len(parser.errors))
        return fault_point("parse", decls)


@dataclass(frozen=True)
class RecoveredParse:
    """The outcome of an error-recovering parse of one source text."""

    decls: Tuple[Decl, ...]
    errors: Tuple[ParseError, ...]

    @property
    def ok(self) -> bool:
        return not self.errors

    def diagnostics(self) -> list:
        """The collected errors as ``OL001``/``OL002`` diagnostics."""
        from repro.analysis.diagnostics import diagnostic_from_error

        return [
            diagnostic_from_error(
                error, code="OL001" if isinstance(error, LexError) else "OL002"
            )
            for error in self.errors
        ]


def parse_program_recovering(source: str, filename=None) -> RecoveredParse:
    """Parse ``source`` with panic-mode recovery; never raises on bad input.

    A lexical error aborts the file (the token stream is unusable) but is
    still reported through the same channel, as a single ``OL001``.
    """
    try:
        tokens = tokenize(source, filename)
    except LexError as error:
        return RecoveredParse((), (error,))
    from repro.obs import span

    with span("parse", file=filename) as sp:
        parser = Parser(tokens, recover=True)
        decls = parser.parse_program()
        sp.set(decls=len(decls), errors=len(parser.errors))
        decls = fault_point("parse", decls)
        return RecoveredParse(tuple(decls), tuple(parser.errors))


def parse_command(source: str) -> Cmd:
    """Parse a single command (used by tests and the builder DSL)."""
    parser = Parser(tokenize(source))
    cmd = parser.parse_cmd()
    parser.expect_eof()
    return cmd


def parse_expression(source: str) -> Expr:
    """Parse a single expression."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr
