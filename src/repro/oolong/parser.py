"""A recursive-descent parser for oolong.

Grammar (Figures 0 and 1 of the paper, plus ``if``/``skip`` sugar)::

    Program   ::= Decl*
    Decl      ::= 'group' Id ['in' IdList]
                | 'field' Id ['in' IdList] ('maps' Id 'into' IdList)*
                | 'proc' Id '(' [IdList] ')' ['modifies' DesigList]
                | 'impl' Id '(' [IdList] ')' '{' Cmd '}'
    Desig     ::= Id ('.' Id)+

    Cmd       ::= CmdSeq ('[]' CmdSeq)*
    CmdSeq    ::= CmdAtom (';' CmdAtom)*
    CmdAtom   ::= 'assert' Expr | 'assume' Expr
                | 'var' Id 'in' Cmd 'end'
                | 'skip'
                | 'if' Expr 'then' Cmd 'else' Cmd 'end'
                | '(' Cmd ')'
                | Id '(' [ExprList] ')'
                | Expr ':=' ('new' '(' ')' | Expr)

    Expr      ::= Or
    Or        ::= And ('||' And)*
    And       ::= Cmp ('&&' Cmp)*
    Cmp       ::= Add (('='|'!='|'<'|'<='|'>'|'>=') Add)?
    Add       ::= Mul (('+'|'-') Mul)*
    Mul       ::= Unary ('*' Unary)*
    Unary     ::= ('!'|'-') Unary | Postfix
    Postfix   ::= Primary ('.' Id)*
    Primary   ::= 'null' | 'true' | 'false' | Int | Id | '(' Expr ')'

The ``if`` form is desugared exactly as the paper prescribes::

    if B then C else D end  =  (assume !B ; D) [] (assume B ; C)
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ParseError
from repro.oolong.ast import (
    Assert,
    Assign,
    AssignNew,
    Assume,
    BinOp,
    BoolConst,
    Call,
    Choice,
    Cmd,
    Decl,
    Designator,
    Expr,
    FieldAccess,
    FieldDecl,
    GroupDecl,
    Id,
    ImplDecl,
    IntConst,
    MapsClause,
    NullConst,
    ProcDecl,
    Seq,
    Skip,
    UnOp,
    VarCmd,
)
from repro.oolong.lexer import tokenize
from repro.oolong.tokens import Token, TokenKind

_COMPARISONS = {
    TokenKind.EQ: "=",
    TokenKind.NE: "!=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}


class Parser:
    """Parses a pre-tokenized oolong source."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _match(self, kind: TokenKind) -> bool:
        if self._check(kind):
            self._advance()
            return True
        return False

    def _expect(self, kind: TokenKind, context: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r} {context}, found {token.kind.value!r}",
                token.position,
            )
        return self._advance()

    def _ident(self, context: str) -> str:
        return self._expect(TokenKind.IDENT, context).value

    def _ident_list(self, context: str) -> Tuple[str, ...]:
        names = [self._ident(context)]
        while self._match(TokenKind.COMMA):
            names.append(self._ident(context))
        return tuple(names)

    # -- declarations ------------------------------------------------------

    def parse_program(self) -> Tuple[Decl, ...]:
        """Parse a whole program: a sequence of declarations up to EOF."""
        decls: List[Decl] = []
        while not self._check(TokenKind.EOF):
            decls.append(self.parse_decl())
        return tuple(decls)

    def parse_decl(self) -> Decl:
        token = self._peek()
        if token.kind is TokenKind.GROUP:
            return self._parse_group()
        if token.kind is TokenKind.FIELD:
            return self._parse_field()
        if token.kind is TokenKind.PROC:
            return self._parse_proc()
        if token.kind is TokenKind.IMPL:
            return self._parse_impl()
        raise ParseError(
            f"expected a declaration, found {token.kind.value!r}", token.position
        )

    def _parse_group(self) -> GroupDecl:
        position = self._advance().position
        name = self._ident("after 'group'")
        in_groups: Tuple[str, ...] = ()
        if self._match(TokenKind.IN):
            in_groups = self._ident_list("in 'in' clause")
        return GroupDecl(name, in_groups, position)

    def _parse_field(self) -> FieldDecl:
        position = self._advance().position
        name = self._ident("after 'field'")
        in_groups: Tuple[str, ...] = ()
        if self._match(TokenKind.IN):
            in_groups = self._ident_list("in 'in' clause")
        maps: List[MapsClause] = []
        while self._match(TokenKind.MAPS):
            mapped = self._ident("after 'maps'")
            self._expect(TokenKind.INTO, "in maps clause")
            into = self._ident_list("in 'into' clause")
            maps.append(MapsClause(mapped, into))
        return FieldDecl(name, in_groups, tuple(maps), position)

    def _parse_params(self) -> Tuple[str, ...]:
        self._expect(TokenKind.LPAREN, "before parameter list")
        params: Tuple[str, ...] = ()
        if not self._check(TokenKind.RPAREN):
            params = self._ident_list("in parameter list")
        self._expect(TokenKind.RPAREN, "after parameter list")
        return params

    def _parse_proc(self) -> ProcDecl:
        position = self._advance().position
        name = self._ident("after 'proc'")
        params = self._parse_params()
        modifies: List[Designator] = []
        requires: List[Expr] = []
        ensures: List[Expr] = []
        while True:
            if self._match(TokenKind.MODIFIES):
                modifies.append(self._parse_designator())
                while self._match(TokenKind.COMMA):
                    modifies.append(self._parse_designator())
            elif self._match(TokenKind.REQUIRES):
                requires.append(self.parse_expr())
            elif self._match(TokenKind.ENSURES):
                ensures.append(self.parse_expr())
            else:
                break
        return ProcDecl(
            name, params, tuple(modifies), tuple(requires), tuple(ensures), position
        )

    def _parse_designator(self) -> Designator:
        root = self._ident("at start of modifies designator")
        selectors: List[str] = []
        self._expect(TokenKind.DOT, "in modifies designator")
        selectors.append(self._ident("after '.'"))
        while self._match(TokenKind.DOT):
            selectors.append(self._ident("after '.'"))
        return Designator(root, tuple(selectors[:-1]), selectors[-1])

    def _parse_impl(self) -> ImplDecl:
        position = self._advance().position
        name = self._ident("after 'impl'")
        params = self._parse_params()
        self._expect(TokenKind.LBRACE, "before implementation body")
        body = self.parse_cmd()
        self._expect(TokenKind.RBRACE, "after implementation body")
        return ImplDecl(name, params, body, position)

    # -- commands ----------------------------------------------------------

    def parse_cmd(self) -> Cmd:
        """Parse a command; ``[]`` binds loosest, then ``;``."""
        cmd = self._parse_seq()
        while self._match(TokenKind.BOX):
            cmd = Choice(cmd, self._parse_seq())
        return cmd

    def _parse_seq(self) -> Cmd:
        cmd = self._parse_atom_cmd()
        while self._match(TokenKind.SEMI):
            cmd = Seq(cmd, self._parse_atom_cmd())
        return cmd

    def _parse_atom_cmd(self) -> Cmd:
        token = self._peek()
        if token.kind is TokenKind.ASSERT:
            self._advance()
            return Assert(self.parse_expr(), token.position)
        if token.kind is TokenKind.ASSUME:
            self._advance()
            return Assume(self.parse_expr(), token.position)
        if token.kind is TokenKind.VAR:
            self._advance()
            name = self._ident("after 'var'")
            self._expect(TokenKind.IN, "after local variable name")
            body = self.parse_cmd()
            self._expect(TokenKind.END, "after 'var' body")
            return VarCmd(name, body, token.position)
        if token.kind is TokenKind.SKIP:
            self._advance()
            return Skip()
        if token.kind is TokenKind.IF:
            return self._parse_if(token)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            cmd = self.parse_cmd()
            self._expect(TokenKind.RPAREN, "after parenthesized command")
            return cmd
        if token.kind is TokenKind.IDENT and self._peek(1).kind is TokenKind.LPAREN:
            return self._parse_call(token)
        return self._parse_assignment(token)

    def _parse_if(self, token: Token) -> Cmd:
        """Desugar ``if B then C else D end`` per the paper's encoding."""
        self._advance()
        condition = self.parse_expr()
        self._expect(TokenKind.THEN, "in if command")
        then_cmd = self.parse_cmd()
        self._expect(TokenKind.ELSE, "in if command")
        else_cmd = self.parse_cmd()
        self._expect(TokenKind.END, "after if command")
        negated = UnOp("!", condition)
        return Choice(
            Seq(Assume(negated, token.position), else_cmd),
            Seq(Assume(condition, token.position), then_cmd),
        )

    def _parse_call(self, token: Token) -> Cmd:
        proc = self._ident("at call")
        self._expect(TokenKind.LPAREN, "after procedure name")
        args: List[Expr] = []
        if not self._check(TokenKind.RPAREN):
            args.append(self.parse_expr())
            while self._match(TokenKind.COMMA):
                args.append(self.parse_expr())
        self._expect(TokenKind.RPAREN, "after call arguments")
        return Call(proc, tuple(args), token.position)

    def _parse_assignment(self, token: Token) -> Cmd:
        target = self.parse_expr()
        if not isinstance(target, (Id, FieldAccess)):
            raise ParseError(
                "assignment target must be a variable or a field designator",
                token.position,
            )
        self._expect(TokenKind.ASSIGN, "in assignment")
        if self._check(TokenKind.NEW):
            self._advance()
            self._expect(TokenKind.LPAREN, "after 'new'")
            self._expect(TokenKind.RPAREN, "after 'new('")
            return AssignNew(target, token.position)
        rhs = self.parse_expr()
        return Assign(target, rhs, token.position)

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        expr = self._parse_and()
        while self._match(TokenKind.OR):
            expr = BinOp("||", expr, self._parse_and())
        return expr

    def _parse_and(self) -> Expr:
        expr = self._parse_cmp()
        while self._match(TokenKind.AND):
            expr = BinOp("&&", expr, self._parse_cmp())
        return expr

    def _parse_cmp(self) -> Expr:
        expr = self._parse_add()
        kind = self._peek().kind
        if kind in _COMPARISONS:
            self._advance()
            expr = BinOp(_COMPARISONS[kind], expr, self._parse_add())
        return expr

    def _parse_add(self) -> Expr:
        expr = self._parse_mul()
        while True:
            if self._match(TokenKind.PLUS):
                expr = BinOp("+", expr, self._parse_mul())
            elif self._match(TokenKind.MINUS):
                expr = BinOp("-", expr, self._parse_mul())
            else:
                return expr

    def _parse_mul(self) -> Expr:
        expr = self._parse_unary()
        while self._match(TokenKind.STAR):
            expr = BinOp("*", expr, self._parse_unary())
        return expr

    def _parse_unary(self) -> Expr:
        if self._match(TokenKind.NOT):
            return UnOp("!", self._parse_unary())
        if self._match(TokenKind.MINUS):
            return UnOp("-", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while self._check(TokenKind.DOT):
            dot = self._advance()
            attr = self._ident("after '.'")
            expr = FieldAccess(expr, attr, dot.position)
        return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.NULL:
            self._advance()
            return NullConst()
        if token.kind is TokenKind.TRUE:
            self._advance()
            return BoolConst(True)
        if token.kind is TokenKind.FALSE:
            self._advance()
            return BoolConst(False)
        if token.kind is TokenKind.INT:
            self._advance()
            return IntConst(int(token.value))
        if token.kind is TokenKind.IDENT:
            self._advance()
            return Id(token.value, token.position)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self.parse_expr()
            self._expect(TokenKind.RPAREN, "after parenthesized expression")
            return expr
        raise ParseError(
            f"expected an expression, found {token.kind.value!r}", token.position
        )

    def expect_eof(self) -> None:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            raise ParseError(
                f"unexpected trailing input: {token.kind.value!r}", token.position
            )


def parse_program_text(source: str, filename=None) -> Tuple[Decl, ...]:
    """Parse an oolong program source text into a declaration tuple.

    ``filename``, when given, is recorded in every source position so
    multi-file diagnostics can name the file they point into.
    """
    parser = Parser(tokenize(source, filename))
    decls = parser.parse_program()
    parser.expect_eof()
    return decls


def parse_command(source: str) -> Cmd:
    """Parse a single command (used by tests and the builder DSL)."""
    parser = Parser(tokenize(source))
    cmd = parser.parse_cmd()
    parser.expect_eof()
    return cmd


def parse_expression(source: str) -> Expr:
    """Parse a single expression."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr
