"""Abstract syntax for oolong (Figures 0 and 1 of the paper).

All nodes are immutable dataclasses. Equality is structural, which the test
suite and the pretty-printer round-trip checks rely on. Source positions are
optional and excluded from equality so that programmatically built trees
compare equal to parsed ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.errors import SourcePosition

# ---------------------------------------------------------------------------
# Expressions (Figure 1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for oolong expressions."""


@dataclass(frozen=True)
class NullConst(Expr):
    """The literal ``null``."""

    def __str__(self) -> str:
        return "null"


@dataclass(frozen=True)
class BoolConst(Expr):
    """``true`` or ``false``."""

    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class IntConst(Expr):
    """A non-negative integer literal (``0 | 1 | 2 | ...``)."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Id(Expr):
    """A local variable or formal parameter occurrence."""

    name: str
    position: Optional[SourcePosition] = field(default=None, compare=False)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FieldAccess(Expr):
    """A designator expression ``obj.attr``.

    In commands ``attr`` must be a field; data groups may appear as the final
    selector only inside modifies lists.
    """

    obj: Expr
    attr: str
    position: Optional[SourcePosition] = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.obj}.{self.attr}"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operator application, e.g. ``x + 1`` or ``v = null``."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operator application; only ``!`` (negation) is predefined."""

    op: str
    operand: Expr

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


#: Operators whose result is an object reference. The pivot uniqueness
#: restriction forbids object-returning operators on assignment right-hand
#: sides; none of the predefined operators return objects, which the
#: restriction checker relies on.
OBJECT_RETURNING_OPS: Tuple[str, ...] = ()

#: Every predefined binary operator and whether it is boolean-valued.
BINARY_OPS = {
    "=": True,
    "!=": True,
    "<": True,
    "<=": True,
    ">": True,
    ">=": True,
    "&&": True,
    "||": True,
    "+": False,
    "-": False,
    "*": False,
}


# ---------------------------------------------------------------------------
# Commands (Figure 1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Cmd:
    """Base class for oolong commands."""


@dataclass(frozen=True)
class Assert(Cmd):
    """``assert E`` — goes wrong unless E holds."""

    condition: Expr
    position: Optional[SourcePosition] = field(default=None, compare=False)


@dataclass(frozen=True)
class Assume(Cmd):
    """``assume E`` — blocks unless E holds."""

    condition: Expr
    position: Optional[SourcePosition] = field(default=None, compare=False)


@dataclass(frozen=True)
class VarCmd(Cmd):
    """``var x in C end`` — a fresh local with arbitrary initial value."""

    name: str
    body: Cmd
    position: Optional[SourcePosition] = field(default=None, compare=False)


@dataclass(frozen=True)
class Assign(Cmd):
    """``target := rhs`` where ``target`` is an Id or a FieldAccess."""

    target: Expr
    rhs: Expr
    position: Optional[SourcePosition] = field(default=None, compare=False)


@dataclass(frozen=True)
class AssignNew(Cmd):
    """``target := new()`` — allocate a fresh object."""

    target: Expr
    position: Optional[SourcePosition] = field(default=None, compare=False)


@dataclass(frozen=True)
class Seq(Cmd):
    """``C ; D`` — sequential composition."""

    first: Cmd
    second: Cmd


@dataclass(frozen=True)
class Choice(Cmd):
    """``C [] D`` — demonic (arbitrary) choice."""

    left: Cmd
    right: Cmd


@dataclass(frozen=True)
class Call(Cmd):
    """``p(E1, ..., En)`` — dispatch to an arbitrary implementation of p."""

    proc: str
    args: Tuple[Expr, ...]
    position: Optional[SourcePosition] = field(default=None, compare=False)


@dataclass(frozen=True)
class Skip(Cmd):
    """``skip`` — parsing sugar for ``assume true``."""


# ---------------------------------------------------------------------------
# Declarations (Figure 0)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Decl:
    """Base class for top-level declarations."""


@dataclass(frozen=True)
class GroupDecl(Decl):
    """``group g in h, k, ...`` — a data group with its local inclusions."""

    name: str
    in_groups: Tuple[str, ...] = ()
    position: Optional[SourcePosition] = field(default=None, compare=False)


@dataclass(frozen=True)
class MapsClause:
    """One ``maps x into g1, ..., gn`` clause of a field declaration.

    Declares the rep inclusions ``g_i —f→ x``: for any object ``t`` the
    licence to modify ``t.g_i`` implies the licence to modify ``t.f.x``.
    """

    mapped: str
    into: Tuple[str, ...]


@dataclass(frozen=True)
class FieldDecl(Decl):
    """``field f in h, ... maps x into g, ...`` — an object field.

    A field is a **pivot field** iff it has at least one maps clause.
    """

    name: str
    in_groups: Tuple[str, ...] = ()
    maps: Tuple[MapsClause, ...] = ()
    position: Optional[SourcePosition] = field(default=None, compare=False)

    @property
    def is_pivot(self) -> bool:
        return bool(self.maps)


@dataclass(frozen=True)
class Designator:
    """A modifies-list entry ``root.f1.f2...fn.attr``.

    ``root`` is a formal parameter of the enclosing procedure, the ``path``
    fields are ordinary field selectors, and ``attr`` is the attribute
    (field or group) whose location the procedure may modify.
    """

    root: str
    path: Tuple[str, ...]
    attr: str

    def prefix_expr(self) -> Expr:
        """The object-valued expression ``E`` such that this is ``E.attr``."""
        expr: Expr = Id(self.root)
        for name in self.path:
            expr = FieldAccess(expr, name)
        return expr

    def substitute_root(self, mapping: dict) -> "Designator":
        """Rename the root according to ``mapping`` (formals → actuals)."""
        return Designator(mapping.get(self.root, self.root), self.path, self.attr)

    def __str__(self) -> str:
        parts = [self.root, *self.path, self.attr]
        return ".".join(parts)


@dataclass(frozen=True)
class ProcDecl(Decl):
    """``proc p(t, u, ...) modifies E.f, ... requires P ensures Q``.

    ``requires``/``ensures`` clauses are the paper's pre/postcondition
    encoding as surface syntax; :mod:`repro.oolong.contracts` desugars them
    into the assert/assume discipline of Section 2 before checking.
    """

    name: str
    params: Tuple[str, ...]
    modifies: Tuple[Designator, ...] = ()
    requires: Tuple[Expr, ...] = ()
    ensures: Tuple[Expr, ...] = ()
    position: Optional[SourcePosition] = field(default=None, compare=False)

    @property
    def has_contract(self) -> bool:
        return bool(self.requires or self.ensures)


@dataclass(frozen=True)
class ImplDecl(Decl):
    """``impl p(t, u, ...) { C }`` — one implementation of procedure p."""

    name: str
    params: Tuple[str, ...]
    body: Cmd
    position: Optional[SourcePosition] = field(default=None, compare=False)


Attribute = Union[GroupDecl, FieldDecl]
