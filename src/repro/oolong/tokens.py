"""Token kinds and the token record produced by the oolong lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SourcePosition


class TokenKind(enum.Enum):
    """Every lexical class in oolong's concrete syntax."""

    # Literals and names.
    IDENT = "identifier"
    INT = "integer"

    # Declaration keywords (Figure 0).
    GROUP = "group"
    FIELD = "field"
    PROC = "proc"
    IMPL = "impl"
    IN = "in"
    MAPS = "maps"
    INTO = "into"
    MODIFIES = "modifies"
    REQUIRES = "requires"
    ENSURES = "ensures"

    # Command keywords (Figure 1 plus sugar).
    ASSERT = "assert"
    ASSUME = "assume"
    VAR = "var"
    END = "end"
    NEW = "new"
    IF = "if"
    THEN = "then"
    ELSE = "else"
    SKIP = "skip"

    # Constants.
    NULL = "null"
    TRUE = "true"
    FALSE = "false"

    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    SEMI = ";"
    DOT = "."
    ASSIGN = ":="
    BOX = "[]"

    # Operators.
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    AND = "&&"
    OR = "||"
    NOT = "!"

    EOF = "end of input"


#: Reserved words, mapped to their token kinds.
KEYWORDS = {
    "group": TokenKind.GROUP,
    "field": TokenKind.FIELD,
    "proc": TokenKind.PROC,
    "impl": TokenKind.IMPL,
    "in": TokenKind.IN,
    "maps": TokenKind.MAPS,
    "into": TokenKind.INTO,
    "modifies": TokenKind.MODIFIES,
    "requires": TokenKind.REQUIRES,
    "ensures": TokenKind.ENSURES,
    "assert": TokenKind.ASSERT,
    "assume": TokenKind.ASSUME,
    "var": TokenKind.VAR,
    "end": TokenKind.END,
    "new": TokenKind.NEW,
    "if": TokenKind.IF,
    "then": TokenKind.THEN,
    "else": TokenKind.ELSE,
    "skip": TokenKind.SKIP,
    "null": TokenKind.NULL,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
}


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source position.

    ``value`` carries the identifier text for :attr:`TokenKind.IDENT` and the
    numeral text for :attr:`TokenKind.INT`; for all other kinds it repeats
    the fixed lexeme.
    """

    kind: TokenKind
    value: str
    position: SourcePosition

    def __str__(self) -> str:
        return f"{self.kind.name}({self.value!r})@{self.position}"
