"""The oolong language: frontend, program representation, well-formedness.

oolong is the primitive, untyped object-oriented language of the paper
(Figures 0 and 1). A program is a set of declarations::

    Decl ::= 'group' Id ['in' IdList]
           | 'field' Id ['in' IdList] ('maps' Id 'into' IdList)*
           | 'proc'  Id '(' IdList ')' ['modifies' DesignatorList]
           | 'impl'  Id '(' IdList ')' '{' Cmd '}'

    Cmd  ::= 'assert' Expr | 'assume' Expr
           | 'var' Id 'in' Cmd 'end'
           | Expr ':=' Expr | Expr ':=' 'new' '(' ')'
           | Cmd ';' Cmd | Cmd '[]' Cmd
           | Id '(' ExprList ')'

plus the paper's ``if B then C else D end`` encoding and a ``skip`` command
as parsing sugar.
"""

from repro.oolong.ast import (
    Assert,
    Assign,
    AssignNew,
    Assume,
    BinOp,
    BoolConst,
    Call,
    Choice,
    Cmd,
    Decl,
    Designator,
    Expr,
    FieldAccess,
    FieldDecl,
    GroupDecl,
    Id,
    ImplDecl,
    IntConst,
    MapsClause,
    NullConst,
    ProcDecl,
    Seq,
    Skip,
    UnOp,
    VarCmd,
)
from repro.oolong.lexer import Lexer, tokenize
from repro.oolong.parser import Parser, parse_command, parse_expression, parse_program_text
from repro.oolong.pretty import pretty_cmd, pretty_decl, pretty_expr, pretty_program
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed

__all__ = [
    "Assert",
    "Assign",
    "AssignNew",
    "Assume",
    "BinOp",
    "BoolConst",
    "Call",
    "Choice",
    "Cmd",
    "Decl",
    "Designator",
    "Expr",
    "FieldAccess",
    "FieldDecl",
    "GroupDecl",
    "Id",
    "ImplDecl",
    "IntConst",
    "Lexer",
    "MapsClause",
    "NullConst",
    "Parser",
    "ProcDecl",
    "Scope",
    "Seq",
    "Skip",
    "UnOp",
    "VarCmd",
    "check_well_formed",
    "parse_command",
    "parse_expression",
    "parse_program_text",
    "pretty_cmd",
    "pretty_decl",
    "pretty_expr",
    "pretty_program",
    "tokenize",
]
