"""Pretty printer for oolong ASTs.

The printer produces concrete syntax that re-parses to a structurally equal
tree (the round-trip property is exercised by unit and property tests).
Expressions are printed with minimal parentheses using the parser's
precedence table.
"""

from __future__ import annotations

from typing import List

from repro.oolong.ast import (
    Assert,
    Assign,
    AssignNew,
    Assume,
    BinOp,
    BoolConst,
    Call,
    Choice,
    Cmd,
    Decl,
    Expr,
    FieldAccess,
    FieldDecl,
    GroupDecl,
    Id,
    ImplDecl,
    IntConst,
    NullConst,
    ProcDecl,
    Seq,
    Skip,
    UnOp,
    VarCmd,
)

# Higher binds tighter. Comparisons are non-associative in the grammar, so
# nested comparisons always get parentheses.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "=": 3,
    "!=": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
}
_UNARY_PRECEDENCE = 6
_POSTFIX_PRECEDENCE = 7


def pretty_expr(expr: Expr, parent_precedence: int = 0) -> str:
    """Render ``expr``, parenthesizing where required by precedence."""
    if isinstance(expr, (NullConst, BoolConst, IntConst, Id)):
        return str(expr)
    if isinstance(expr, FieldAccess):
        return f"{pretty_expr(expr.obj, _POSTFIX_PRECEDENCE)}.{expr.attr}"
    if isinstance(expr, UnOp):
        rendered = f"{expr.op}{pretty_expr(expr.operand, _UNARY_PRECEDENCE)}"
        if parent_precedence > _UNARY_PRECEDENCE:
            return f"({rendered})"
        return rendered
    if isinstance(expr, BinOp):
        precedence = _PRECEDENCE[expr.op]
        left = pretty_expr(expr.left, precedence)
        # Right operand of a left-associative operator needs strictly higher
        # precedence; comparisons are non-associative so both sides do.
        right = pretty_expr(expr.right, precedence + 1)
        if precedence == 3:
            left = pretty_expr(expr.left, precedence + 1)
        rendered = f"{left} {expr.op} {right}"
        if parent_precedence >= precedence + 1 or (
            parent_precedence == precedence and precedence == 3
        ):
            return f"({rendered})"
        if parent_precedence > precedence:
            return f"({rendered})"
        return rendered
    raise TypeError(f"not an oolong expression: {expr!r}")


def pretty_cmd(cmd: Cmd, indent: int = 0) -> str:
    """Render a command as a single-level indented block."""
    pad = "  " * indent
    if isinstance(cmd, Assert):
        return f"{pad}assert {pretty_expr(cmd.condition)}"
    if isinstance(cmd, Assume):
        return f"{pad}assume {pretty_expr(cmd.condition)}"
    if isinstance(cmd, Skip):
        return f"{pad}skip"
    if isinstance(cmd, VarCmd):
        body = pretty_cmd(cmd.body, indent + 1)
        return f"{pad}var {cmd.name} in\n{body}\n{pad}end"
    if isinstance(cmd, Assign):
        return f"{pad}{pretty_expr(cmd.target)} := {pretty_expr(cmd.rhs)}"
    if isinstance(cmd, AssignNew):
        return f"{pad}{pretty_expr(cmd.target)} := new()"
    if isinstance(cmd, Seq):
        first = pretty_cmd(cmd.first, indent)
        # `;` parses left-associatively; parenthesize a right-nested Seq so
        # the round trip preserves the tree shape.
        if isinstance(cmd.second, Seq):
            inner = pretty_cmd(cmd.second, indent + 1)
            return f"{first} ;\n{pad}(\n{inner}\n{pad})"
        second = pretty_cmd(cmd.second, indent)
        return f"{first} ;\n{second}"
    if isinstance(cmd, Choice):
        left = pretty_cmd(cmd.left, indent + 1)
        right = pretty_cmd(cmd.right, indent + 1)
        return f"{pad}(\n{left}\n{pad}[]\n{right}\n{pad})"
    if isinstance(cmd, Call):
        args = ", ".join(pretty_expr(a) for a in cmd.args)
        return f"{pad}{cmd.proc}({args})"
    raise TypeError(f"not an oolong command: {cmd!r}")


def pretty_decl(decl: Decl) -> str:
    """Render one declaration."""
    if isinstance(decl, GroupDecl):
        text = f"group {decl.name}"
        if decl.in_groups:
            text += " in " + ", ".join(decl.in_groups)
        return text
    if isinstance(decl, FieldDecl):
        text = f"field {decl.name}"
        if decl.in_groups:
            text += " in " + ", ".join(decl.in_groups)
        for clause in decl.maps:
            text += f" maps {clause.mapped} into " + ", ".join(clause.into)
        return text
    if isinstance(decl, ProcDecl):
        text = f"proc {decl.name}({', '.join(decl.params)})"
        if decl.modifies:
            text += " modifies " + ", ".join(str(d) for d in decl.modifies)
        for condition in decl.requires:
            text += f" requires {pretty_expr(condition)}"
        for condition in decl.ensures:
            text += f" ensures {pretty_expr(condition)}"
        return text
    if isinstance(decl, ImplDecl):
        body = pretty_cmd(decl.body, 1)
        return f"impl {decl.name}({', '.join(decl.params)}) {{\n{body}\n}}"
    raise TypeError(f"not an oolong declaration: {decl!r}")


def pretty_program(decls) -> str:
    """Render a sequence of declarations as a full program text."""
    lines: List[str] = [pretty_decl(decl) for decl in decls]
    return "\n".join(lines) + "\n"
