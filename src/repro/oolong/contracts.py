"""Pre/postcondition contracts, desugared per the paper's Section 2 recipe.

    "Our language does not provide special constructs for writing pre- and
    postconditions, but these can be achieved for any procedure p by the
    following disciplined use of our language: for a precondition P,
    precede every call to p with the command assert P and start every
    implementation of p with assume P; for a postcondition Q, end every
    implementation of p with the command assert Q and follow each call to
    p with assume Q (at call sites, one also needs to substitute the
    actual parameters for the formals in P and Q)."

We provide ``requires``/``ensures`` surface syntax on procedure
declarations and :func:`desugar_contracts`, which rewrites a scope into
the plain oolong discipline above. The result contains no contract
clauses, so the VC generator, interpreter, and restriction checkers all
operate on it unchanged — static checking *and* runtime monitoring of
contracts fall out for free.

oolong expressions are pure, so substituting actual argument expressions
for formals duplicates no side effects.
"""

from __future__ import annotations

from typing import Dict, List

from repro.oolong.ast import (
    Assert,
    Assign,
    AssignNew,
    Assume,
    BinOp,
    BoolConst,
    Call,
    Choice,
    Cmd,
    Decl,
    Expr,
    FieldAccess,
    Id,
    ImplDecl,
    IntConst,
    NullConst,
    ProcDecl,
    Seq,
    Skip,
    UnOp,
    VarCmd,
)
from repro.oolong.program import Scope


def subst_expr(expr: Expr, mapping: Dict[str, Expr]) -> Expr:
    """Substitute expressions for identifier occurrences (formals→actuals)."""
    if isinstance(expr, (NullConst, BoolConst, IntConst)):
        return expr
    if isinstance(expr, Id):
        return mapping.get(expr.name, expr)
    if isinstance(expr, FieldAccess):
        return FieldAccess(subst_expr(expr.obj, mapping), expr.attr)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op, subst_expr(expr.left, mapping), subst_expr(expr.right, mapping)
        )
    if isinstance(expr, UnOp):
        return UnOp(expr.op, subst_expr(expr.operand, mapping))
    raise TypeError(f"not an oolong expression: {expr!r}")


def _seq(commands: List[Cmd]) -> Cmd:
    result = commands[0]
    for command in commands[1:]:
        result = Seq(result, command)
    return result


def _rewrite_cmd(cmd: Cmd, scope: Scope) -> Cmd:
    """Wrap every call with the caller-side contract commands."""
    if isinstance(cmd, Seq):
        return Seq(_rewrite_cmd(cmd.first, scope), _rewrite_cmd(cmd.second, scope))
    if isinstance(cmd, Choice):
        return Choice(_rewrite_cmd(cmd.left, scope), _rewrite_cmd(cmd.right, scope))
    if isinstance(cmd, VarCmd):
        return VarCmd(cmd.name, _rewrite_cmd(cmd.body, scope), cmd.position)
    if isinstance(cmd, Call):
        proc = scope.proc(cmd.proc)
        if proc is None or not proc.has_contract:
            return cmd
        mapping = dict(zip(proc.params, cmd.args))
        parts: List[Cmd] = []
        for condition in proc.requires:
            parts.append(Assert(subst_expr(condition, mapping), cmd.position))
        parts.append(cmd)
        for condition in proc.ensures:
            parts.append(Assume(subst_expr(condition, mapping), cmd.position))
        return _seq(parts)
    return cmd


def _rewrite_impl(impl: ImplDecl, proc: ProcDecl, scope: Scope) -> ImplDecl:
    body = _rewrite_cmd(impl.body, scope)
    parts: List[Cmd] = []
    for condition in proc.requires:
        parts.append(Assume(condition, impl.position))
    parts.append(body)
    for condition in proc.ensures:
        parts.append(Assert(condition, impl.position))
    return ImplDecl(impl.name, impl.params, _seq(parts), impl.position)


def desugar_contracts(scope: Scope) -> Scope:
    """Rewrite ``scope`` into contract-free oolong per the paper's recipe.

    Idempotent on contract-free scopes (they are returned unchanged).
    """
    if not any(
        isinstance(decl, ProcDecl) and decl.has_contract for decl in scope.decls
    ):
        return scope
    rewritten: List[Decl] = []
    for decl in scope.decls:
        if isinstance(decl, ProcDecl):
            rewritten.append(
                ProcDecl(
                    decl.name,
                    decl.params,
                    decl.modifies,
                    (),
                    (),
                    decl.position,
                )
            )
        elif isinstance(decl, ImplDecl):
            proc = scope.proc(decl.name)
            if proc is not None and proc.has_contract:
                rewritten.append(_rewrite_impl(decl, proc, scope))
            else:
                rewritten.append(
                    ImplDecl(
                        decl.name,
                        decl.params,
                        _rewrite_cmd(decl.body, scope),
                        decl.position,
                    )
                )
        else:
            rewritten.append(decl)
    return Scope(rewritten)
