"""A hand-written lexer for oolong.

The lexer is a single forward pass with one character of lookahead for the
two-character operators. Comments run from ``//`` to end of line; block
comments are ``/* ... */`` and may span lines (but do not nest).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import LexError, SourcePosition
from repro.oolong.tokens import KEYWORDS, Token, TokenKind

# Two-character operators must be tried before their one-character prefixes.
_TWO_CHAR = {
    ":=": TokenKind.ASSIGN,
    "[]": TokenKind.BOX,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    ".": TokenKind.DOT,
    "=": TokenKind.EQ,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "!": TokenKind.NOT,
}


class Lexer:
    """Tokenizes one oolong source text."""

    def __init__(self, source: str, filename: Optional[str] = None):
        self._source = source
        self._filename = filename
        self._index = 0
        self._line = 1
        self._column = 1

    def tokens(self) -> Iterator[Token]:
        """Yield every token in the source, ending with a single EOF token."""
        while True:
            self._skip_trivia()
            if self._at_end():
                yield Token(TokenKind.EOF, "", self._position())
                return
            yield self._next_token()

    # -- scanning helpers -------------------------------------------------

    def _position(self) -> SourcePosition:
        return SourcePosition(self._line, self._column, self._filename)

    def _at_end(self) -> bool:
        return self._index >= len(self._source)

    def _peek(self, offset: int = 0) -> str:
        index = self._index + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self) -> str:
        char = self._source[self._index]
        self._index += 1
        if char == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1
        return char

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments; raise on an unterminated block."""
        while not self._at_end():
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start = self._position()
                self._advance()
                self._advance()
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._at_end():
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance()
                self._advance()
            else:
                return

    def _next_token(self) -> Token:
        position = self._position()
        char = self._peek()
        if char.isalpha() or char == "_":
            return self._lex_word(position)
        if char.isdigit():
            return self._lex_number(position)
        pair = char + self._peek(1)
        if pair in _TWO_CHAR:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR[pair], pair, position)
        if char in _ONE_CHAR:
            self._advance()
            return Token(_ONE_CHAR[char], char, position)
        raise LexError(f"unexpected character {char!r}", position)

    def _lex_word(self, position: SourcePosition) -> Token:
        chars: List[str] = []
        while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
            chars.append(self._advance())
        word = "".join(chars)
        kind = KEYWORDS.get(word, TokenKind.IDENT)
        return Token(kind, word, position)

    def _lex_number(self, position: SourcePosition) -> Token:
        chars: List[str] = []
        while not self._at_end() and self._peek().isdigit():
            chars.append(self._advance())
        if not self._at_end() and (self._peek().isalpha() or self._peek() == "_"):
            raise LexError("identifier may not start with a digit", position)
        return Token(TokenKind.INT, "".join(chars), position)


def tokenize(source: str, filename: Optional[str] = None) -> List[Token]:
    """Tokenize ``source`` into a list ending with an EOF token."""
    from repro.obs import span
    from repro.testing.faults import fault_point

    with span("lex", file=filename) as sp:
        tokens = fault_point("lex", list(Lexer(source, filename).tokens()))
        sp.set(tokens=len(tokens))
        return tokens
