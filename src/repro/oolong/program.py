"""The :class:`Scope` program representation.

A *scope* is a set of declarations — the paper's unit of modular checking.
A scope used for verification must satisfy the rule of **self-contained
names**: every attribute and procedure referred to in the scope is also
declared in the scope (enforced by :func:`repro.oolong.wellformed.check_well_formed`).

Scopes are immutable; :meth:`Scope.extend` builds the extended scope used by
the modular-soundness experiments.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import WellFormednessError
from repro.oolong.ast import Decl, FieldDecl, GroupDecl, ImplDecl, ProcDecl


class Scope:
    """An immutable set of oolong declarations with lookup tables.

    Construction rejects duplicate declared names (attributes and procedures
    share one namespace, per the paper: "We assume all names of declared
    entities to be unique"). A procedure may have any number of
    implementations; implementations do not introduce names.
    """

    def __init__(self, decls: Iterable[Decl]):
        self._decls: Tuple[Decl, ...] = tuple(decls)
        self._groups: Dict[str, GroupDecl] = {}
        self._fields: Dict[str, FieldDecl] = {}
        self._procs: Dict[str, ProcDecl] = {}
        self._impls: Dict[str, List[ImplDecl]] = {}
        self._enclosing_cache: Dict[str, FrozenSet[str]] = {}
        for decl in self._decls:
            self._register(decl)

    def _register(self, decl: Decl) -> None:
        if isinstance(decl, GroupDecl):
            self._claim_name(decl.name, decl)
            self._groups[decl.name] = decl
        elif isinstance(decl, FieldDecl):
            self._claim_name(decl.name, decl)
            self._fields[decl.name] = decl
        elif isinstance(decl, ProcDecl):
            self._claim_name(decl.name, decl)
            self._procs[decl.name] = decl
        elif isinstance(decl, ImplDecl):
            self._impls.setdefault(decl.name, []).append(decl)
        else:
            raise TypeError(f"not an oolong declaration: {decl!r}")

    def _claim_name(self, name: str, decl: Decl) -> None:
        if name in self._groups or name in self._fields or name in self._procs:
            raise WellFormednessError(
                f"duplicate declaration of {name!r}",
                getattr(decl, "position", None),
            )

    # -- basic lookup --------------------------------------------------------

    @property
    def decls(self) -> Tuple[Decl, ...]:
        return self._decls

    @property
    def groups(self) -> Dict[str, GroupDecl]:
        return dict(self._groups)

    @property
    def fields(self) -> Dict[str, FieldDecl]:
        return dict(self._fields)

    @property
    def procs(self) -> Dict[str, ProcDecl]:
        return dict(self._procs)

    @property
    def impls(self) -> Dict[str, Tuple[ImplDecl, ...]]:
        return {name: tuple(impls) for name, impls in self._impls.items()}

    def group(self, name: str) -> Optional[GroupDecl]:
        return self._groups.get(name)

    def field(self, name: str) -> Optional[FieldDecl]:
        return self._fields.get(name)

    def proc(self, name: str) -> Optional[ProcDecl]:
        return self._procs.get(name)

    def impls_of(self, proc_name: str) -> Tuple[ImplDecl, ...]:
        return tuple(self._impls.get(proc_name, ()))

    def attribute(self, name: str) -> Optional[Union[GroupDecl, FieldDecl]]:
        """The group or field declaration named ``name``, if any."""
        return self._groups.get(name) or self._fields.get(name)

    def attribute_names(self) -> Tuple[str, ...]:
        """All declared attribute names, in declaration order."""
        names = []
        for decl in self._decls:
            if isinstance(decl, (GroupDecl, FieldDecl)):
                names.append(decl.name)
        return tuple(names)

    def is_group(self, name: str) -> bool:
        return name in self._groups

    def is_field(self, name: str) -> bool:
        return name in self._fields

    def is_attribute(self, name: str) -> bool:
        return self.attribute(name) is not None

    def is_pivot(self, name: str) -> bool:
        """True iff ``name`` is a field declared with a maps-into clause."""
        decl = self._fields.get(name)
        return decl is not None and decl.is_pivot

    def pivot_fields(self) -> Tuple[FieldDecl, ...]:
        return tuple(f for f in self._fields.values() if f.is_pivot)

    # -- derived inclusion structure -------------------------------------

    def enclosing_groups(self, attr: str) -> FrozenSet[str]:
        """All groups that include ``attr`` directly or transitively.

        This is the set ``g1, ..., gn`` of the paper's per-attribute scope
        axiom; it does not contain ``attr`` itself (the axiom adds the
        reflexive case separately). The rule of self-contained names
        guarantees the set is fully determined by the scope and identical in
        every extension.
        """
        cached = self._enclosing_cache.get(attr)
        if cached is not None:
            return cached
        decl = self.attribute(attr)
        if decl is None:
            raise WellFormednessError(f"unknown attribute {attr!r}")
        result: set = set()
        worklist = list(decl.in_groups)
        while worklist:
            group_name = worklist.pop()
            if group_name in result:
                continue
            result.add(group_name)
            group_decl = self._groups.get(group_name)
            if group_decl is not None:
                worklist.extend(group_decl.in_groups)
        frozen = frozenset(result)
        self._enclosing_cache[attr] = frozen
        return frozen

    def local_includes(self, group: str, attr: str) -> bool:
        """The paper's ``group ≽ attr``: reflexive-transitive local inclusion."""
        return group == attr or group in self.enclosing_groups(attr)

    def rep_pairs(self, field_name: str) -> Tuple[Tuple[str, str], ...]:
        """All pairs ``(g, b)`` such that the scope declares
        ``field field_name ... maps b into g`` — i.e. ``g —field_name→ b``.
        """
        decl = self._fields.get(field_name)
        if decl is None:
            return ()
        pairs: List[Tuple[str, str]] = []
        for clause in decl.maps:
            for into_group in clause.into:
                pairs.append((into_group, clause.mapped))
        return tuple(pairs)

    def all_rep_triples(self) -> Tuple[Tuple[str, str, str], ...]:
        """All declared rep inclusions as ``(field, group, mapped)`` triples."""
        triples: List[Tuple[str, str, str]] = []
        for field_decl in self._fields.values():
            for group, mapped in self.rep_pairs(field_decl.name):
                triples.append((field_decl.name, group, mapped))
        return tuple(triples)

    # -- composition ---------------------------------------------------------

    def extend(self, more: Union["Scope", Sequence[Decl]]) -> "Scope":
        """A new scope containing this scope's declarations plus ``more``.

        Used by the modular-soundness experiments: an *extension* E of a
        scope D is exactly ``D.extend(extra_decls)``.
        """
        extra = more.decls if isinstance(more, Scope) else tuple(more)
        return Scope(self._decls + tuple(extra))

    def restrict_to(self, decl_filter) -> "Scope":
        """A new scope keeping only declarations for which the filter holds."""
        return Scope(d for d in self._decls if decl_filter(d))

    def __len__(self) -> int:
        return len(self._decls)

    def __contains__(self, decl: Decl) -> bool:
        return decl in self._decls

    def __repr__(self) -> str:
        return (
            f"Scope(groups={sorted(self._groups)}, fields={sorted(self._fields)}, "
            f"procs={sorted(self._procs)}, impls={len(sum(self._impls.values(), []))})"
        )

    @classmethod
    def from_source(cls, source: str, filename: Optional[str] = None) -> "Scope":
        """Parse ``source`` and build a scope (without well-formedness checks)."""
        from repro.oolong.parser import parse_program_text

        return cls(parse_program_text(source, filename))

    @classmethod
    def from_sources(cls, sources: Sequence[Tuple[Optional[str], str]]) -> "Scope":
        """Build one scope from several ``(filename, text)`` source parts.

        Each part is parsed independently so every source position carries
        the file it came from — the multi-file analogue of
        :meth:`from_source` (which concatenation would misattribute).
        """
        from repro.oolong.parser import parse_program_text

        decls: List[Decl] = []
        for filename, text in sources:
            decls.extend(parse_program_text(text, filename))
        return cls(decls)

    @classmethod
    def from_sources_recovering(
        cls, sources: Sequence[Tuple[Optional[str], str]]
    ) -> Tuple["Scope", list]:
        """Like :meth:`from_sources`, but with parser error recovery.

        Returns ``(scope, diagnostics)``: the scope built from every
        declaration that parsed, plus one ``OL001``/``OL002`` diagnostic
        per lexical/syntax error across all files. If the surviving
        declarations collide (duplicate names — likely when recovery
        guessed wrong), the collision is reported as an ``OL100``
        diagnostic and an empty scope is returned rather than raising.
        """
        from repro.analysis.diagnostics import diagnostic_from_error
        from repro.oolong.parser import parse_program_recovering

        decls = []
        diagnostics = []
        for filename, text in sources:
            outcome = parse_program_recovering(text, filename)
            decls.extend(outcome.decls)
            diagnostics.extend(outcome.diagnostics())
        try:
            scope = cls(decls)
        except WellFormednessError as error:
            diagnostics.append(diagnostic_from_error(error))
            scope = cls(())
        return scope, diagnostics
