"""Command-line entry points.

``oolong-check [options] file.oolong ...`` runs the full pipeline —
parse, well-formedness, static-analysis pre-filter, pivot uniqueness, VC
generation, mechanical proof — and prints a per-implementation report,
exiting non-zero if any check fails.

``oolong-check lint [options] file.oolong ...`` (also installed as
``oolong-lint``) runs only the static analyses: the syntactic restriction
pass, the flow-sensitive pivot escape analysis, modifies-list inference,
and the declaration/reachability lints. No prover is involved, so it is
fast enough for editor integration.

Both accept ``--format text|json|sarif`` and ``--fail-on`` with either a
severity (``error``, ``warning``) or a comma-separated list of OLxxx
codes (unknown codes are rejected with the known-code list). Check mode
adds ``--static-discharge on|off|strict`` (the interprocedural effect
analyzer that discharges frame obligations before the prover) and
``--check-discharge`` (the differential soundness guard; disagreements
are OL402 errors).
Check mode also carries the observability flags: ``--trace FILE``
(Chrome trace-event JSON of the run, written on every exit path),
``--metrics FILE`` (machine-readable pipeline/prover metrics;
``--metrics-format prom`` renders Prometheus text instead of JSON),
``--events FILE`` (a structured JSONL event journal of the run's
lifecycle — leases, worker churn, retries, cache traffic, degradation),
``--progress`` (a live progress line on stderr driven by the same
events), and ``--profile`` (stage breakdown, slowest VCs, hottest
quantifiers, deadline pressure). See README "Observability".
``--explain`` adds per-verdict explanations (``--explain-format
text|json``, ``--explain-out FILE``): blame reports for failed proofs,
replay-validated proof logs for verified ones. See README "Explaining
failures".
``-j N`` checks implementations on N supervised worker processes with a
hard ``--job-timeout`` per proof (SIGKILL, OL901), worker-death retries
up to ``--max-retries`` (then OL902 quarantine), and ``--cache-dir``
enables the crash-safe incremental result cache (corrupted entries are
rejected with OL903 and recomputed). See README "Parallel & incremental
checking".
``--fleet N|HOST:PORT`` distributes the same jobs over a socket worker
fleet with lease-based work stealing (``oolong-check workers serve``
runs a standing pool; ``oolong-check cache serve`` a shared result-cache
server for ``--cache-url``; both take ``--http HOST:PORT`` to expose
/metrics, /healthz, and /status to plain HTTP scrapers). A fleet or
cache server that cannot be reached degrades the run to local checking
with an OL904 warning — it never fails it. See README "Distributed
checking".
``--run-dir DIR`` keeps a crash-safe fsync'd run ledger: a run killed
mid-flight (even SIGKILL) resumes with ``--resume``, replaying the
committed verdicts and checking only the remainder, and the resumed
report is byte-identical to an uninterrupted run (damaged or stale
ledgers degrade with OL905, never fail). Both servers drain gracefully
on SIGTERM/^C — stop accepting, finish in-flight work within
``--drain-timeout``, announce a final ``server-stop`` record, exit 0.
See README "Crash recovery & graceful shutdown".
``oolong-check events report FILE`` analyzes a ``--events`` journal
after the fact (utilization, lease latencies, OL901–OL904 summaries,
cache effectiveness, the critical path); ``events export --trace OUT
FILE`` converts a journal into a Chrome trace. ``workers status`` and
``cache status`` exit 3 when nothing answered and 4 when the server
refused the handshake, so scripts can tell "down" from "wrong server".
Sources are parsed per file with panic-mode error recovery, so every
diagnostic position names the file it points into and *all* syntax
errors across all files are reported in one run (as ``OL001``/``OL002``
diagnostics) instead of only the first.

Exit codes: 0 — clean; 1 — findings at or above the ``--fail-on``
threshold (or a failed proof, timeout, or internal-error verdict in
check mode); 2 — unreadable input, syntax errors, an ill-formed scope,
or an unexpected internal crash of the driver itself (isolated per
implementation wherever possible; exit 2 only when nothing could be
checked).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits
from repro.vcgen.checker import check_scope


def _parse_fail_on(value: str):
    """``--fail-on`` semantics: a severity name, or a comma-separated
    list of OLxxx codes (rule aliases accepted). Returns a
    :class:`~repro.analysis.diagnostics.Severity` or a frozenset of
    codes; unknown codes raise ``argparse.ArgumentTypeError`` — silently
    matching nothing would turn the gate off."""
    from repro.analysis.diagnostics import CODES, RULE_ALIASES, Severity

    if value in ("error", "warning"):
        return Severity.ERROR if value == "error" else Severity.WARNING
    codes = []
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        code = RULE_ALIASES.get(part, part)
        if code not in CODES:
            known = ", ".join(sorted(CODES))
            raise argparse.ArgumentTypeError(
                f"unknown diagnostic code {part!r}; expected 'error', "
                f"'warning', or a comma-separated list of codes "
                f"(known codes: {known})"
            )
        codes.append(code)
    if not codes:
        raise argparse.ArgumentTypeError(
            "--fail-on needs a severity ('error', 'warning') or at least "
            "one diagnostic code"
        )
    return frozenset(codes)


def _fail_on_value(value: str) -> str:
    """argparse ``type`` hook: validate eagerly (unknown codes abort the
    parse with a clear message), keep the raw string on ``args``."""
    _parse_fail_on(value)
    return value


# Exit codes for `workers status` / `cache status`, distinct so a
# scripted health check can tell "down" from "wrong server": 2 stays the
# generic usage/parse error, 3 means nothing answered (connection
# failed), 4 means something answered but refused the handshake (wrong
# protocol or token).
EXIT_STATUS_DOWN = 3
EXIT_STATUS_REJECTED = 4


def _nonneg_int(value: str) -> int:
    """argparse ``type`` hook: a non-negative integer (``--max-retries``
    et al. — a negative retry budget would silently mean "never retry"
    in some code paths and "retry forever" in others)."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"expected a value >= 0, got {parsed}")
    return parsed


def _nonneg_float(value: str) -> float:
    """argparse ``type`` hook: a non-negative float (timeouts, waits)."""
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {value!r}")
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"expected a value >= 0, got {parsed}")
    return parsed


def _fleet_value(value: str) -> str:
    """argparse ``type`` hook for ``--fleet``: worker count or HOST:PORT.

    Validates eagerly so a typo is a parse error, not a mid-run OL904
    degradation; keeps the raw string on ``args``.
    """
    from repro.parallel.fleet import FleetOptions

    try:
        FleetOptions.from_spec(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))
    return value


def _fails_threshold(diagnostics, fail_on: str) -> bool:
    """Does any diagnostic trip the ``--fail-on`` gate?"""
    from repro.analysis.diagnostics import Severity, exceeds_threshold

    threshold = _parse_fail_on(fail_on)
    if isinstance(threshold, Severity):
        return exceeds_threshold(diagnostics, threshold)
    return any(diag.code in threshold for diag in diagnostics)


def _add_shared_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("files", nargs="+", help="oolong source files")
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text); sarif emits a SARIF v2.1.0 "
        "document with every OLxxx finding",
    )
    parser.add_argument(
        "--fail-on",
        type=_fail_on_value,
        default="error",
        metavar="SEVERITY|CODES",
        help="what makes the exit code non-zero: a lowest severity "
        "('error', 'warning') or a comma-separated list of diagnostic "
        "codes (e.g. 'OL401,OL302'); default: error",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="oolong-check",
        description=(
            "Statically check the side effects of oolong programs using "
            "data groups (PLDI 2002 reproduction)."
        ),
    )
    _add_shared_arguments(parser)
    parser.add_argument(
        "--time-budget",
        type=float,
        default=30.0,
        help="prover time budget per implementation, in seconds",
    )
    parser.add_argument(
        "--scope-time-budget",
        type=float,
        default=None,
        help="wall-clock budget for the whole batch, in seconds; shared "
        "across implementations so one divergent proof cannot starve the "
        "rest (they report 'timed out'). Each implementation still gets "
        "at most --time-budget of prover time within what remains",
    )
    parser.add_argument(
        "--max-instances",
        type=int,
        default=20000,
        help="prover instantiation budget per implementation",
    )
    parser.add_argument(
        "--no-restrictions",
        action="store_true",
        help="disable the pivot-uniqueness restriction pass (unsound; "
        "for experiments only)",
    )
    parser.add_argument(
        "--no-lint",
        action="store_true",
        help="disable the static-analysis pre-filter",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print prover statistics per implementation (including "
        "per-quantifier instantiation counts)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON of the run to FILE "
        "(open it in Perfetto or chrome://tracing); written even when "
        "the run fails, so crash traces stay complete",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write machine-readable pipeline/prover metrics to FILE "
        "(JSON by default; see --metrics-format)",
    )
    parser.add_argument(
        "--metrics-format",
        choices=("json", "prom"),
        default="json",
        help="format for --metrics: 'json' (default) or 'prom' "
        "(Prometheus text exposition, ready for a file-based scrape)",
    )
    parser.add_argument(
        "--events",
        metavar="FILE",
        default=None,
        help="write a structured JSONL event journal of the run to FILE: "
        "lease grants/expiries, worker churn, retries and quarantines "
        "(OL902), cache traffic (OL903), degradation (OL904) — one JSON "
        "record per line, conforming to the in-tree events.schema.json; "
        "written even when the run fails",
    )
    parser.add_argument(
        "--events-append",
        action="store_true",
        help="append to --events FILE instead of truncating it; each run "
        "keeps its own run_id, so the multi-run file still validates "
        "and 'events report --run' can pick one run out",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render live progress on stderr (implementations checked, "
        "leases outstanding, cache hits, quarantines, ETA), driven by "
        "the same event stream --events records",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a profile after the report: stage breakdown, slowest "
        "VCs, hottest quantifiers, deadline pressure",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="explain every verdict: failed proofs get a source-anchored "
        "blame report built from the prover's countermodel (which command, "
        "which field, which modifies entries, which inclusion chain "
        "failed); verified ones get a replay-validated proof log",
    )
    parser.add_argument(
        "--explain-format",
        choices=("text", "json"),
        default="text",
        help="explanation rendering (default: text); json conforms to "
        "the in-tree explanations.schema.json",
    )
    parser.add_argument(
        "--explain-out",
        metavar="FILE",
        default=None,
        help="write the explanations to FILE instead of stdout (implies "
        "--explain); written even when the run fails",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="check implementations on N supervised worker processes "
        "(process isolation: a crashed, hung, or OOM-killed proof costs "
        "only its own verdict). Default: serial, in-process",
    )
    parser.add_argument(
        "--fleet",
        type=_fleet_value,
        metavar="N|HOST:PORT",
        default=None,
        help="check implementations on a socket worker fleet: an integer "
        "spawns N local socket workers; HOST:PORT binds the coordinator "
        "there for externally started pools ('oolong-check workers "
        "serve'). Idle workers steal renewable leases; expired leases "
        "are reassigned with jittered backoff. An unreachable fleet "
        "degrades to local checking with an OL904 warning — it never "
        "fails the run",
    )
    parser.add_argument(
        "--fleet-wait",
        type=_nonneg_float,
        metavar="S",
        default=None,
        help="with --fleet: seconds to wait for the first worker to "
        "register before degrading to local checking (default: 5)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="reuse verdicts from (and publish new ones into) the "
        "crash-safe incremental result cache at PATH; corrupted or "
        "version-skewed entries are rejected with an OL903 warning and "
        "recomputed. Bypassed under --explain",
    )
    parser.add_argument(
        "--cache-url",
        metavar="HOST:PORT",
        default=None,
        help="use a shared result-cache server ('oolong-check cache "
        "serve') instead of a local --cache-dir; entries are checksum-"
        "validated on both ends (OL903 on rejection). An unreachable or "
        "mid-run-lost server degrades to OL904, never fails the run",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=_nonneg_int,
        metavar="B",
        default=None,
        help="with --cache-dir: bound the cache directory to B bytes by "
        "evicting least-recently-used entries on store",
    )
    parser.add_argument(
        "--run-dir",
        metavar="DIR",
        default=None,
        help="keep a crash-safe run ledger in DIR (created if missing): "
        "every finished verdict is committed to an fsync'd append-only "
        "JSONL file before the run moves on, so a run killed mid-flight "
        "(SIGKILL, OOM, power loss) can be resumed with --resume. A "
        "damaged or out-of-date ledger is rotated aside with an OL905 "
        "warning — it never fails the run",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --run-dir: reuse the verdicts already committed to "
        "the ledger (validated per-implementation against the current "
        "sources, limits, and checker version) and check only the "
        "remainder; the final report is byte-identical to an "
        "uninterrupted run",
    )
    parser.add_argument(
        "--max-retries",
        type=_nonneg_int,
        metavar="K",
        default=2,
        help="with -j/--fleet: retries after a worker death before the "
        "job is quarantined as INTERNAL_ERROR/OL902 (default: 2)",
    )
    parser.add_argument(
        "--job-timeout",
        type=_nonneg_float,
        metavar="S",
        default=None,
        help="with -j/--fleet: hard wall-clock limit per proof job, in "
        "seconds — the worker is SIGKILLed (no cooperative poll needed) "
        "and the verdict is TIMED_OUT/OL901",
    )
    parser.add_argument(
        "--static-discharge",
        choices=("on", "off", "strict"),
        default="off",
        help="statically discharge frame obligations before the prover "
        "(repro.analysis.effects): fully subsumed implementations skip "
        "the prover as verified, statically refuted ones as not proved "
        "with an OL401 blame; 'strict' additionally requires an exact "
        "effect summary within the declared frame (deferrals reported "
        "as OL403). Default: off",
    )
    parser.add_argument(
        "--check-discharge",
        action="store_true",
        help="differential soundness guard: prove everything anyway and "
        "report any disagreement between the static discharge and the "
        "prover as an OL402 error (implies --static-discharge on)",
    )
    return parser


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="oolong-lint",
        description=(
            "Run only the static analyses (restrictions, escape analysis, "
            "modifies inference, lints) over oolong programs — no prover."
        ),
    )
    _add_shared_arguments(parser)
    parser.add_argument(
        "--no-restrictions",
        action="store_true",
        help="skip the OL1xx restriction family (syntactic and "
        "flow-sensitive pivot passes)",
    )
    return parser


def _read_sources(
    paths: List[str],
) -> Tuple[Optional[List[Tuple[str, str]]], Optional[str]]:
    """Read every input file; (sources, None) or (None, error message)."""
    sources: List[Tuple[str, str]] = []
    for path in paths:
        try:
            with open(path) as handle:
                sources.append((path, handle.read()))
        except OSError as error:
            return None, f"cannot read {path}: {error}"
    return sources, None


def _parse_scope_recovering(sources: List[Tuple[str, str]]):
    """Parse each file with error recovery; positions carry file names.

    Returns ``(scope, frontend_diagnostics)``; the diagnostics cover
    every lexical/syntax error in every file, not just the first.
    """
    return Scope.from_sources_recovering(sources)


def _print_frontend_errors(diagnostics, sources, fmt: str) -> None:
    from repro.analysis.diagnostics import render_json, render_text

    if fmt == "json":
        print(render_json(diagnostics, ok=False))
    elif fmt == "sarif":
        from repro.analysis.sarif import render_sarif

        print(render_sarif(diagnostics))
    else:
        print(render_text(diagnostics, dict(sources)), file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """The ``oolong-check`` entry point (with the ``lint`` subcommand)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "workers":
        return workers_main(argv[1:])
    if argv and argv[0] == "cache":
        return cache_main(argv[1:])
    if argv and argv[0] == "events":
        return events_main(argv[1:])
    return check_main(argv)


def check_main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.resume and not args.run_dir:
        print("error: --resume requires --run-dir DIR", file=sys.stderr)
        return 2
    sources, read_error = _read_sources(args.files)
    if read_error is not None:
        print(f"error: {read_error}", file=sys.stderr)
        return 2
    limits = Limits(
        time_budget=args.time_budget,
        max_instances=args.max_instances,
        scope_time_budget=args.scope_time_budget,
    )
    tracer = None
    if args.trace or args.metrics or args.profile:
        from repro.obs import Tracer

        tracer = Tracer()
    journal = None
    renderer = None
    if args.events or args.progress:
        from repro.obs import EventJournal

        journal = EventJournal()
        if args.progress:
            from repro.obs import ProgressRenderer

            renderer = ProgressRenderer()
            journal.add_listener(renderer)
    if args.explain_out:
        args.explain = True
    outcome = {"report": None}
    try:
        from contextlib import nullcontext

        from repro.obs import journaling
        from repro.testing.chaos import plan_from_env
        from repro.testing.faults import inject

        # The chaos harness reaches subprocess runs through the
        # environment (OOLONG_CHAOS="stage@hit,..."): install the plan
        # exactly as `inject` would in-process, so coordinator kill
        # points fire inside real CLI runs.
        chaos_plan = plan_from_env()
        with journaling(journal):
            with (
                inject(chaos_plan)
                if chaos_plan is not None
                else nullcontext()
            ):
                return _check_traced(args, sources, limits, tracer, outcome)
    finally:
        # Exports happen on every exit path — a trace of a failing or
        # crashing run is exactly the one worth keeping (spans are
        # closed by the instrumentation's ``with`` blocks on unwind,
        # and a journal of a crashed run records how far it got).
        if renderer is not None:
            renderer.finish()
        _write_exports(args, tracer, outcome, journal)


def _check_traced(args, sources, limits: Limits, tracer, outcome) -> int:
    from contextlib import nullcontext

    from repro.obs import tracing

    with tracing(tracer) if tracer is not None else nullcontext():
        try:
            scope, frontend = _parse_scope_recovering(sources)
            if frontend:
                _print_frontend_errors(frontend, sources, args.format)
                return 2
            check_well_formed(scope)
            report = check_scope(
                scope,
                limits,
                enforce_restrictions=not args.no_restrictions,
                lint=not args.no_lint,
                explain=args.explain,
                parallel=args.jobs,
                fleet=_fleet_spec(args),
                cache_dir=args.cache_dir,
                cache_url=args.cache_url,
                cache_max_bytes=args.cache_max_bytes,
                job_timeout=args.job_timeout,
                max_retries=args.max_retries,
                static_discharge=args.static_discharge,
                check_discharge=args.check_discharge,
                run_dir=args.run_dir,
                resume=args.resume,
            )
            outcome["report"] = report
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        except Exception as error:  # keep the CLI alive on internal crashes
            print(
                f"internal error: {type(error).__name__}: {error}",
                file=sys.stderr,
            )
            return 2
    if report.ledger_summary:
        # Routine recovery detail (resumed counts, a torn tail trimmed,
        # duplicates collapsed, stale entries dropped) goes to stderr so
        # the report itself stays byte-identical to an uninterrupted
        # run; whole-ledger failures become OL905 report diagnostics in
        # the checker instead.
        for warning in report.ledger_summary.get("warnings", ()):
            print(f"warning: OL905: {warning}", file=sys.stderr)
    if args.format == "json":
        from repro.analysis.diagnostics import render_json

        payload = report.to_dict()
        if tracer is not None:
            payload["metrics"] = tracer.metrics.to_dict()
        print(render_json([], **payload))
    elif args.format == "sarif":
        from repro.analysis.sarif import render_report_sarif

        print(render_report_sarif(report))
    else:
        print(report.describe(stats=args.stats))
    if args.profile:
        from repro.obs import text_report

        print(text_report(tracer))
    failed = not report.ok or _fails_threshold(
        report.diagnostics, args.fail_on
    )
    return 1 if failed else 0


def _fleet_spec(args):
    """Turn ``--fleet``/``--fleet-wait`` into a ``check_scope`` spec.

    The common case stays the raw string (the checker resolves it);
    ``--fleet-wait`` forces an eager :class:`FleetOptions` so the
    registration wait rides along.
    """
    if args.fleet is None:
        return None
    if args.fleet_wait is None:
        return args.fleet
    from repro.parallel.fleet import FleetOptions

    return FleetOptions.from_spec(
        args.fleet, registration_wait=args.fleet_wait
    )


def _export(label: str, path: Optional[str], writer) -> None:
    """Write one export file with the CLI's uniform error policy.

    Every on-exit artifact (trace, metrics, explanations, cache summary)
    goes through here: a missing path is a no-op, and an unwritable path
    degrades to a stderr warning instead of masking the run's own exit
    code — the single place that rule lives.
    """
    if not path:
        return
    try:
        writer(path)
    except OSError as error:
        print(f"error: cannot write {label}: {error}", file=sys.stderr)


def _write_text(path: str, text: str) -> None:
    with open(path, "w") as handle:
        handle.write(text)
        handle.write("\n")


def _write_exports(args, tracer, outcome, journal=None) -> None:
    """Everything the CLI owes the filesystem, on *every* exit path.

    Called from ``check_main``'s single ``finally`` so a crash, a
    KeyboardInterrupt, or a clean failure all leave the same artifacts:
    the Chrome trace, the metrics file, the event journal, the
    explanation report (a run that crashed before any verdict still
    produces a valid, empty report), and the result-cache flush summary.
    """
    report = outcome.get("report")
    if tracer is not None:
        from repro.obs import (
            write_chrome_trace,
            write_metrics,
            write_metrics_prometheus,
        )

        _export(
            "trace", args.trace, lambda path: write_chrome_trace(path, tracer)
        )
        metrics_writer = (
            write_metrics_prometheus
            if args.metrics_format == "prom"
            else write_metrics
        )
        _export(
            "metrics",
            args.metrics,
            lambda path: metrics_writer(path, tracer.metrics),
        )
    if journal is not None:
        _export(
            "events",
            args.events,
            lambda path: journal.write(path, append=args.events_append),
        )
    if args.explain:
        text = _render_explanations(args, report)
        if args.explain_out:
            _export(
                "explanations",
                args.explain_out,
                lambda path: _write_text(path, text),
            )
        else:
            print(text)
    if args.cache_dir:
        import json
        import os

        from repro.parallel.cache import atomic_write_text

        summary = (
            report.cache_summary if report is not None else None
        ) or {"directory": args.cache_dir, "note": "run ended before checking"}
        # Atomic (write-to-temp + rename): a reader polling summary.json
        # (CI dashboards, a concurrent run) never sees a torn file.
        _export(
            "cache summary",
            os.path.join(args.cache_dir, "summary.json"),
            lambda path: atomic_write_text(
                path, json.dumps(summary, indent=2, sort_keys=True) + "\n"
            ),
        )
    if getattr(args, "run_dir", None):
        import json
        import os

        from repro.parallel.cache import atomic_write_text

        ledger_summary = (
            report.ledger_summary if report is not None else None
        ) or {"directory": args.run_dir, "note": "run ended before checking"}
        _export(
            "ledger summary",
            os.path.join(args.run_dir, "summary.json"),
            lambda path: atomic_write_text(
                path,
                json.dumps(ledger_summary, indent=2, sort_keys=True) + "\n",
            ),
        )


def _render_explanations(args, report) -> str:
    verdicts = report.verdicts if report is not None else []
    explanations = [
        verdict.explanation
        for verdict in verdicts
        if verdict.explanation is not None
    ]
    if args.explain_format == "json":
        import json

        from repro.obs.explain import SCHEMA_VERSION

        payload = {
            "schema_version": SCHEMA_VERSION,
            "source": ", ".join(args.files),
            "explanations": [e.to_dict() for e in explanations],
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    blocks = [e.render_text() for e in explanations]
    return "\n\n".join(blocks) if blocks else "(no explanations)"


def _render_status(payload: dict, metrics_format: Optional[str]) -> str:
    """Render a STATUS payload: human text, JSON, or Prometheus text."""
    if metrics_format == "json":
        import json

        return json.dumps(payload, indent=2, sort_keys=True)
    if metrics_format == "prom":
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.merge_dict(payload.get("metrics", {}))
        return registry.to_prometheus().rstrip("\n")
    kind = payload.get("kind", "server")
    lines = [
        f"{kind} pid={payload.get('pid')} "
        f"uptime={payload.get('uptime')}s"
    ]
    if kind == "worker-pool":
        workers = payload.get("workers", {})
        pids = ", ".join(str(pid) for pid in workers.get("pids", []))
        lines.append(f"  coordinator: {payload.get('coordinator')}")
        lines.append(
            f"  workers: {workers.get('alive')}/{workers.get('configured')} "
            f"alive (pids: {pids or 'none'})"
        )
        lines.append(f"  jobs served: {payload.get('jobs_served')}")
    elif kind == "cache-server":
        lines.append(f"  address: {payload.get('address')}")
        for key, value in sorted(payload.get("summary", {}).items()):
            lines.append(f"  {key}: {value}")
    counters = payload.get("metrics", {}).get("counters", {})
    for name, value in sorted(counters.items()):
        lines.append(f"  {name}: {value}")
    return "\n".join(lines)


def _journal_for_server(events_path: Optional[str]):
    """A journal for a server entry point, or None without ``--events``."""
    if not events_path:
        return None
    from repro.obs import EventJournal

    return EventJournal()


def workers_main(argv: Optional[List[str]] = None) -> int:
    """``oolong-check workers serve|status`` — a standing worker pool.

    ``serve HOST:PORT`` keeps dialing the coordinator address, so the
    pool can be started before any checker run exists and survives
    across successive runs (each run's coordinator binds the same
    address, the workers rejoin). With ``--status HOST:PORT`` the pool
    also answers live status queries there. ``status HOST:PORT`` asks a
    pool's status endpoint and prints the answer.
    """
    parser = argparse.ArgumentParser(
        prog="oolong-check workers",
        description=(
            "Run a standing pool of fleet proof workers that dial a "
            "coordinator address and steal job leases from it (see "
            "'oolong-check --fleet HOST:PORT'), or query a running "
            "pool's status endpoint."
        ),
    )
    parser.add_argument(
        "action",
        choices=("serve", "status"),
        help="serve: run the pool until ^C; status: query a pool's "
        "--status endpoint and print the answer",
    )
    parser.add_argument(
        "address",
        metavar="HOST:PORT",
        help="serve: fleet coordinator address to dial; status: the "
        "pool's --status endpoint address",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=_nonneg_int,
        metavar="N",
        default=2,
        help="worker processes in the pool (default: 2)",
    )
    parser.add_argument(
        "--token",
        default=None,
        help="shared fleet token (must match the coordinator's)",
    )
    parser.add_argument(
        "--status",
        metavar="HOST:PORT",
        default=None,
        help="with serve: also answer status queries at this address "
        "(port 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--http",
        metavar="HOST:PORT",
        default=None,
        help="with serve: also expose /metrics (Prometheus text), "
        "/healthz, and /status (JSON) over plain HTTP at this address",
    )
    parser.add_argument(
        "--events",
        metavar="FILE",
        default=None,
        help="with serve: write the pool's JSONL event journal to FILE "
        "on shutdown",
    )
    parser.add_argument(
        "--events-append",
        action="store_true",
        help="append to --events FILE instead of truncating it",
    )
    parser.add_argument(
        "--drain-timeout",
        type=_nonneg_float,
        metavar="S",
        default=10.0,
        help="with serve: on SIGTERM or ^C, seconds to let in-flight "
        "jobs finish before remaining workers are terminated "
        "(default: 10)",
    )
    parser.add_argument(
        "--timeout",
        type=_nonneg_float,
        metavar="SECONDS",
        default=5.0,
        help="with status: bound the connect/read round-trip "
        "(default: 5)",
    )
    parser.add_argument(
        "--metrics-format",
        choices=("json", "prom"),
        default=None,
        help="with status: print the full payload as JSON, or the "
        "metrics as Prometheus text (default: human-readable summary)",
    )
    args = parser.parse_args(argv)
    from repro.parallel.transport import parse_address

    try:
        address = parse_address(args.address)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.action == "status":
        from repro.parallel.transport import (
            StatusRejected,
            TransportError,
            query_status,
        )

        try:
            payload = query_status(
                address, token=args.token, timeout=args.timeout
            )
        except StatusRejected as error:
            print(f"error: {error}", file=sys.stderr)
            print(
                "hint: something answered but refused the handshake — "
                "wrong server, protocol, or --token?",
                file=sys.stderr,
            )
            return EXIT_STATUS_REJECTED
        except TransportError as error:
            print(f"error: {error}", file=sys.stderr)
            print(
                f"hint: nothing answered at {args.address} — "
                "is the server running?",
                file=sys.stderr,
            )
            return EXIT_STATUS_DOWN
        print(_render_status(payload, args.metrics_format))
        return 0
    from repro.obs import journaling
    from repro.parallel.fleet import serve_workers_forever

    if args.jobs < 1:
        print("error: --jobs must be at least 1", file=sys.stderr)
        return 2
    status_address = None
    if args.status is not None:
        try:
            status_address = parse_address(args.status)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    http_address = None
    if args.http is not None:
        try:
            http_address = parse_address(args.http)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    journal = _journal_for_server(args.events)
    try:
        with journaling(journal):
            serve_workers_forever(
                address,
                jobs=args.jobs,
                token=args.token,
                status_address=status_address,
                http_address=http_address,
                drain_timeout=args.drain_timeout,
            )
    except KeyboardInterrupt:
        pass
    finally:
        if journal is not None:
            _export(
                "events",
                args.events,
                lambda path: journal.write(path, append=args.events_append),
            )
    return 0


def cache_main(argv: Optional[List[str]] = None) -> int:
    """``oolong-check cache serve|status HOST:PORT`` — a shared cache."""
    parser = argparse.ArgumentParser(
        prog="oolong-check cache",
        description=(
            "Serve an on-disk result cache over a socket so many checker "
            "runs can warm each other (see 'oolong-check --cache-url'), "
            "or query a running server's status."
        ),
    )
    parser.add_argument(
        "action",
        choices=("serve", "status"),
        help="serve: run the server until ^C; status: query a running "
        "server and print its status",
    )
    parser.add_argument(
        "address",
        metavar="HOST:PORT",
        help="serve: address to listen on; status: server to query",
    )
    parser.add_argument(
        "--dir",
        dest="directory",
        metavar="PATH",
        default=None,
        help="with serve (required): cache directory to serve (created "
        "if missing)",
    )
    parser.add_argument(
        "--max-bytes",
        type=_nonneg_int,
        metavar="B",
        default=None,
        help="evict least-recently-used entries beyond B bytes",
    )
    parser.add_argument(
        "--token",
        default=None,
        help="shared secret clients must present",
    )
    parser.add_argument(
        "--http",
        metavar="HOST:PORT",
        default=None,
        help="with serve: also expose /metrics (Prometheus text), "
        "/healthz, and /status (JSON) over plain HTTP at this address",
    )
    parser.add_argument(
        "--events",
        metavar="FILE",
        default=None,
        help="with serve: write the server's JSONL event journal to "
        "FILE on shutdown",
    )
    parser.add_argument(
        "--events-append",
        action="store_true",
        help="append to --events FILE instead of truncating it",
    )
    parser.add_argument(
        "--drain-timeout",
        type=_nonneg_float,
        metavar="S",
        default=10.0,
        help="with serve: on SIGTERM or ^C, seconds to let connected "
        "clients finish in-flight requests before they are severed "
        "(default: 10)",
    )
    parser.add_argument(
        "--timeout",
        type=_nonneg_float,
        metavar="SECONDS",
        default=5.0,
        help="with status: bound the connect/read round-trip "
        "(default: 5)",
    )
    parser.add_argument(
        "--metrics-format",
        choices=("json", "prom"),
        default=None,
        help="with status: print the full payload as JSON, or the "
        "metrics as Prometheus text (default: human-readable summary)",
    )
    args = parser.parse_args(argv)
    from repro.parallel.transport import parse_address

    try:
        address = parse_address(args.address)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.action == "status":
        from repro.parallel.cacheserver import (
            CacheRejected,
            CacheUnavailable,
            cache_status,
        )

        try:
            payload = cache_status(
                args.address, token=args.token, timeout=args.timeout
            )
        except CacheRejected as error:
            print(f"error: {error}", file=sys.stderr)
            print(
                "hint: something answered but refused the handshake — "
                "wrong server, protocol, or --token?",
                file=sys.stderr,
            )
            return EXIT_STATUS_REJECTED
        except CacheUnavailable as error:
            print(f"error: {error}", file=sys.stderr)
            print(
                f"hint: nothing answered at {args.address} — "
                "is the server running?",
                file=sys.stderr,
            )
            return EXIT_STATUS_DOWN
        print(_render_status(payload, args.metrics_format))
        return 0
    if not args.directory:
        print("error: serve requires --dir PATH", file=sys.stderr)
        return 2
    http_address = None
    if args.http is not None:
        try:
            http_address = parse_address(args.http)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    from repro.obs import journaling
    from repro.parallel.cacheserver import serve_cache_forever

    journal = _journal_for_server(args.events)
    try:
        with journaling(journal):
            serve_cache_forever(
                args.directory,
                address,
                max_bytes=args.max_bytes or None,
                token=args.token,
                http_address=http_address,
                drain_timeout=args.drain_timeout,
            )
    except KeyboardInterrupt:
        pass
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if journal is not None:
            _export(
                "events",
                args.events,
                lambda path: journal.write(path, append=args.events_append),
            )
    return 0


def events_main(argv: Optional[List[str]] = None) -> int:
    """``oolong-check events report|export FILE`` — journal analytics.

    ``report`` reconstructs one run from its JSONL event journal
    (``--events`` output): per-worker utilization and idle gaps, lease
    latency percentiles, OL901–OL904 fault summaries correlated to
    implementations, cache effectiveness, and the critical path that
    bounded wall-clock — as text or schema-pinned JSON
    (``report.schema.json``). ``export --trace OUT`` converts the
    journal into a Chrome trace (open in Perfetto), reconstructing the
    timeline even for fleet runs over external worker pools whose
    in-process spans never came home.
    """
    parser = argparse.ArgumentParser(
        prog="oolong-check events",
        description=(
            "Analyze a JSONL event journal produced by --events: render "
            "a run report, or export the journal as a Chrome trace."
        ),
    )
    parser.add_argument(
        "action",
        choices=("report", "export"),
        help="report: analyze one run and render it; export: convert "
        "the journal to a Chrome trace (requires --trace)",
    )
    parser.add_argument(
        "file",
        metavar="FILE",
        help="the JSONL event journal to analyze",
    )
    parser.add_argument(
        "--run",
        metavar="RUN_ID",
        default=None,
        help="select one run of a multi-run (--events-append) journal "
        "(default: the first run containing a check-start)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="with report: render as human text (default) or as JSON "
        "conforming to the in-tree report.schema.json",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="with report: write the rendering to FILE instead of "
        "stdout",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="with export: write the Chrome trace JSON to FILE",
    )
    args = parser.parse_args(argv)
    import json

    from repro.obs import read_journal
    from repro.obs.analyze import (
        AnalysisError,
        analyze_journal,
        journal_chrome_trace,
        render_report_text,
    )

    def _warn_skip(lineno: int, reason: str) -> None:
        # A journal from a killed run legitimately ends in a torn line;
        # analyzing what *was* recorded is the whole point.
        print(
            f"warning: OL905: {args.file}:{lineno}: skipped {reason}",
            file=sys.stderr,
        )

    try:
        records = read_journal(args.file, on_skip=_warn_skip)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.action == "export":
        if not args.trace:
            print("error: export requires --trace FILE", file=sys.stderr)
            return 2
        try:
            payload = journal_chrome_trace(records, args.run)
        except AnalysisError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        try:
            _write_text(args.trace, json.dumps(payload, sort_keys=True))
        except OSError as error:
            print(f"error: cannot write trace: {error}", file=sys.stderr)
            return 2
        print(
            f"wrote {args.trace} ({len(payload['traceEvents'])} trace "
            "events)"
        )
        return 0
    try:
        report = analyze_journal(records, args.run)
    except AnalysisError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        text = json.dumps(report, indent=2, sort_keys=True)
    else:
        text = render_report_text(report).rstrip("\n")
    if args.out:
        try:
            _write_text(args.out, text)
        except OSError as error:
            print(f"error: cannot write report: {error}", file=sys.stderr)
            return 2
    else:
        print(text)
    return 0


def lint_main(argv: Optional[List[str]] = None) -> int:
    """The ``oolong-lint`` / ``oolong-check lint`` entry point."""
    args = build_lint_parser().parse_args(argv)
    sources, read_error = _read_sources(args.files)
    if read_error is not None:
        print(f"error: {read_error}", file=sys.stderr)
        return 2
    from repro.analysis.diagnostics import render_json, render_text
    from repro.analysis.engine import lint_scope

    try:
        scope, frontend = _parse_scope_recovering(sources)
        if frontend:
            _print_frontend_errors(frontend, sources, args.format)
            return 2
        result = lint_scope(
            scope,
            include_restrictions=not args.no_restrictions,
            include_flow=not args.no_restrictions,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except Exception as error:  # keep the CLI alive on internal crashes
        print(f"internal error: {type(error).__name__}: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(
            render_json(
                result.diagnostics,
                inferred_modifies={
                    proc: list(designators)
                    for proc, designators in sorted(
                        result.inferred_modifies.items()
                    )
                },
                ok=result.ok,
            )
        )
    elif args.format == "sarif":
        from repro.analysis.sarif import render_sarif

        print(render_sarif(result.diagnostics))
    else:
        text = render_text(result.diagnostics, dict(sources))
        if text:
            print(text)
        print(f"{len(result.diagnostics)} diagnostic(s)")
    if _fails_threshold(result.diagnostics, args.fail_on):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
