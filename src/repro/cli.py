"""Command-line entry point: ``oolong-check [options] file.oolong ...``.

Runs the full pipeline — parse, well-formedness, pivot uniqueness, VC
generation, mechanical proof — and prints a per-implementation report,
exiting non-zero if any check fails.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits
from repro.vcgen.checker import check_scope


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="oolong-check",
        description=(
            "Statically check the side effects of oolong programs using "
            "data groups (PLDI 2002 reproduction)."
        ),
    )
    parser.add_argument("files", nargs="+", help="oolong source files")
    parser.add_argument(
        "--time-budget",
        type=float,
        default=30.0,
        help="prover time budget per implementation, in seconds",
    )
    parser.add_argument(
        "--max-instances",
        type=int,
        default=20000,
        help="prover instantiation budget per implementation",
    )
    parser.add_argument(
        "--no-restrictions",
        action="store_true",
        help="disable the pivot-uniqueness restriction pass (unsound; "
        "for experiments only)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print prover statistics per implementation",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    source_parts: List[str] = []
    for path in args.files:
        try:
            with open(path) as handle:
                source_parts.append(handle.read())
        except OSError as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 2
    source = "\n".join(source_parts)
    limits = Limits(
        time_budget=args.time_budget, max_instances=args.max_instances
    )
    try:
        scope = Scope.from_source(source)
        check_well_formed(scope)
        report = check_scope(
            scope, limits, enforce_restrictions=not args.no_restrictions
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for violation in report.pivot_violations:
        print(f"restriction violation: {violation}")
    for verdict in report.verdicts:
        line = verdict.describe()
        if args.stats:
            stats = verdict.stats
            line += (
                f"  [instances={stats.instantiations} branches={stats.branches}"
                f" rounds={stats.rounds} time={stats.elapsed:.2f}s]"
            )
        print(line)
    print("OK" if report.ok else "FAILED")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
