"""``repro.parallel`` — supervised multi-process checking.

The paper's modular-soundness result (scope monotonicity) makes every
per-implementation verdict independent of the others; this package
exploits that independence for throughput *and* robustness:

* :mod:`repro.parallel.supervisor` — a :class:`WorkerSupervisor` that
  schedules proof jobs onto process-isolated workers with hard per-job
  timeouts (SIGKILL, not a cooperative poll), worker-death detection
  (exit code, killing signal, lost heartbeat) with exponential-backoff
  retries, quarantine after ``max_retries`` (``OL902``), prompt
  scope-budget cancellation, and a deterministic declaration-order
  merge;
* :mod:`repro.parallel.worker` — the long-lived worker process: one
  duplex pipe, a heartbeat thread, and the same per-implementation
  crash isolation the serial driver uses;
* :mod:`repro.parallel.cache` — a crash-safe incremental result cache:
  verdicts keyed by a content hash of (implementation source, scope
  interface, limits, code version), published with atomic
  temp-file+rename and a per-entry checksum, so a ``kill -9`` loses at
  most the in-flight jobs and corrupted or version-skewed entries are
  rejected (``OL903``) and recomputed.

Entry points: ``check_scope(parallel=N, cache_dir=...)``,
``check_program*(parallel=N, cache_dir=...)``, and the CLI
(``oolong-check -j N --cache-dir PATH --max-retries K --job-timeout S``).
"""

from repro.parallel.cache import (
    CACHEABLE_STATUSES,
    ResultCache,
    cache_key,
    code_version,
)
from repro.parallel.supervisor import (
    ParallelOptions,
    ParallelOutcome,
    WorkerSupervisor,
    run_parallel_checks,
)
from repro.parallel.worker import KILL_EXIT_CODE, JobRequest, JobResult

__all__ = [
    "CACHEABLE_STATUSES",
    "JobRequest",
    "JobResult",
    "KILL_EXIT_CODE",
    "ParallelOptions",
    "ParallelOutcome",
    "ResultCache",
    "WorkerSupervisor",
    "cache_key",
    "code_version",
    "run_parallel_checks",
]
