"""``repro.parallel`` — supervised multi-process and distributed checking.

The paper's modular-soundness result (scope monotonicity) makes every
per-implementation verdict independent of the others; this package
exploits that independence for throughput *and* robustness:

* :mod:`repro.parallel.supervisor` — a :class:`WorkerSupervisor` that
  schedules proof jobs onto process-isolated workers with hard per-job
  timeouts (SIGKILL, not a cooperative poll), worker-death detection
  (exit code, killing signal, lost heartbeat) with exponential-backoff
  retries, quarantine after ``max_retries`` (``OL902``), prompt
  scope-budget cancellation, and a deterministic declaration-order
  merge;
* :mod:`repro.parallel.worker` — the long-lived worker process: one
  duplex pipe, a heartbeat thread, and the same per-implementation
  crash isolation the serial driver uses;
* :mod:`repro.parallel.jobs` — the transport-neutral job book shared by
  the local supervisor and the fleet coordinator: one :class:`Job` per
  implementation, deterministic jittered backoff, and the exact
  ``OL901``/``OL902`` verdict constructors, so every scheduler fails
  identically;
* :mod:`repro.parallel.transport` — length-prefixed, checksummed socket
  framing with read deadlines; a damaged frame is rejected (and the
  stream resynchronised) rather than trusted;
* :mod:`repro.parallel.fleet` — the distributed scheduler: a socket
  coordinator handing out *renewable leases* to a fleet of local and/or
  remote workers via work stealing; expired leases are reclaimed and
  reassigned with backoff, and an unreachable or collapsed fleet
  degrades to the local supervisor with ``OL904`` — never a failed run;
* :mod:`repro.parallel.cache` — a crash-safe incremental result cache:
  verdicts keyed by a content hash of (implementation source, scope
  interface, limits, code version), published with atomic
  temp-file+rename and a per-entry checksum, LRU-bounded on disk with
  ``max_bytes``, so a ``kill -9`` loses at most the in-flight jobs and
  corrupted or version-skewed entries are rejected (``OL903``) and
  recomputed;
* :mod:`repro.parallel.cacheserver` — the same cache served over the
  fleet transport (:class:`CacheServer` / :class:`RemoteCache`), with
  entries checksum-validated on both ends of the wire and a mid-run
  circuit breaker instead of stalls.

Entry points: ``check_scope(parallel=N | fleet=..., cache_dir=...,
cache_url=...)``, ``check_program*`` with the same keywords, and the CLI
(``oolong-check -j N | --fleet N|HOST:PORT``, ``oolong-check workers
serve``, ``oolong-check cache serve``).
"""

from repro.parallel.cache import (
    CACHEABLE_STATUSES,
    ResultCache,
    atomic_write_text,
    cache_key,
    code_version,
    validate_entry,
)
from repro.parallel.cacheserver import (
    CacheServer,
    CacheUnavailable,
    RemoteCache,
    serve_cache_forever,
)
from repro.parallel.fleet import (
    FleetCoordinator,
    FleetOptions,
    FleetOutcome,
    FleetUnavailable,
    fleet_worker_main,
    run_fleet_checks,
    serve_workers_forever,
)
from repro.parallel.jobs import (
    Job,
    backoff_delay,
    build_jobs,
    jitter_fraction,
)
from repro.parallel.supervisor import (
    ParallelOptions,
    ParallelOutcome,
    WorkerSupervisor,
    run_parallel_checks,
)
from repro.parallel.transport import (
    ConnectionClosed,
    FrameError,
    FramedSocket,
    FramePolicy,
    ReadTimeout,
    TransportError,
    parse_address,
)
from repro.parallel.worker import KILL_EXIT_CODE, JobRequest, JobResult

__all__ = [
    "CACHEABLE_STATUSES",
    "CacheServer",
    "CacheUnavailable",
    "ConnectionClosed",
    "FleetCoordinator",
    "FleetOptions",
    "FleetOutcome",
    "FleetUnavailable",
    "FrameError",
    "FramePolicy",
    "FramedSocket",
    "Job",
    "JobRequest",
    "JobResult",
    "KILL_EXIT_CODE",
    "ParallelOptions",
    "ParallelOutcome",
    "ReadTimeout",
    "RemoteCache",
    "ResultCache",
    "TransportError",
    "WorkerSupervisor",
    "atomic_write_text",
    "backoff_delay",
    "build_jobs",
    "cache_key",
    "code_version",
    "fleet_worker_main",
    "jitter_fraction",
    "parse_address",
    "run_fleet_checks",
    "run_parallel_checks",
    "serve_cache_forever",
    "serve_workers_forever",
    "validate_entry",
]
