"""The shared job/lease protocol of the parallel and fleet backends.

Both the single-machine :class:`~repro.parallel.supervisor.WorkerSupervisor`
and the socket :class:`~repro.parallel.fleet.FleetCoordinator` schedule the
same unit of work — one per-implementation proof obligation — and enforce
the same failure policy on it: retries with exponential backoff after a
worker death, quarantine (``OL902``) after the retry budget is exhausted,
and the hard-timeout / scope-deadline vocabulary (``OL901``). This module
holds the pieces they share, so the two backends cannot drift apart:

* :class:`Job` — the per-implementation bookkeeping record (attempt
  counter, backoff eligibility, death history, final verdict);
* :func:`build_jobs` — jobs in the serial driver's iteration order (the
  declaration order every backend's merged report must follow);
* :func:`backoff_delay` — exponential backoff **with deterministic
  jitter**: pure-exponential delays make simultaneously-orphaned jobs
  retry in lockstep (a thundering herd against whatever killed their
  workers); the jitter is derived from a hash of a caller-supplied token
  so runs stay reproducible while distinct jobs spread out;
* the verdict builders for the shared failure outcomes: quarantine,
  hard timeout, and scope-deadline cancellation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.oolong.ast import ImplDecl
from repro.oolong.program import Scope
from repro.prover.core import ProverStats


@dataclass
class Job:
    """One per-implementation proof obligation in a backend's book."""

    job_id: int
    proc_name: str
    impl_index: int
    impl: ImplDecl
    key: Optional[str] = None
    attempts: int = 0
    #: Earliest monotonic time the next attempt may be scheduled
    #: (exponential backoff + jitter after a worker death).
    eligible_at: float = 0.0
    death_reasons: List[str] = field(default_factory=list)
    # Filled when the job completes:
    verdict: Optional[object] = None
    explain_crash: Optional[Diagnostic] = None
    cache_hit: bool = False

    @property
    def done(self) -> bool:
        return self.verdict is not None


def build_jobs(scope: Scope) -> List[Job]:
    """The proof jobs in the serial driver's iteration order."""
    jobs: List[Job] = []
    for proc_name, impls in scope.impls.items():
        for index, impl in enumerate(impls):
            jobs.append(
                Job(
                    job_id=len(jobs),
                    proc_name=proc_name,
                    impl_index=index,
                    impl=impl,
                )
            )
    return jobs


def jitter_fraction(token: str) -> float:
    """A deterministic pseudo-random fraction in ``[0, 1)`` for ``token``.

    Hash-derived rather than ``random``-derived so backoff schedules are
    reproducible run to run (and in seeded fault-injection tests) while
    still differing *between* jobs and attempts — which is the point of
    jitter: two jobs orphaned by the same worker death must not retry at
    the same instant forever.
    """
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def backoff_delay(
    base: float, attempt: int, *, jitter: float = 0.5, token: str = ""
) -> float:
    """Exponential backoff with deterministic jitter.

    Attempt *n* (1-based) waits ``base * 2**(n-1)``, stretched by up to
    ``jitter`` (a fraction of itself) according to
    :func:`jitter_fraction` of ``token:attempt``.
    """
    delay = base * (2 ** max(attempt - 1, 0))
    if jitter <= 0:
        return delay
    return delay * (1.0 + jitter * jitter_fraction(f"{token}:{attempt}"))


def quarantine_verdict(job: Job) -> object:
    """The ``INTERNAL_ERROR``/``OL902`` verdict for an exhausted job."""
    from repro.vcgen.checker import ImplStatus, ImplVerdict

    history = "; ".join(job.death_reasons)
    return ImplVerdict(
        impl=job.impl,
        index=job.impl_index,
        status=ImplStatus.INTERNAL_ERROR,
        stats=ProverStats(),
        error=Diagnostic(
            code="OL902",
            message=(
                f"worker died {job.attempts} time(s) running this "
                f"implementation ({history}); job quarantined"
            ),
            impl=job.impl.name,
        ),
    )


def hard_timeout_verdict(job: Job, detail: str) -> object:
    """The ``TIMED_OUT``/``OL901`` verdict for a hard-timeout overrun."""
    from repro.vcgen.checker import ImplStatus, ImplVerdict

    return ImplVerdict(
        impl=job.impl,
        index=job.impl_index,
        status=ImplStatus.TIMED_OUT,
        stats=ProverStats(),
        error=Diagnostic(
            code="OL901",
            message=detail,
            impl=job.impl.name,
        ),
    )


def deadline_verdict(job: Job, *, before: bool) -> object:
    """The scope-budget cancellation verdict, matching the serial driver's
    before/mid-check ``OL901`` vocabulary exactly."""
    from repro.vcgen.checker import (
        ImplStatus,
        ImplVerdict,
        _deadline_diagnostic,
    )

    return ImplVerdict(
        impl=job.impl,
        index=job.impl_index,
        status=ImplStatus.TIMED_OUT,
        stats=ProverStats(),
        error=_deadline_diagnostic(job.impl, before=before),
    )
