"""Crash-safe incremental result cache for the modular checker.

The paper's modular-soundness story makes per-implementation verdicts a
function of (implementation body, scope interface, prover limits): scope
monotonicity guarantees the verdict cannot depend on the *other*
implementations in the scope. That makes verdicts cacheable by content
hash — and a rerun after a crash (or an edit touching one procedure)
only has to re-prove what actually changed.

Durability discipline:

* every entry is its own file, written to a temp name in the cache
  directory and published with an atomic ``os.replace`` — a ``kill -9``
  mid-run loses at most the entries still being written, never corrupts
  a published one;
* every entry carries a SHA-256 checksum of its payload plus the cache
  format and code version; a corrupted, truncated, or version-skewed
  entry is *rejected* (recorded on :attr:`ResultCache.rejections`, and
  surfaced by the driver as an ``OL903`` warning) and recomputed —
  never silently trusted;
* only deterministic outcomes are cached (``VERIFIED``, ``NOT_PROVED``,
  ``RESOURCE_OUT``). Worker deaths, crashes, and deadline timeouts are
  transient by definition and always re-run.

Explanations (:mod:`repro.obs.explain`) are not cached; the driver
bypasses the cache when ``explain=True`` so explain runs always carry
full blame reports and proof logs.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro import __version__
from repro.obs import events as obs_events
from repro.oolong.ast import ImplDecl
from repro.oolong.pretty import pretty_decl
from repro.prover.core import Limits


def _event_key(key: str) -> str:
    """The truncated key journal records carry (full keys are 64 hex)."""
    return key[:16]

if TYPE_CHECKING:
    from repro.oolong.program import Scope
    from repro.vcgen.checker import ImplVerdict

#: Bump when the cached payload layout (or anything that invalidates old
#: verdicts, e.g. the VC encoding) changes; old entries are then
#: rejected as version-skewed and recomputed.
CACHE_FORMAT = 1

#: Statuses whose verdicts are deterministic re-runs of the same inputs.
CACHEABLE_STATUSES = ("verified", "not proved", "resource limit exceeded")


def code_version() -> str:
    """The version stamp baked into every key and entry.

    Includes the discharge-pass version: discharged implementations
    never write cache entries, but which implementations *reach* the
    prover (and the semantics the differential guard assumes) changes
    with the pass, so cached verdicts must not outlive it.
    """
    from repro.analysis.effects import DISCHARGE_VERSION

    return f"{__version__}+cache{CACHE_FORMAT}+discharge{DISCHARGE_VERSION}"


def _limits_fingerprint(limits: Optional[Limits]) -> str:
    """The limit fields that can change a per-implementation verdict.

    Batch-level settings (``scope_time_budget``/``scope_deadline``) are
    excluded on purpose: they decide *whether* a job runs, not what its
    verdict is once it does.
    """
    effective = limits if limits is not None else Limits()
    return json.dumps(
        {
            "time_budget": effective.time_budget,
            "max_instances": effective.max_instances,
            "max_rounds": effective.max_rounds,
            "max_depth": effective.max_depth,
            "max_branches": effective.max_branches,
            "max_matches_per_round": effective.max_matches_per_round,
            "max_instance_width": effective.max_instance_width,
            "escalation_bonus": effective.escalation_bonus,
        },
        sort_keys=True,
    )


def cache_key(
    scope: "Scope", impl: ImplDecl, index: int, limits: Optional[Limits]
) -> str:
    """Content hash of everything the implementation's verdict depends on.

    The scope *interface* (group/field/proc declarations, in declaration
    order — the background predicate is built from them in that order),
    the pretty-printed implementation body, its index among same-name
    implementations, the verdict-relevant limits, and the code version.
    """
    hasher = hashlib.sha256()
    for decl in scope.decls:
        if not isinstance(decl, ImplDecl):
            hasher.update(pretty_decl(decl).encode())
            hasher.update(b"\x00")
    hasher.update(b"\x01")
    hasher.update(pretty_decl(impl).encode())
    hasher.update(f"\x02{index}\x02".encode())
    hasher.update(_limits_fingerprint(limits).encode())
    hasher.update(f"\x03{code_version()}".encode())
    return hasher.hexdigest()


def _checksum(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def validate_entry(entry, key: str) -> Tuple[Optional[dict], Optional[str]]:
    """Validate one raw cache entry against ``key``.

    Returns ``(verdict_payload, None)`` on success or ``(None, reason)``
    on rejection. This is the single validation chain for every consumer
    of entries — the local :class:`ResultCache`, the cache *server*
    (which refuses to serve bad entries), and the remote cache *client*
    (which re-validates everything the server sends, so a corrupt or
    version-skewed entry is rejected on both ends of the wire).
    """
    payload = entry.get("payload") if isinstance(entry, dict) else None
    if not isinstance(payload, dict):
        return None, "malformed entry: no payload object"
    if entry.get("checksum") != _checksum(payload):
        return None, "checksum mismatch (corrupted entry)"
    if payload.get("code_version") != code_version():
        return None, (
            f"version skew: entry {payload.get('code_version')!r} "
            f"vs current {code_version()!r}"
        )
    if payload.get("key") != key:
        return None, "key mismatch (entry written for another job)"
    verdict = payload.get("verdict")
    if (
        not isinstance(verdict, dict)
        or verdict.get("status") not in CACHEABLE_STATUSES
    ):
        return None, "malformed entry: bad verdict"
    return verdict, None


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp + rename.

    The same durability discipline as cache entries: readers never see a
    half-written file, and a crash mid-write leaves the previous version
    intact.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(
        prefix=f".{os.path.basename(path)}-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def verdict_to_payload(verdict: "ImplVerdict") -> Optional[dict]:
    """The cacheable projection of a verdict, or None if not cacheable."""
    if verdict.status.value not in CACHEABLE_STATUSES:
        return None
    failed = verdict.failed_obligation
    return {
        "status": verdict.status.value,
        "stats": verdict.stats.to_dict(),
        "failed_obligation": (
            _obligation_to_dict(failed) if failed is not None else None
        ),
    }


def _obligation_to_dict(obligation) -> dict:
    position = obligation.position
    return {
        "ident": obligation.ident,
        "kind": obligation.kind,
        "description": obligation.description,
        "position": (
            {
                "line": position.line,
                "column": position.column,
                "file": position.file,
            }
            if position is not None
            else None
        ),
        "target": obligation.target,
        "attr": obligation.attr,
        "modifies": list(obligation.modifies),
        "callee": obligation.callee,
        "arg_index": obligation.arg_index,
    }


def _obligation_from_dict(data: dict):
    from repro.errors import SourcePosition
    from repro.vcgen.wlp import ObligationInfo

    position = data.get("position")
    return ObligationInfo(
        ident=data["ident"],
        kind=data["kind"],
        description=data["description"],
        position=(
            SourcePosition(
                line=position["line"],
                column=position["column"],
                file=position.get("file"),
            )
            if position is not None
            else None
        ),
        target=data.get("target"),
        attr=data.get("attr"),
        modifies=tuple(data.get("modifies", ())),
        callee=data.get("callee"),
        arg_index=data.get("arg_index"),
    )


def _stats_from_dict(data: dict):
    from repro.prover.core import ProverStats

    return ProverStats(
        instantiations=data.get("instantiations", 0),
        rounds=data.get("rounds", 0),
        branches=data.get("branches", 0),
        conflicts=data.get("conflicts", 0),
        max_depth=data.get("max_depth", 0),
        unmatchable_quantifiers=data.get("unmatchable_quantifiers", 0),
        per_quantifier=dict(data.get("per_quantifier", {})),
        elapsed=data.get("elapsed", 0.0),
        sat_markers=list(data.get("sat_markers", [])),
        facts=data.get("facts", 0),
        merges=data.get("merges", 0),
        matches=data.get("matches", 0),
        matches_by_quantifier=dict(data.get("matches_by_quantifier", {})),
    )


def payload_to_verdict(payload: dict, impl: ImplDecl, index: int):
    """Rehydrate a cached payload into an :class:`ImplVerdict`."""
    from repro.vcgen.checker import ImplStatus, ImplVerdict

    status = next(
        s for s in ImplStatus if s.value == payload["status"]
    )
    failed = payload.get("failed_obligation")
    return ImplVerdict(
        impl=impl,
        index=index,
        status=status,
        stats=_stats_from_dict(payload.get("stats", {})),
        failed_obligation=(
            _obligation_from_dict(failed) if failed is not None else None
        ),
    )


@dataclass
class ResultCache:
    """A directory of checksummed per-verdict entries.

    ``hits``/``misses``/``stores`` count this process's traffic;
    ``rejections`` records every entry that failed validation as
    ``(key, reason)`` pairs — the driver turns them into ``OL903``
    warnings so a flaky disk never silently flips a verdict.

    ``max_bytes``, when set, bounds the on-disk size: after every store
    the least-recently-*used* entries (by mtime — hits touch the file)
    are evicted until the directory fits. Eviction only ever removes
    entries, never ``summary.json`` or in-flight temp files, and an
    evicted entry simply misses on the next run — verdicts are always
    recomputable.
    """

    directory: str
    max_bytes: Optional[int] = None
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    rejections: List[Tuple[str, str]] = field(default_factory=list)

    def __post_init__(self):
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def load(self, key: str) -> Optional[dict]:
        """The validated payload for ``key``, or None (miss/rejected)."""
        path = self._path(key)
        entry, error = self.read_entry(key)
        if entry is None:
            if error is None:
                self.misses += 1
                obs_events.emit("cache-miss", key=_event_key(key))
            else:
                self._reject(key, error)
            return None
        verdict, reason = validate_entry(entry, key)
        if verdict is None:
            self._reject(key, reason or "entry rejected")
            return None
        self.hits += 1
        try:
            # Entry size approximates the prover work the hit avoided;
            # the journal analytics sum it as "bytes saved".
            size = os.path.getsize(path)
        except OSError:
            size = None
        obs_events.emit("cache-hit", key=_event_key(key), bytes=size)
        try:
            os.utime(path)  # refresh recency so LRU eviction spares it
        except OSError:
            pass
        return verdict

    def read_entry(self, key: str) -> Tuple[Optional[dict], Optional[str]]:
        """The raw (unvalidated) entry for ``key``.

        Returns ``(entry, None)``, ``(None, None)`` for a clean miss, or
        ``(None, reason)`` when the file exists but cannot be read. Used
        by the cache server, which serves raw entries and leaves final
        validation to the client.
        """
        try:
            with open(self._path(key)) as handle:
                return json.load(handle), None
        except FileNotFoundError:
            return None, None
        except (OSError, ValueError) as error:
            return None, f"unreadable entry: {error}"

    def _reject(self, key: str, reason: str) -> None:
        self.misses += 1
        self.rejections.append((key, reason))
        obs_events.emit(
            "cache-reject", key=_event_key(key), reason=reason, code="OL903"
        )

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def store(self, key: str, verdict_payload: dict, *, impl: str, index: int) -> bool:
        """Atomically publish one verdict; False if the write failed.

        Write failures are deliberately non-fatal (the run still has its
        in-memory verdict); they are recorded as rejections so the CLI
        can warn about a read-only or full cache directory.
        """
        payload = {
            "format": CACHE_FORMAT,
            "code_version": code_version(),
            "key": key,
            "impl": impl,
            "index": index,
            "verdict": verdict_payload,
        }
        entry = {"checksum": _checksum(payload), "payload": payload}
        try:
            fd, temp_path = tempfile.mkstemp(
                prefix=f".{key[:16]}-", suffix=".tmp", dir=self.directory
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(entry, handle)
                os.replace(temp_path, self._path(key))
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError as error:
            self.rejections.append((key, f"cache write failed: {error}"))
            obs_events.emit(
                "cache-reject",
                key=_event_key(key),
                reason=f"cache write failed: {error}",
                code="OL903",
            )
            return False
        self.stores += 1
        obs_events.emit("cache-store", key=_event_key(key))
        if self.max_bytes is not None:
            self._evict_to_budget()
        return True

    def _evict_to_budget(self) -> None:
        """Drop least-recently-used entries until the directory fits.

        Best-effort by design: a concurrently-deleted file is simply
        skipped (another process may be evicting too), and entries are
        always recomputable, so racing readers at worst re-prove.
        """
        entries = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if not name.endswith(".json") or name == "summary.json":
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in entries)
        budget = self.max_bytes or 0
        for _, size, path in sorted(entries):
            if total <= budget:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.evictions += 1
            obs_events.emit(
                "cache-evict",
                key=_event_key(os.path.basename(path)[: -len(".json")]),
                bytes=size,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def summary(self) -> dict:
        summary = {
            "directory": self.directory,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "rejections": len(self.rejections),
        }
        if self.max_bytes is not None:
            summary["max_bytes"] = self.max_bytes
            summary["evictions"] = self.evictions
        return summary
