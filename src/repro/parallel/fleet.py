"""Distributed fleet checking: a socket worker pool with leased jobs.

This generalizes the fork-pipe supervisor to a coordinator/worker
topology over the framed socket transport (:mod:`repro.parallel.transport`):

* the **coordinator** (the checking process) binds a listening socket
  and holds the job book — the same declaration-ordered
  :class:`~repro.parallel.jobs.Job` list the local supervisor uses;
* **workers** dial in, register, and *steal* work: an idle worker asks
  for a job, the coordinator leases it one. ``--fleet N`` spawns N local
  worker processes against an ephemeral loopback port (a hermetic
  multi-process fleet); ``--fleet HOST:PORT`` binds there and waits for
  external workers started with ``oolong-check workers serve HOST:PORT``
  (the scope ships to them inside the welcome message, so remote
  workers need no source files).

Soundness under an unreliable fleet rests on **leases**: every
assignment carries a deadline the worker must keep renewing (its
heartbeat). A worker that dies, partitions, or just goes quiet lets its
lease expire; the coordinator reclaims the job and reassigns it with
exponential backoff + deterministic jitter, and after ``max_retries``
reclaims the job is quarantined as ``OL902`` with exactly the local
supervisor's wording. Verdicts are merged in job order, so a fleet
report is byte-identical to a serial one modulo timing/worker fields —
regardless of worker count, membership churn, or which frames the
network ate.

Degradation, not failure: if the fleet cannot be assembled
(:class:`FleetUnavailable`) or collapses mid-run, the checker falls back
to the local supervisor with an ``OL904`` warning; a fleet outage never
costs a verdict.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import socket
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.obs import events as obs_events
from repro.oolong.program import Scope
from repro.parallel.cache import (
    cache_key,
    payload_to_verdict,
    verdict_to_payload,
)
from repro.parallel.jobs import (
    Job,
    backoff_delay,
    build_jobs,
    deadline_verdict,
    hard_timeout_verdict,
    quarantine_verdict,
)
from repro.obs.httpd import TelemetryHTTPServer
from repro.obs.metrics import MetricsRegistry
from repro.parallel.transport import (
    ConnectionClosed,
    FramedSocket,
    FrameError,
    FramePolicy,
    ReadTimeout,
    StatusServer,
    TransportError,
    clock_offset,
    clock_sample,
    close_listener,
    connect,
    parse_address,
    serve,
)
from repro.parallel.worker import JobRequest, JobResult, run_job
from repro.prover.core import Limits
from repro.testing.faults import (
    record_supervisor_fault,
    supervisor_fault_hits,
)

PROTOCOL = "oolong-fleet-1"


class FleetUnavailable(Exception):
    """The fleet could not be assembled (bind/spawn/registration failed)."""


@dataclass(frozen=True)
class FleetOptions:
    """Coordination policy for one fleet ``check_scope`` run."""

    #: Local worker processes to spawn (0 = external workers only).
    workers: int = 2
    #: Where the coordinator listens; port 0 picks an ephemeral port.
    address: Tuple[str, int] = ("127.0.0.1", 0)
    #: Shared secret echoed in every hello; keeps unrelated fleets from
    #: cross-talking on a shared host (not an authentication scheme).
    token: Optional[str] = None
    #: Hard wall-clock budget per job attempt (OL901 on overrun).
    job_timeout: Optional[float] = None
    #: Lease reclaims per job before OL902 quarantine.
    max_retries: int = 2
    #: Retry backoff base + jitter, as in the local supervisor.
    backoff_base: float = 0.05
    backoff_jitter: float = 0.5
    #: A lease not renewed for this long is reclaimed (the fleet's
    #: heartbeat-timeout analogue).
    lease_duration: float = 1.0
    #: How often a busy worker renews its lease.
    renew_interval: float = 0.2
    #: How long to wait for the first worker to register before giving
    #: the fleet up as unavailable.
    registration_wait: float = 5.0
    #: With live jobs but zero workers, how long to wait for (re)joins
    #: before degrading to the local supervisor.
    stall_timeout: float = 10.0
    #: Scheduling-loop tick.
    poll_interval: float = 0.05
    #: Local worker processes re-spawned after deaths before the
    #: coordinator stops replacing them.
    respawn_budget: int = 8
    #: ``multiprocessing`` start method for local workers.
    start_method: Optional[str] = None

    def resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else "spawn"

    @classmethod
    def from_spec(
        cls, spec: Union[int, str, "FleetOptions"], **overrides
    ) -> "FleetOptions":
        """Build options from the CLI/API ``--fleet`` value.

        An integer (or digit string) means "spawn that many local socket
        workers"; ``HOST:PORT`` means "bind there and use externally
        started workers".
        """
        if isinstance(spec, FleetOptions):
            return replace(spec, **overrides) if overrides else spec
        if isinstance(spec, bool):  # bool is an int; reject it explicitly
            raise ValueError("--fleet expects a worker count or HOST:PORT")
        if isinstance(spec, int) or (isinstance(spec, str) and spec.isdigit()):
            count = int(spec)
            if count <= 0:
                raise ValueError("--fleet worker count must be positive")
            return cls(workers=count, **overrides)
        if isinstance(spec, str):
            address = parse_address(spec)
            overrides.setdefault("workers", 0)
            return cls(address=address, **overrides)
        raise ValueError(f"bad --fleet spec {spec!r}")


@dataclass
class _Lease:
    """One live assignment: a job out at a worker, with deadlines."""

    lease_id: int
    job: Job
    worker: "_Member"
    #: Renewable: pushed forward by every renew message.
    lease_deadline: float
    #: Absolute: the hard job/scope budget; not renewable.
    job_deadline: Optional[float]
    started: float


class _Member:
    """Coordinator-side view of one registered worker."""

    def __init__(
        self,
        ordinal: int,
        channel: FramedSocket,
        kind: str,
        pid: Optional[int],
        clock_offset: float = 0.0,
    ):
        self.ordinal = ordinal
        self.channel = channel
        self.kind = kind  # "local" or "remote"
        self.pid = pid
        #: Seconds to add to this worker's perf_counter timestamps to
        #: land them in the coordinator's clock domain (see
        #: ``transport.clock_offset``); 0.0 for same-host members.
        self.clock_offset = clock_offset
        self.name = f"{kind}-{ordinal}"
        self.alive = True
        self.partitioned = False
        self.churn_after_result = False
        self.jobs_completed = 0

    def send(self, message) -> bool:
        """Best-effort send; a dead wire just marks the member gone."""
        if not self.alive:
            return False
        try:
            return self.channel.send(message)
        except TransportError:
            self.alive = False
            return False


@dataclass
class FleetOutcome:
    """What the coordinator hands back to the checker driver."""

    #: Jobs in declaration order. If ``degraded`` is set some may lack
    #: verdicts — the caller reruns those on the local supervisor.
    jobs: List[Job]
    #: Lease/steal/requeue counters and membership tallies.
    summary: Dict[str, int] = field(default_factory=dict)
    #: Why the fleet collapsed mid-run, or None on a clean finish.
    degraded: Optional[str] = None
    cache: Optional[object] = None


class FleetCoordinator:
    """Owns the job book, the leases, and the member registry."""

    def __init__(
        self,
        scope: Scope,
        limits: Optional[Limits],
        *,
        options: FleetOptions,
        explain: bool = False,
        cache=None,
        scope_deadline: Optional[float] = None,
        preresolved: Optional[Dict[Tuple[str, int], object]] = None,
    ):
        self.scope = scope
        self.options = options
        self.explain = explain
        self.cache = cache if not explain else None
        self.scope_deadline = scope_deadline
        self.preresolved = dict(preresolved or {})
        self.job_limits = (
            replace(limits, scope_time_budget=None, scope_deadline=None)
            if limits is not None
            else None
        )
        self.jobs = build_jobs(scope)
        self.members: Dict[int, _Member] = {}
        self.leases: Dict[int, _Lease] = {}
        self._next_lease_id = 0
        self._next_ordinal = 0
        self._events: "queue.Queue" = queue.Queue()
        self._queue: List[Job] = []
        self._ordinal_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._local_procs: List[multiprocessing.Process] = []
        self._respawns = 0
        self._policy = FramePolicy()
        self._partition_faults = supervisor_fault_hits("partition-worker")
        self._churn_faults = supervisor_fault_hits("worker-churn")
        self._kill_faults = supervisor_fault_hits("worker-kill")
        self._hang_faults = supervisor_fault_hits("worker-hang")
        self._corrupt_faults = supervisor_fault_hits("cache-corrupt")
        self.counters: Dict[str, int] = {
            "fleet.registrations": 0,
            "fleet.deregistrations": 0,
            "fleet.steals": 0,
            "fleet.leases": 0,
            "fleet.renewals": 0,
            "fleet.lease_expiries": 0,
            "fleet.requeues": 0,
            "fleet.quarantines": 0,
            "fleet.stale_results": 0,
            "fleet.partitions": 0,
            "fleet.churn": 0,
            "fleet.frames_rejected": 0,
            "fleet.respawns": 0,
        }

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Bind, spawn local workers, and wait for the first registration.

        Raises :class:`FleetUnavailable` if no worker ever arrives — the
        caller degrades to the local supervisor *before* any cache read
        or lease, so nothing is half-done.
        """
        try:
            self._listener = serve(self.options.address)
        except TransportError as exc:
            raise FleetUnavailable(str(exc)) from exc
        host, port = self.bound_address
        obs_events.emit(
            "server-start",
            kind="coordinator",
            address=f"{host}:{port}",
            pid=os.getpid(),
        )
        accept = threading.Thread(
            target=self._accept_loop, name="fleet-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        try:
            self._spawn_local_workers(self.options.workers)
        except BaseException:
            self.shutdown()
            raise
        deadline = time.monotonic() + self.options.registration_wait
        while not self.members:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                host, port = self.bound_address
                self.shutdown()
                raise FleetUnavailable(
                    "no worker registered within "
                    f"{self.options.registration_wait:.3g}s at {host}:{port}"
                )
            try:
                event = self._events.get(timeout=min(remaining, 0.1))
            except queue.Empty:
                continue
            self._handle_event(event, [])

    @property
    def bound_address(self) -> Tuple[str, int]:
        assert self._listener is not None
        return self._listener.getsockname()[:2]

    def _spawn_local_workers(self, count: int) -> None:
        context = multiprocessing.get_context(
            self.options.resolved_start_method()
        )
        address = self.bound_address
        for _ in range(count):
            process = context.Process(
                target=fleet_worker_main,
                args=(address,),
                kwargs={
                    "token": self.options.token,
                    "parent_pid": os.getpid(),
                    "renew_interval": self.options.renew_interval,
                },
                name=f"oolong-fleet-worker-{len(self._local_procs)}",
                daemon=True,
            )
            process.start()
            self._local_procs.append(process)
            obs_events.emit("worker-spawn", pid=process.pid, kind="local")

    # ------------------------------------------------------------------
    # Connection handling (threads feeding the event queue)
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            channel = FramedSocket(sock, policy=self._policy)
            thread = threading.Thread(
                target=self._register_and_read,
                args=(channel,),
                name="fleet-reader",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _register_and_read(self, channel: FramedSocket) -> None:
        try:
            hello = channel.recv(timeout=5.0)
        except TransportError:
            channel.close()
            return
        if (
            not isinstance(hello, tuple)
            or len(hello) not in (4, 5)
            or hello[0] != "hello"
            or hello[1] != PROTOCOL
        ):
            try:
                channel.send(("reject", "bad hello"))
            except TransportError:
                pass
            channel.close()
            return
        if self.options.token is not None and hello[2] != self.options.token:
            try:
                channel.send(("reject", "bad token"))
            except TransportError:
                pass
            channel.close()
            return
        pid = hello[3] if isinstance(hello[3], int) else None
        local_pids = {p.pid for p in self._local_procs}
        kind = "local" if pid in local_pids else "remote"
        # A 5-tuple hello carries the worker's (wall, perf) clock sample
        # so shipped span shards can be rebased onto our clock. Local
        # fork workers share our perf_counter domain already — keep
        # their offset at an exact 0.0 rather than an estimated ~0.
        offset = 0.0
        if kind == "remote" and len(hello) == 5:
            sample = hello[4]
            if (
                isinstance(sample, tuple)
                and len(sample) == 2
                and all(isinstance(v, (int, float)) for v in sample)
            ):
                offset = clock_offset(sample)
        member = _Member(
            self._bump_ordinal(),
            channel,
            kind=kind,
            pid=pid,
            clock_offset=offset,
        )
        if member.ordinal in self._partition_faults:
            member.partitioned = True
        if member.ordinal in self._churn_faults:
            member.churn_after_result = True
        welcome = (
            "welcome",
            member.name,
            self.scope,
            self.job_limits,
            self.explain,
        )
        if not member.send(welcome):
            channel.close()
            return
        self._events.put(("register", member))
        while not self._stop.is_set():
            try:
                message = channel.recv(timeout=0.5)
            except ReadTimeout:
                continue
            except FrameError:
                self._events.put(("frame-rejected", member))
                continue
            except ConnectionClosed:
                break
            self._events.put(("message", member, message))
        self._events.put(("gone", member))

    def _bump_ordinal(self) -> int:
        with self._ordinal_lock:
            ordinal = self._next_ordinal
            self._next_ordinal += 1
        return ordinal

    # ------------------------------------------------------------------
    # The scheduling loop
    # ------------------------------------------------------------------

    def run(self) -> FleetOutcome:
        from repro import obs

        with obs.span(
            "fleet",
            obs.CAT_PIPELINE,
            jobs=len(self.jobs),
            workers=self.options.workers or len(self.members),
        ):
            tracer = obs.current()
            parent_span = tracer.current_index() if tracer is not None else None
            try:
                outcome = self._run_inner(tracer, parent_span)
            finally:
                self.shutdown()
            if tracer is not None:
                for name, value in self.counters.items():
                    if value:
                        tracer.metrics.inc(name, value)
            outcome.summary = dict(self.counters)
            return outcome

    def _run_inner(self, tracer, parent_span) -> FleetOutcome:
        self._apply_preresolved(tracer, parent_span)
        self._serve_from_cache(tracer, parent_span)
        pending = [job for job in self.jobs if not job.done]
        degraded = None
        if pending:
            degraded = self._schedule(pending, tracer, parent_span)
        return FleetOutcome(
            jobs=self.jobs, degraded=degraded, cache=self.cache
        )

    def _apply_preresolved(self, tracer, parent_span) -> None:
        for job in self.jobs:
            verdict = self.preresolved.get((job.proc_name, job.impl_index))
            if verdict is None:
                continue
            job.verdict = verdict
            obs_events.emit_impl_checked(verdict, preresolved=True)
            if tracer is not None:
                now = time.perf_counter()
                tracer.record(
                    job.impl.name,
                    "implementation",
                    now,
                    now,
                    parent=parent_span,
                    args={
                        "discharged": True,
                        "status": job.verdict.status.name.lower(),
                    },
                )

    def _serve_from_cache(self, tracer, parent_span) -> None:
        if self.cache is None:
            return
        for job in self.jobs:
            if job.done:
                continue
            job.key = cache_key(
                self.scope, job.impl, job.impl_index, self.job_limits
            )
            payload = self.cache.load(job.key)
            if payload is None:
                continue
            job.verdict = payload_to_verdict(payload, job.impl, job.impl_index)
            job.cache_hit = True
            obs_events.emit_impl_checked(job.verdict, cache_hit=True)
            if tracer is not None:
                now = time.perf_counter()
                tracer.record(
                    job.impl.name,
                    "implementation",
                    now,
                    now,
                    parent=parent_span,
                    args={
                        "cache_hit": True,
                        "status": job.verdict.status.name.lower(),
                    },
                )

    def _schedule(self, pending: List[Job], tracer, parent_span):
        """Lease jobs to stealing workers until the book closes.

        Returns None on a clean finish, or a degradation reason when the
        fleet collapsed with jobs still open.
        """
        self._queue: List[Job] = list(pending)
        stalled_since: Optional[float] = None
        while self._open_jobs():
            now = time.monotonic()
            if self.scope_deadline is not None and now >= self.scope_deadline:
                self._cancel_everything()
                return None
            self._police_leases(now)
            self._reap_local_workers()
            live = [m for m in self.members.values() if m.alive]
            if not live and not self.leases:
                if stalled_since is None:
                    stalled_since = now
                elif now - stalled_since > self.options.stall_timeout:
                    return (
                        "fleet collapsed: no live workers for "
                        f"{self.options.stall_timeout:.3g}s with "
                        f"{sum(1 for j in self.jobs if not j.done)} job(s) open"
                    )
            else:
                stalled_since = None
            try:
                event = self._events.get(timeout=self._tick(now))
            except queue.Empty:
                continue
            self._handle_event(event, (tracer, parent_span))
        return None

    def _open_jobs(self) -> bool:
        return any(not job.done for job in self.jobs)

    def _tick(self, now: float) -> float:
        timeout = self.options.poll_interval
        if self.scope_deadline is not None:
            timeout = min(timeout, max(self.scope_deadline - now, 0.0))
        for lease in self.leases.values():
            timeout = min(timeout, max(lease.lease_deadline - now, 0.0))
            if lease.job_deadline is not None:
                timeout = min(timeout, max(lease.job_deadline - now, 0.0))
        for job in getattr(self, "_queue", ()):
            if job.eligible_at > now:
                timeout = min(timeout, job.eligible_at - now)
        return max(timeout, 0.001)

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------

    def _handle_event(self, event, trace_ctx) -> None:
        kind = event[0]
        if kind == "register":
            member = event[1]
            self.members[member.ordinal] = member
            self.counters["fleet.registrations"] += 1
            obs_events.emit(
                "worker-registered",
                worker=member.name,
                pid=member.pid,
                kind=member.kind,
                offset=(
                    round(member.clock_offset, 6)
                    if member.clock_offset
                    else None
                ),
            )
            return
        if kind == "gone":
            self._member_gone(event[1], "connection lost")
            return
        if kind == "frame-rejected":
            self.counters["fleet.frames_rejected"] += 1
            obs_events.emit("frame-rejected", worker=event[1].name)
            # A corrupt inbound frame may have been this member's result
            # or renewal; the lease machinery will recover it. Nothing
            # else to do — the stream survived.
            return
        if kind == "message":
            member, message = event[1], event[2]
            if member.partitioned and self._member_holds_lease(member):
                # The partition eats the worker's traffic mid-job: drop
                # the message and sever, forcing lease reclamation.
                self.counters["fleet.partitions"] += 1
                record_supervisor_fault(
                    "partition-worker", member.ordinal, "raise"
                )
                obs_events.emit("worker-partition", worker=member.name)
                member.partitioned = False  # one-shot per plan hit
                self._member_gone(member, "partitioned mid-job")
                return
            self._handle_message(member, message, trace_ctx)

    def _member_holds_lease(self, member: _Member) -> bool:
        return any(l.worker is member for l in self.leases.values())

    def _handle_message(self, member: _Member, message, trace_ctx) -> None:
        if not isinstance(message, tuple) or not message:
            return
        kind = message[0]
        if kind == "steal":
            self.counters["fleet.steals"] += 1
            # A stealing worker is idle, so any lease it still holds was
            # never delivered (dropped or corrupted on the wire) or its
            # result was lost: reclaim immediately rather than waiting
            # for the lease clock.
            for lease_id in list(self.leases):
                lease = self.leases[lease_id]
                if lease.worker is member:
                    del self.leases[lease_id]
                    self._lease_failed(
                        lease, "worker stole again; lease frame lost"
                    )
            self._lease_to(member)
        elif kind == "renew" and len(message) == 2:
            lease = self.leases.get(message[1])
            if lease is not None and lease.worker is member:
                self.counters["fleet.renewals"] += 1
                lease.lease_deadline = (
                    time.monotonic() + self.options.lease_duration
                )
                obs_events.emit(
                    "lease-renewed",
                    lease=lease.lease_id,
                    job=lease.job.job_id,
                    worker=member.name,
                )
        elif kind == "result" and len(message) == 3:
            self._handle_result(member, message[1], message[2], trace_ctx)
        elif kind == "bye":
            self._member_gone(member, "worker said goodbye")

    def _lease_to(self, member: _Member) -> None:
        if not member.alive:
            return
        now = time.monotonic()
        job = self._next_eligible(now)
        if job is None:
            delay = self.options.poll_interval
            for queued in self._queue:
                if queued.eligible_at > now:
                    delay = min(delay, queued.eligible_at - now)
            member.send(("nowork", max(delay, 0.01)))
            return
        inject = None
        if job.attempts == 0:
            if job.job_id in self._kill_faults:
                inject = "kill"
                record_supervisor_fault("worker-kill", job.job_id, "raise")
            elif job.job_id in self._hang_faults:
                inject = "hang"
                record_supervisor_fault("worker-hang", job.job_id, "raise")
        lease_id = self._next_lease_id
        self._next_lease_id += 1
        request = JobRequest(
            job_id=job.job_id,
            proc_name=job.proc_name,
            impl_index=job.impl_index,
            attempt=job.attempts,
            limits=None,  # the worker got job_limits in its welcome
            explain=self.explain,
            inject=inject,
        )
        job_deadline = None
        if self.options.job_timeout is not None:
            job_deadline = now + self.options.job_timeout
        if self.scope_deadline is not None:
            job_deadline = (
                self.scope_deadline
                if job_deadline is None
                else min(job_deadline, self.scope_deadline)
            )
        lease = _Lease(
            lease_id=lease_id,
            job=job,
            worker=member,
            lease_deadline=now + self.options.lease_duration,
            job_deadline=job_deadline,
            started=now,
        )
        if not member.send(("lease", lease_id, request)):
            # The lease frame was dropped (fault) or the wire is dead.
            # The job was never delivered: requeue it immediately, and
            # let the lease machinery catch the member if it is gone.
            self._queue.append(job)
            return
        self.leases[lease_id] = lease
        self.counters["fleet.leases"] += 1
        obs_events.emit(
            "lease-granted",
            lease=lease_id,
            job=job.job_id,
            impl=job.impl.name,
            index=job.impl_index,
            worker=member.name,
            attempt=job.attempts,
        )

    def _next_eligible(self, now: float) -> Optional[Job]:
        for index, job in enumerate(self._queue):
            if job.eligible_at <= now and not job.done:
                return self._queue.pop(index)
        return None

    def _handle_result(
        self, member: _Member, lease_id: int, result: JobResult, trace_ctx
    ) -> None:
        lease = self.leases.pop(lease_id, None)
        if lease is None or lease.job.done:
            self.counters["fleet.stale_results"] += 1
            return
        job = lease.job
        self._finish_job(lease, job, result, trace_ctx)
        member.jobs_completed += 1
        if member.churn_after_result:
            member.churn_after_result = False
            self.counters["fleet.churn"] += 1
            record_supervisor_fault("worker-churn", member.ordinal, "raise")
            obs_events.emit("worker-churn", worker=member.name)
            member.send(("shutdown",))
            self._member_gone(member, "churned after first result")

    def _finish_job(self, lease: _Lease, job: Job, result: JobResult, trace_ctx) -> None:
        from repro.analysis.diagnostics import Diagnostic
        from repro.prover.core import ProverStats
        from repro.vcgen.checker import ImplStatus, ImplVerdict

        if result.failure is not None:
            job.verdict = ImplVerdict(
                impl=job.impl,
                index=job.impl_index,
                status=ImplStatus.INTERNAL_ERROR,
                stats=ProverStats(),
                error=Diagnostic(
                    code="OL900",
                    message=(
                        "worker job failed internally: "
                        + result.failure.strip().splitlines()[-1]
                    ),
                    impl=job.impl.name,
                ),
            )
        else:
            verdict = result.verdict
            # Re-anchor the pickled copy on the coordinator's own AST
            # object so report identities match the serial driver's.
            verdict.impl = job.impl
            job.verdict = verdict
            job.explain_crash = result.explain_crash
            self._store_in_cache(job)
        tracer, parent_span = trace_ctx if trace_ctx else (None, None)
        if tracer is not None:
            job_span = tracer.record(
                job.impl.name,
                "implementation",
                lease.started,
                time.perf_counter(),
                parent=parent_span,
                args={
                    "worker": lease.worker.name,
                    "attempt": result.attempt,
                    "cache_hit": False,
                    "status": job.verdict.status.name.lower(),
                },
            )
            if result.spans:
                tracer.absorb(
                    result.spans,
                    parent=job_span,
                    offset=lease.worker.clock_offset,
                )
            if result.metrics:
                tracer.metrics.merge_dict(result.metrics)
        obs_events.emit_impl_checked(
            job.verdict,
            worker=lease.worker.name,
            attempt=result.attempt,
            lease=lease.lease_id,
        )

    def _store_in_cache(self, job: Job) -> None:
        if self.cache is None or job.key is None:
            return
        payload = verdict_to_payload(job.verdict)
        if payload is None:
            return
        stored = self.cache.store(
            job.key, payload, impl=job.impl.name, index=job.impl_index
        )
        if stored and job.job_id in self._corrupt_faults:
            directory = getattr(self.cache, "directory", "")
            path = os.path.join(directory, f"{job.key}.json")
            try:
                with open(path, "r+") as handle:
                    handle.seek(max(os.path.getsize(path) // 2, 1))
                    handle.write("\x00GARBAGE\x00")
                record_supervisor_fault("cache-corrupt", job.job_id, "corrupt")
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Leases, membership, deadlines
    # ------------------------------------------------------------------

    def _police_leases(self, now: float) -> None:
        for lease_id in list(self.leases):
            lease = self.leases.get(lease_id)
            if lease is None:
                continue
            if lease.job_deadline is not None and now >= lease.job_deadline:
                self._hard_timeout(lease)
                continue
            if not lease.worker.alive or now >= lease.lease_deadline:
                expired = now >= lease.lease_deadline
                if expired:
                    self.counters["fleet.lease_expiries"] += 1
                    obs_events.emit(
                        "lease-expired",
                        lease=lease.lease_id,
                        job=lease.job.job_id,
                        worker=lease.worker.name,
                    )
                del self.leases[lease_id]
                worker = lease.worker
                self._lease_failed(
                    lease,
                    "lease expired (worker silent)"
                    if worker.alive
                    else "connection lost",
                )
                if worker.alive and expired:
                    # A silent worker is presumed wedged or partitioned:
                    # sever it (and SIGKILL its process if it is one of
                    # ours, so the respawn path restores capacity). A
                    # healthy-but-slow worker renews; it never gets here.
                    self._member_gone(worker, "severed after lease expiry")

    def _hard_timeout(self, lease: _Lease) -> None:
        self.leases.pop(lease.lease_id, None)
        job = lease.job
        budget = self.options.job_timeout
        detail = (
            f"hard job timeout ({budget:.3g}s) exceeded"
            if budget is not None
            else "scope time budget exhausted"
        )
        job.verdict = hard_timeout_verdict(
            job,
            f"{detail} while this implementation was being "
            f"checked; worker {lease.worker.name} killed",
        )
        obs_events.emit(
            "job-hard-timeout",
            job=job.job_id,
            impl=job.impl.name,
            index=job.impl_index,
            lease=lease.lease_id,
            worker=lease.worker.name,
            code="OL901",
        )
        obs_events.emit_impl_checked(job.verdict)
        # The worker may be wedged on this job; sever it so a fresh one
        # (respawned locally, or an external rejoin) takes its place.
        self._member_gone(lease.worker, "killed after hard timeout")

    def _lease_failed(self, lease: _Lease, reason: str) -> None:
        job = lease.job
        if job.done:
            return
        obs_events.emit(
            "lease-reclaimed",
            lease=lease.lease_id,
            job=job.job_id,
            worker=lease.worker.name,
            reason=reason,
        )
        job.attempts += 1
        job.death_reasons.append(reason)
        if job.attempts > self.options.max_retries:
            self.counters["fleet.quarantines"] += 1
            job.verdict = quarantine_verdict(job)
            obs_events.emit(
                "job-quarantined",
                job=job.job_id,
                impl=job.impl.name,
                index=job.impl_index,
                attempt=job.attempts,
                code="OL902",
            )
            obs_events.emit_impl_checked(job.verdict)
            return
        backoff = backoff_delay(
            self.options.backoff_base,
            job.attempts,
            jitter=self.options.backoff_jitter,
            token=f"job{job.job_id}",
        )
        job.eligible_at = time.monotonic() + backoff
        self.counters["fleet.requeues"] += 1
        self._queue.append(job)
        obs_events.emit(
            "job-retry",
            job=job.job_id,
            impl=job.impl.name,
            index=job.impl_index,
            attempt=job.attempts,
            backoff=round(backoff, 6),
            reason=reason,
        )

    def _member_gone(self, member: _Member, reason: str) -> None:
        if self.members.pop(member.ordinal, None) is not None:
            self.counters["fleet.deregistrations"] += 1
            obs_events.emit(
                "worker-deregistered", worker=member.name, reason=reason
            )
        member.alive = False
        member.channel.close()
        if member.kind == "local":
            # A severed local worker that is merely partitioned will
            # reconnect on its own; a wedged one never will. SIGKILL is
            # the only safe disposition either way — the respawn path
            # restores the capacity.
            for process in self._local_procs:
                if process.pid == member.pid and process.is_alive():
                    try:
                        process.kill()
                    except (OSError, ValueError):
                        pass
        for lease_id in list(self.leases):
            lease = self.leases[lease_id]
            if lease.worker is member:
                del self.leases[lease_id]
                self._lease_failed(lease, reason)

    def _reap_local_workers(self) -> None:
        if not self._local_procs:
            return
        live = [p for p in self._local_procs if p.is_alive()]
        dead = len(self._local_procs) - len(live)
        self._local_procs = live
        want = self.options.workers - len(live)
        if dead == 0 or want <= 0:
            return
        spawn = min(want, max(self.options.respawn_budget - self._respawns, 0))
        if spawn > 0:
            self._respawns += spawn
            self.counters["fleet.respawns"] += spawn
            obs_events.emit("worker-respawn", count=spawn)
            self._spawn_local_workers(spawn)

    def _cancel_everything(self) -> None:
        for lease in list(self.leases.values()):
            if not lease.job.done:
                lease.job.verdict = deadline_verdict(lease.job, before=False)
                obs_events.emit(
                    "job-deadline",
                    job=lease.job.job_id,
                    impl=lease.job.impl.name,
                    index=lease.job.impl_index,
                    code="OL901",
                )
                obs_events.emit_impl_checked(lease.job.verdict)
        self.leases.clear()
        for job in self.jobs:
            if not job.done:
                job.verdict = deadline_verdict(job, before=True)
                obs_events.emit(
                    "job-deadline",
                    job=job.job_id,
                    impl=job.impl.name,
                    index=job.impl_index,
                    code="OL901",
                )
                obs_events.emit_impl_checked(job.verdict)
        self._queue = []

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        if not self._stop.is_set():
            obs_events.emit("server-stop", kind="coordinator", pid=os.getpid())
        self._stop.set()
        for member in list(self.members.values()):
            member.send(("shutdown",))
            member.channel.close()
        self.members.clear()
        if self._listener is not None:
            close_listener(self._listener)
        for process in self._local_procs:
            process.join(timeout=1.0)
            if process.is_alive():
                try:
                    process.kill()
                except (OSError, ValueError):
                    pass
                process.join(timeout=5.0)
        self._local_procs = []
        for thread in self._threads:
            thread.join(timeout=1.0)
        self._threads = []


# ----------------------------------------------------------------------
# The socket worker
# ----------------------------------------------------------------------


def fleet_worker_main(
    address: Tuple[str, int],
    *,
    token: Optional[str] = None,
    parent_pid: Optional[int] = None,
    renew_interval: float = 0.2,
    reconnect_attempts: int = 5,
    reconnect_delay: float = 0.2,
    io_timeout: float = 30.0,
    jobs_served=None,
    drain=None,
) -> None:
    """One socket worker: dial the coordinator, steal, prove, repeat.

    Runs until the coordinator says ``shutdown``, the reconnect budget
    runs out, the ``drain`` event is set (a pool-owned
    ``multiprocessing.Event``: finish the in-flight job, then exit
    instead of stealing another), or — for locally spawned workers —
    the parent process disappears (the same ``getppid`` orphan watchdog
    the pipe workers use, so a SIGKILLed coordinator never leaves
    orphans).
    """
    import signal

    from repro.obs import events as events_module
    from repro.obs import tracer as tracer_module
    from repro.testing import faults as faults_module

    # A forked child inherits the parent's ambient tracer, event journal
    # and fault plan; all are coordinator-side concerns here (fleet
    # faults are interpreted at the coordinator, frame faults on its
    # policy, and the journal records the coordinator's view).
    tracer_module._ACTIVE = None
    events_module._ACTIVE = None
    events_module._VERDICT_SINK = None
    faults_module._ACTIVE = None

    # A terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group; the *parent* coordinates shutdown (drain or terminate), so
    # a pool child must not die mid-job with a KeyboardInterrupt
    # traceback of its own.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass  # not the main thread, or an embedded interpreter

    if parent_pid is not None:
        def _watchdog():
            while True:
                if os.getppid() != parent_pid:
                    os._exit(0)
                time.sleep(0.05)

        threading.Thread(target=_watchdog, daemon=True).start()

    attempts_left = reconnect_attempts
    while attempts_left > 0:
        if drain is not None and drain.is_set():
            return
        attempts_left -= 1
        try:
            channel = connect(address, timeout=5.0)
        except TransportError:
            time.sleep(reconnect_delay)
            continue
        outcome = _worker_session(
            channel,
            token,
            renew_interval=renew_interval,
            io_timeout=io_timeout,
            jobs_served=jobs_served,
            drain=drain,
        )
        channel.close()
        if outcome in ("shutdown", "drained"):
            return
        if outcome == "registered":
            # A productive session that later lost its link: reset the
            # budget so a long run survives many transient partitions.
            attempts_left = reconnect_attempts
        time.sleep(reconnect_delay)


def _worker_session(
    channel: FramedSocket,
    token: Optional[str],
    *,
    renew_interval: float,
    io_timeout: float,
    jobs_served=None,
    drain=None,
) -> str:
    """One registration + steal/prove loop; returns why it ended."""
    try:
        channel.send(("hello", PROTOCOL, token, os.getpid(), clock_sample()))
        welcome = channel.recv(timeout=io_timeout)
    except TransportError:
        return "lost"
    if not (
        isinstance(welcome, tuple)
        and len(welcome) == 5
        and welcome[0] == "welcome"
    ):
        return "rejected"
    _, _name, scope, job_limits, explain = welcome
    registered = True
    while True:
        if drain is not None and drain.is_set():
            # Graceful drain: the in-flight job (if any) already
            # finished — stop stealing and say goodbye so the
            # coordinator deregisters us instead of reclaiming a lease.
            try:
                channel.send(("bye",))
            except TransportError:
                pass
            return "drained"
        try:
            channel.send(("steal",))
            # Short reply deadline: if the reply frame was dropped (the
            # drop-frame fault, or a lossy wire) the worker just steals
            # again rather than stalling the whole session on it.
            message = channel.recv(timeout=2.0)
        except FrameError:
            continue  # a damaged frame costs one steal, not the session
        except ReadTimeout:
            continue
        except TransportError:
            return "registered" if registered else "lost"
        if not isinstance(message, tuple) or not message:
            continue
        if message[0] == "shutdown":
            try:
                channel.send(("bye",))
            except TransportError:
                pass
            return "shutdown"
        if message[0] == "nowork":
            time.sleep(message[1] if len(message) > 1 else 0.05)
            continue
        if message[0] != "lease" or len(message) != 3:
            continue
        registered = True
        _, lease_id, request = message
        request = replace(
            request, limits=job_limits, explain=explain or request.explain
        )
        result = _prove_with_renewals(
            scope, request, channel, lease_id, renew_interval
        )
        if result is None:
            continue
        try:
            channel.send(("result", lease_id, result))
        except TransportError:
            return "registered"
        if jobs_served is not None:
            # A shared multiprocessing.Value owned by the WorkerPool: the
            # pool's status endpoint reads the sum across its processes.
            with jobs_served.get_lock():
                jobs_served.value += 1


def _prove_with_renewals(
    scope, request: JobRequest, channel: FramedSocket, lease_id: int,
    renew_interval: float,
):
    """Run one job while a side thread keeps the lease alive."""
    stop_event = threading.Event()

    def _renew():
        while not stop_event.wait(renew_interval):
            try:
                channel.send(("renew", lease_id))
            except TransportError:
                return

    renewer = threading.Thread(target=_renew, daemon=True)
    renewer.start()
    try:
        result = run_job(scope, request, stop_event)
    finally:
        stop_event.set()
        renewer.join(timeout=1.0)
    if result is None:
        return None
    try:
        import pickle

        pickle.dumps(result)
    except Exception as error:
        result = JobResult(
            job_id=request.job_id,
            attempt=request.attempt,
            failure=f"result not transportable: {type(error).__name__}: {error}",
        )
    return result


class WorkerPool:
    """A standing pool of fleet workers dialing one coordinator address.

    Owns ``jobs`` worker processes that keep dialing ``address`` until
    stopped — the pool attaches to successive fleet coordinator runs at
    that address. A shared counter tallies jobs served across the
    processes, and an optional :class:`StatusServer` (``--status``)
    answers live status queries: worker liveness, jobs served, uptime,
    and a metrics payload renderable as Prometheus text client-side.
    An optional :class:`~repro.obs.httpd.TelemetryHTTPServer`
    (``--http``) exposes the same payload to plain HTTP scrapers.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        jobs: int = 2,
        token: Optional[str] = None,
        status_address: Optional[Tuple[str, int]] = None,
        http_address: Optional[Tuple[str, int]] = None,
    ):
        self.address = address
        self.jobs = jobs
        self.token = token
        self.started = time.time()
        self._context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        # Unsigned long, lock-protected: workers increment it after each
        # successfully delivered result (see ``_worker_session``).
        self._jobs_served = self._context.Value("L", 0)
        # Set by drain(): workers finish their in-flight job, then exit
        # instead of stealing another.
        self._drain = self._context.Event()
        self._procs: List = []
        self._status_server: Optional[StatusServer] = None
        if status_address is not None:
            self._status_server = StatusServer(
                status_address, self.status, token=token
            )
        self._http_server: Optional[TelemetryHTTPServer] = None
        if http_address is not None:
            self._http_server = TelemetryHTTPServer(http_address, self.status)

    @property
    def coordinator_url(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"

    @property
    def status_url(self) -> Optional[str]:
        if self._status_server is None:
            return None
        host, port = self._status_server.address
        return f"{host}:{port}"

    @property
    def http_url(self) -> Optional[str]:
        if self._http_server is None:
            return None
        return self._http_server.url

    def start(self) -> "WorkerPool":
        for index in range(self.jobs):
            process = self._context.Process(
                target=fleet_worker_main,
                args=(self.address,),
                kwargs={
                    "token": self.token,
                    "parent_pid": os.getpid(),
                    "reconnect_attempts": 1_000_000_000,
                    "reconnect_delay": 1.0,
                    "jobs_served": self._jobs_served,
                    "drain": self._drain,
                },
                name=f"oolong-fleet-worker-{index}",
                daemon=False,
            )
            process.start()
            self._procs.append(process)
            obs_events.emit("worker-spawn", pid=process.pid, kind="pool")
        if self._status_server is not None:
            self._status_server.start()
        if self._http_server is not None:
            self._http_server.start()
        obs_events.emit(
            "server-start",
            kind="worker-pool",
            address=self.status_url or self.coordinator_url,
            pid=os.getpid(),
            count=self.jobs,
        )
        return self

    def status(self) -> dict:
        """The pool's live status payload (served to STATUS queries)."""
        alive = [p for p in self._procs if p.is_alive()]
        with self._jobs_served.get_lock():
            served = int(self._jobs_served.value)
        metrics = MetricsRegistry()
        metrics.counters["pool.jobs_served"] = served
        metrics.counters["pool.workers_alive"] = len(alive)
        metrics.counters["pool.workers_configured"] = self.jobs
        return {
            "kind": "worker-pool",
            "coordinator": self.coordinator_url,
            "pid": os.getpid(),
            "uptime": round(time.time() - self.started, 3),
            "workers": {
                "configured": self.jobs,
                "alive": len(alive),
                "pids": [p.pid for p in alive],
            },
            "jobs_served": served,
            "metrics": metrics.to_dict(),
        }

    def join(self) -> None:
        for process in self._procs:
            process.join()

    def drain(self, timeout: float = 10.0) -> dict:
        """Graceful shutdown: let in-flight jobs finish, then stop.

        Sets the drain event (workers exit after their current job
        instead of stealing another) and waits up to ``timeout`` seconds
        total for them; stragglers still running at the deadline are
        terminated. Returns ``{"drained": n, "terminated": m}`` so the
        server entry point can announce how clean the exit was.
        """
        self._drain.set()
        deadline = time.monotonic() + max(0.0, timeout)
        drained = 0
        stragglers = []
        for process in self._procs:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                stragglers.append(process)
            else:
                drained += 1
        for process in stragglers:
            process.terminate()
        for process in stragglers:
            process.join(timeout=5.0)
        self.stop()
        return {"drained": drained, "terminated": len(stragglers)}

    def stop(self) -> None:
        obs_events.emit(
            "server-stop",
            kind="worker-pool",
            address=self.status_url or self.coordinator_url,
            pid=os.getpid(),
        )
        if self._status_server is not None:
            self._status_server.stop()
        if self._http_server is not None:
            self._http_server.stop()
        for process in self._procs:
            if process.is_alive():
                process.terminate()
        for process in self._procs:
            process.join(timeout=5.0)


def serve_workers_forever(
    address: Tuple[str, int],
    *,
    jobs: int = 2,
    token: Optional[str] = None,
    status_address: Optional[Tuple[str, int]] = None,
    http_address: Optional[Tuple[str, int]] = None,
    drain_timeout: float = 10.0,
) -> None:
    """Blocking entry point for ``oolong-check workers serve``.

    SIGTERM and SIGINT (Ctrl-C) both exit through the graceful drain
    path: workers finish their in-flight job (up to ``drain_timeout``
    seconds), the structured ``server-stop`` line is announced with the
    signal and drain outcome, and the function returns normally so the
    CLI exits 0.
    """
    import signal

    pool = WorkerPool(
        address,
        jobs=jobs,
        token=token,
        status_address=status_address,
        http_address=http_address,
    )
    pool.start()
    stop = {"reason": "exit"}

    def _on_term(signum, frame):
        stop["reason"] = "sigterm"
        raise KeyboardInterrupt

    # Handler first, announcement second: the server-start line is the
    # readiness signal scripts key on, and a SIGTERM may land the
    # moment it is printed.
    previous_term = signal.signal(signal.SIGTERM, _on_term)
    record = {
        "event": "server-start",
        "kind": "worker-pool",
        "coordinator": pool.coordinator_url,
        "workers": jobs,
        "pid": os.getpid(),
    }
    if pool.status_url is not None:
        record["address"] = pool.status_url
    if pool.http_url is not None:
        record["http"] = pool.http_url
    outcome = {"drained": 0, "terminated": 0}
    try:
        # Announce inside the try: a signal that lands the instant the
        # readiness line is printed must still drain gracefully.
        obs_events.announce(record)
        pool.join()
    except KeyboardInterrupt:
        if stop["reason"] == "exit":
            stop["reason"] = "sigint"
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        outcome = pool.drain(drain_timeout)
        obs_events.announce(
            {
                "event": "server-stop",
                "kind": "worker-pool",
                "coordinator": pool.coordinator_url,
                "pid": os.getpid(),
                "reason": stop["reason"],
                "drained": outcome["drained"],
                "terminated": outcome["terminated"],
            }
        )


def run_fleet_checks(
    scope: Scope,
    limits: Optional[Limits],
    *,
    options: FleetOptions,
    explain: bool = False,
    cache=None,
    scope_deadline: Optional[float] = None,
    preresolved: Optional[Dict[Tuple[str, int], object]] = None,
) -> FleetOutcome:
    """Assemble a fleet, run the job book through it, return the jobs.

    Raises :class:`FleetUnavailable` if the fleet never assembles (the
    caller then degrades to the local supervisor with ``OL904``); a
    mid-run collapse instead returns an outcome with ``degraded`` set
    and the unfinished jobs verdict-less.
    """
    coordinator = FleetCoordinator(
        scope,
        limits,
        options=options,
        explain=explain,
        cache=cache,
        scope_deadline=scope_deadline,
        preresolved=preresolved,
    )
    coordinator.start()
    return coordinator.run()
