"""A shared result cache served over the fleet transport.

The server wraps the same on-disk :class:`~repro.parallel.cache.ResultCache`
(same SHA-256 key scheme, same checksummed entries, same LRU + max-bytes
eviction) behind a socket, so many checker runs — on one machine or
several — can warm each other's caches.

Integrity is enforced on **both ends** of the wire:

* the server validates an entry (checksum, version, key binding) before
  serving it — a corrupt entry on the server's disk is reported as a
  server-side rejection, never shipped;
* the client re-validates everything it receives through the same
  :func:`~repro.parallel.cache.validate_entry` chain — a frame that was
  damaged in flight (or a lying server) is rejected locally and surfaces
  as the same ``OL903`` warning a corrupt local entry would.

Availability is strictly best-effort: :class:`RemoteCache` raises
:class:`CacheUnavailable` only at *connect* time (the checker then
degrades to the local cache with an ``OL904`` warning); once a run is
underway any transport failure trips a circuit breaker — the remote
cache silently becomes a zero-hit cache for the rest of the run, because
a mid-run cache outage must never fail or stall proving.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import List, Optional, Tuple

from repro.obs import events as obs_events
from repro.obs.httpd import TelemetryHTTPServer
from repro.obs.metrics import MetricsRegistry
from repro.parallel.cache import (
    ResultCache,
    _event_key,
    code_version,
    validate_entry,
)
from repro.parallel.transport import (
    ConnectionClosed,
    FramedSocket,
    FrameError,
    ReadTimeout,
    TransportError,
    close_listener,
    connect,
    parse_address,
    serve,
)

PROTOCOL = "oolong-cache-1"


class CacheUnavailable(Exception):
    """The cache server could not be reached (or rejected the client)."""


class CacheRejected(CacheUnavailable):
    """The cache server answered but refused the handshake.

    Distinct from plain :class:`CacheUnavailable` (nothing listening)
    so scripted health checks can tell "down" from "wrong server or
    token" — the CLI maps the two onto different exit codes.
    """


class CacheServer:
    """Serve one :class:`ResultCache` directory to many clients.

    One thread per connection; the cache itself is guarded by a single
    lock (requests are small and disk-bound, contention is not the
    bottleneck at checker scale).
    """

    def __init__(
        self,
        directory: str,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        *,
        max_bytes: Optional[int] = None,
        token: Optional[str] = None,
        http_address: Optional[Tuple[str, int]] = None,
    ):
        self.cache = ResultCache(directory, max_bytes=max_bytes)
        self.token = token
        self._listener = serve(address)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._http_server: Optional[TelemetryHTTPServer] = None
        if http_address is not None:
            self._http_server = TelemetryHTTPServer(http_address, self.status)
        self.metrics = MetricsRegistry()
        self.started = time.time()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None
        self._gets = 0
        # evict-under-read is interpreted here: on the n-th *served* GET
        # the entry's file is deleted after the read, modelling an
        # eviction racing the reader (fault plans key it by the ordinal
        # of successful reads, so cold misses do not shift the target).
        from repro.testing.faults import supervisor_fault_hits

        self._evict_under_read = supervisor_fault_hits("evict-under-read")

    @property
    def url(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def start(self) -> "CacheServer":
        obs_events.emit(
            "server-start",
            kind="cache-server",
            address=self.url,
            pid=os.getpid(),
            directory=self.cache.directory,
        )
        thread = threading.Thread(
            target=self._accept_loop, name="cache-accept", daemon=True
        )
        thread.start()
        self._accept_thread = thread
        if self._http_server is not None:
            self._http_server.start()
        return self

    @property
    def http_url(self) -> Optional[str]:
        if self._http_server is None:
            return None
        return self._http_server.url

    def stop(self) -> None:
        if not self._stop.is_set():
            obs_events.emit(
                "server-stop",
                kind="cache-server",
                address=self.url,
                pid=os.getpid(),
            )
        self._stop.set()
        close_listener(self._listener)
        if self._http_server is not None:
            self._http_server.stop()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        for thread in self._threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "CacheServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_client,
                args=(FramedSocket(sock),),
                name="cache-client",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_client(self, channel: FramedSocket) -> None:
        try:
            try:
                hello = channel.recv(timeout=5.0)
            except TransportError:
                return
            if (
                not isinstance(hello, tuple)
                or len(hello) != 3
                or hello[0] != "hello"
                or hello[1] != PROTOCOL
            ):
                channel.send(("reject", "bad hello"))
                return
            if self.token is not None and hello[2] != self.token:
                channel.send(("reject", "bad token"))
                return
            channel.send(("welcome", code_version()))
            while not self._stop.is_set():
                try:
                    request = channel.recv(timeout=1.0)
                except ReadTimeout:
                    continue
                except FrameError:
                    continue  # damaged request: drop it, keep the stream
                except ConnectionClosed:
                    return
                if not isinstance(request, tuple) or not request:
                    continue
                kind = request[0]
                if kind == "bye":
                    return
                if kind == "get" and len(request) == 2:
                    self.metrics.inc("cacheserver.gets")
                    channel.send(self._handle_get(request[1]))
                elif kind == "put" and len(request) == 5:
                    _, key, payload, impl, index = request
                    self.metrics.inc("cacheserver.puts")
                    with self._lock:
                        stored = self.cache.store(
                            key, payload, impl=impl, index=index
                        )
                    channel.send(("ok", stored))
                elif kind == "summary":
                    with self._lock:
                        channel.send(("summary", self.cache.summary()))
                elif kind == "status":
                    channel.send(("status", self.status()))
                else:
                    channel.send(("reject", f"unknown request {kind!r}"))
        except TransportError:
            pass
        finally:
            channel.close()

    def _handle_get(self, key: str) -> tuple:
        from repro.testing.faults import record_supervisor_fault

        with self._lock:
            entry, error = self.cache.read_entry(key)
            if entry is not None:
                verdict, reason = validate_entry(entry, key)
                if verdict is None:
                    # Refuse to serve a bad entry; the client records the
                    # server-side reason as its own OL903 rejection.
                    self.cache.rejections.append((key, reason or "rejected"))
                    self.metrics.inc("cacheserver.rejects")
                    obs_events.emit(
                        "cache-reject",
                        key=_event_key(key),
                        reason=reason or "rejected",
                        code="OL903",
                    )
                    return ("miss", reason)
                # The fault ordinal counts *served* reads only, so a
                # plan's hit index is independent of how many cold
                # misses preceded the warm traffic.
                ordinal = self._gets
                self._gets += 1
                if ordinal in self._evict_under_read:
                    record_supervisor_fault("evict-under-read", ordinal, "corrupt")
                    try:
                        os.unlink(self.cache._path(key))
                    except OSError:
                        pass
                    self.cache.evictions += 1
                    self.metrics.inc("cacheserver.evictions")
                    obs_events.emit("cache-evict", key=_event_key(key))
                    return ("miss", None)
                self.cache.hits += 1
                self.metrics.inc("cacheserver.hits")
                obs_events.emit("cache-hit", key=_event_key(key))
                try:
                    os.utime(self.cache._path(key))
                except OSError:
                    pass
                return ("entry", entry)
            self.cache.misses += 1
            self.metrics.inc("cacheserver.misses")
            obs_events.emit("cache-miss", key=_event_key(key))
            return ("miss", error)

    def status(self) -> dict:
        """The server's live status payload (served to STATUS queries)."""
        with self._lock:
            summary = self.cache.summary()
        return {
            "kind": "cache-server",
            "protocol": PROTOCOL,
            "address": self.url,
            "pid": os.getpid(),
            "uptime": round(time.time() - self.started, 3),
            "summary": summary,
            "metrics": self.metrics.to_dict(),
        }


class RemoteCache:
    """A :class:`ResultCache`-shaped client for a :class:`CacheServer`.

    Drop-in for the checker's cache slot: same ``load``/``store``/
    ``summary`` surface, same ``hits``/``misses``/``stores``/
    ``rejections`` counters (counting *this client's* traffic). After a
    mid-run transport failure the breaker trips (``degraded`` holds the
    reason) and every later operation is a local no-op miss.
    """

    def __init__(self, channel: FramedSocket, url: str):
        self._channel = channel
        self.directory = f"remote:{url}"
        self.url = url
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.rejections: List[Tuple[str, str]] = []
        self.degraded: Optional[str] = None
        self._lock = threading.Lock()

    @classmethod
    def connect(
        cls,
        url: str,
        *,
        timeout: float = 5.0,
        token: Optional[str] = None,
    ) -> "RemoteCache":
        """Dial ``HOST:PORT`` and shake hands; raises CacheUnavailable."""
        try:
            address = parse_address(url)
        except ValueError as exc:
            raise CacheUnavailable(str(exc)) from exc
        try:
            channel = connect(address, timeout=timeout)
        except TransportError as exc:
            raise CacheUnavailable(f"cache server {url}: {exc}") from exc
        try:
            channel.send(("hello", PROTOCOL, token))
            reply = channel.recv(timeout=timeout)
        except TransportError as exc:
            channel.close()
            raise CacheUnavailable(f"cache server {url}: {exc}") from exc
        if not (isinstance(reply, tuple) and reply and reply[0] == "welcome"):
            channel.close()
            reason = reply[1] if isinstance(reply, tuple) and len(reply) > 1 else reply
            raise CacheUnavailable(f"cache server {url} rejected client: {reason}")
        return cls(channel, url)

    # ------------------------------------------------------------------

    def _request(self, message: tuple, *, timeout: float = 10.0):
        """One request/response round trip, tripping the breaker on failure."""
        with self._lock:
            if self.degraded is not None:
                return None
            try:
                self._channel.send(message)
                while True:
                    reply = self._channel.recv(timeout=timeout)
                    return reply
            except FrameError as exc:
                # The *response* was damaged in flight. The stream is
                # still aligned, but request/response pairing is lost —
                # safer to degrade than to mis-pair replies.
                self.degraded = f"response frame rejected: {exc}"
                return None
            except TransportError as exc:
                self.degraded = f"cache connection lost: {exc}"
                return None

    def load(self, key: str) -> Optional[dict]:
        reply = self._request(("get", key))
        if not (isinstance(reply, tuple) and reply):
            self.misses += 1
            obs_events.emit("cache-miss", key=_event_key(key), backend="remote")
            return None
        if reply[0] == "miss":
            reason = reply[1] if len(reply) > 1 else None
            self.misses += 1
            if reason:
                self.rejections.append((key, f"server-side: {reason}"))
                obs_events.emit(
                    "cache-reject",
                    key=_event_key(key),
                    reason=f"server-side: {reason}",
                    code="OL903",
                    backend="remote",
                )
            else:
                obs_events.emit(
                    "cache-miss", key=_event_key(key), backend="remote"
                )
            return None
        if reply[0] != "entry" or len(reply) != 2:
            self.misses += 1
            obs_events.emit("cache-miss", key=_event_key(key), backend="remote")
            return None
        verdict, reason = validate_entry(reply[1], key)
        if verdict is None:
            self.misses += 1
            self.rejections.append((key, reason or "entry rejected"))
            obs_events.emit(
                "cache-reject",
                key=_event_key(key),
                reason=reason or "entry rejected",
                code="OL903",
                backend="remote",
            )
            return None
        self.hits += 1
        try:
            size = len(json.dumps(reply[1]))
        except (TypeError, ValueError):
            size = None
        obs_events.emit(
            "cache-hit", key=_event_key(key), backend="remote", bytes=size
        )
        return verdict

    def store(self, key: str, verdict_payload: dict, *, impl: str, index: int) -> bool:
        reply = self._request(("put", key, verdict_payload, impl, index))
        if isinstance(reply, tuple) and len(reply) == 2 and reply[0] == "ok" and reply[1]:
            self.stores += 1
            obs_events.emit(
                "cache-store", key=_event_key(key), impl=impl, backend="remote"
            )
            return True
        return False

    def close(self) -> None:
        with self._lock:
            if self.degraded is None:
                try:
                    self._channel.send(("bye",))
                except TransportError:
                    pass
        self._channel.close()

    def summary(self) -> dict:
        summary = {
            "directory": self.directory,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "rejections": len(self.rejections),
        }
        if self.degraded is not None:
            summary["degraded"] = self.degraded
        return summary


def cache_status(
    url: str, *, token: Optional[str] = None, timeout: float = 5.0
) -> dict:
    """One STATUS round-trip against a running :class:`CacheServer`.

    The cache server answers status natively on its own port (no second
    listener), so this speaks the cache protocol: hello, ``("status",)``,
    bye.
    """
    try:
        address = parse_address(url)
    except ValueError as exc:
        raise CacheUnavailable(str(exc)) from exc
    try:
        channel = connect(address, timeout=timeout)
    except TransportError as exc:
        raise CacheUnavailable(f"cache server {url}: {exc}") from exc
    try:
        channel.send(("hello", PROTOCOL, token))
        reply = channel.recv(timeout=timeout)
        if not (isinstance(reply, tuple) and reply and reply[0] == "welcome"):
            reason = (
                reply[1]
                if isinstance(reply, tuple) and len(reply) > 1
                else reply
            )
            raise CacheRejected(
                f"cache server {url} rejected client: {reason}"
            )
        channel.send(("status",))
        reply = channel.recv(timeout=timeout)
        if not (
            isinstance(reply, tuple) and len(reply) == 2 and reply[0] == "status"
        ):
            raise CacheUnavailable(f"cache server {url}: bad status reply")
        try:
            channel.send(("bye",))
        except TransportError:
            pass
        return reply[1]
    except TransportError as exc:
        raise CacheUnavailable(f"cache server {url}: {exc}") from exc
    finally:
        channel.close()


def serve_cache_forever(
    directory: str,
    address: Tuple[str, int],
    *,
    max_bytes: Optional[int] = None,
    token: Optional[str] = None,
    http_address: Optional[Tuple[str, int]] = None,
) -> None:
    """Blocking entry point for ``oolong-check cache serve``."""
    server = CacheServer(
        directory,
        address,
        max_bytes=max_bytes,
        token=token,
        http_address=http_address,
    )
    server.start()
    record = {
        "event": "server-start",
        "kind": "cache-server",
        "address": server.url,
        "directory": directory,
        "pid": os.getpid(),
    }
    if server.http_url is not None:
        record["http"] = server.http_url
    obs_events.announce(record)
    try:
        while True:
            server._stop.wait(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        obs_events.announce(
            {
                "event": "server-stop",
                "kind": "cache-server",
                "address": server.url,
                "pid": os.getpid(),
            }
        )
