"""A shared result cache served over the fleet transport.

The server wraps the same on-disk :class:`~repro.parallel.cache.ResultCache`
(same SHA-256 key scheme, same checksummed entries, same LRU + max-bytes
eviction) behind a socket, so many checker runs — on one machine or
several — can warm each other's caches.

Integrity is enforced on **both ends** of the wire:

* the server validates an entry (checksum, version, key binding) before
  serving it — a corrupt entry on the server's disk is reported as a
  server-side rejection, never shipped;
* the client re-validates everything it receives through the same
  :func:`~repro.parallel.cache.validate_entry` chain — a frame that was
  damaged in flight (or a lying server) is rejected locally and surfaces
  as the same ``OL903`` warning a corrupt local entry would.

Availability is strictly best-effort: :class:`RemoteCache` raises
:class:`CacheUnavailable` only at *connect* time (the checker then
degrades to the local cache with an ``OL904`` warning); once a run is
underway any transport failure trips a circuit breaker — the remote
cache silently becomes a zero-hit cache, because a mid-run cache outage
must never fail or stall proving. The breaker is *half-open*: after a
trip the client schedules reconnect probes on a jittered exponential
backoff (deterministic per client, see
:func:`repro.parallel.jobs.backoff_delay`) and, when a probe's
re-handshake succeeds, swaps in the fresh connection and resumes
remote traffic — so a cache server restarted mid-run serves the rest
of the run instead of the outage being permanent.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from typing import List, Optional, Tuple

from repro.obs import events as obs_events
from repro.obs.httpd import TelemetryHTTPServer
from repro.obs.metrics import MetricsRegistry
from repro.parallel.cache import (
    ResultCache,
    _event_key,
    code_version,
    validate_entry,
)
from repro.parallel.transport import (
    ConnectionClosed,
    FramedSocket,
    FrameError,
    ReadTimeout,
    TransportError,
    close_listener,
    connect,
    parse_address,
    serve,
)

PROTOCOL = "oolong-cache-1"


class CacheUnavailable(Exception):
    """The cache server could not be reached (or rejected the client)."""


class CacheRejected(CacheUnavailable):
    """The cache server answered but refused the handshake.

    Distinct from plain :class:`CacheUnavailable` (nothing listening)
    so scripted health checks can tell "down" from "wrong server or
    token" — the CLI maps the two onto different exit codes.
    """


class CacheServer:
    """Serve one :class:`ResultCache` directory to many clients.

    One thread per connection; the cache itself is guarded by a single
    lock (requests are small and disk-bound, contention is not the
    bottleneck at checker scale).
    """

    def __init__(
        self,
        directory: str,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        *,
        max_bytes: Optional[int] = None,
        token: Optional[str] = None,
        http_address: Optional[Tuple[str, int]] = None,
    ):
        self.cache = ResultCache(directory, max_bytes=max_bytes)
        self.token = token
        self._listener = serve(address)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._http_server: Optional[TelemetryHTTPServer] = None
        if http_address is not None:
            self._http_server = TelemetryHTTPServer(http_address, self.status)
        self.metrics = MetricsRegistry()
        self.started = time.time()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None
        self._gets = 0
        # evict-under-read is interpreted here: on the n-th *served* GET
        # the entry's file is deleted after the read, modelling an
        # eviction racing the reader (fault plans key it by the ordinal
        # of successful reads, so cold misses do not shift the target).
        from repro.testing.faults import supervisor_fault_hits

        self._evict_under_read = supervisor_fault_hits("evict-under-read")

    @property
    def url(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def start(self) -> "CacheServer":
        obs_events.emit(
            "server-start",
            kind="cache-server",
            address=self.url,
            pid=os.getpid(),
            directory=self.cache.directory,
        )
        thread = threading.Thread(
            target=self._accept_loop, name="cache-accept", daemon=True
        )
        thread.start()
        self._accept_thread = thread
        if self._http_server is not None:
            self._http_server.start()
        return self

    @property
    def http_url(self) -> Optional[str]:
        if self._http_server is None:
            return None
        return self._http_server.url

    def stop(self) -> None:
        if not self._stop.is_set():
            obs_events.emit(
                "server-stop",
                kind="cache-server",
                address=self.url,
                pid=os.getpid(),
            )
        self._stop.set()
        close_listener(self._listener)
        if self._http_server is not None:
            self._http_server.stop()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        for thread in self._threads:
            thread.join(timeout=2.0)

    def drain(self, timeout: float = 10.0) -> dict:
        """Graceful shutdown: stop accepting, let clients finish, stop.

        Closes the listener first (no new connections), then gives
        connected clients up to ``timeout`` seconds to finish their
        in-flight requests and say ``bye``; whoever is still connected
        at the deadline is severed by :meth:`stop`. Returns
        ``{"drained": n, "terminated": m}`` for the stop announcement.
        """
        close_listener(self._listener)
        deadline = time.monotonic() + max(0.0, timeout)
        drained = 0
        stragglers = 0
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                stragglers += 1
            else:
                drained += 1
        self.stop()
        return {"drained": drained, "terminated": stragglers}

    def __enter__(self) -> "CacheServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_client,
                args=(FramedSocket(sock),),
                name="cache-client",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_client(self, channel: FramedSocket) -> None:
        try:
            try:
                hello = channel.recv(timeout=5.0)
            except TransportError:
                return
            if (
                not isinstance(hello, tuple)
                or len(hello) != 3
                or hello[0] != "hello"
                or hello[1] != PROTOCOL
            ):
                channel.send(("reject", "bad hello"))
                return
            if self.token is not None and hello[2] != self.token:
                channel.send(("reject", "bad token"))
                return
            channel.send(("welcome", code_version()))
            while not self._stop.is_set():
                try:
                    request = channel.recv(timeout=1.0)
                except ReadTimeout:
                    continue
                except FrameError:
                    continue  # damaged request: drop it, keep the stream
                except ConnectionClosed:
                    return
                if not isinstance(request, tuple) or not request:
                    continue
                kind = request[0]
                if kind == "bye":
                    return
                if kind == "get" and len(request) == 2:
                    self.metrics.inc("cacheserver.gets")
                    channel.send(self._handle_get(request[1]))
                elif kind == "put" and len(request) == 5:
                    _, key, payload, impl, index = request
                    self.metrics.inc("cacheserver.puts")
                    with self._lock:
                        stored = self.cache.store(
                            key, payload, impl=impl, index=index
                        )
                    channel.send(("ok", stored))
                elif kind == "summary":
                    with self._lock:
                        channel.send(("summary", self.cache.summary()))
                elif kind == "status":
                    channel.send(("status", self.status()))
                else:
                    channel.send(("reject", f"unknown request {kind!r}"))
        except TransportError:
            pass
        finally:
            channel.close()

    def _handle_get(self, key: str) -> tuple:
        from repro.testing.faults import record_supervisor_fault

        with self._lock:
            entry, error = self.cache.read_entry(key)
            if entry is not None:
                verdict, reason = validate_entry(entry, key)
                if verdict is None:
                    # Refuse to serve a bad entry; the client records the
                    # server-side reason as its own OL903 rejection.
                    self.cache.rejections.append((key, reason or "rejected"))
                    self.metrics.inc("cacheserver.rejects")
                    obs_events.emit(
                        "cache-reject",
                        key=_event_key(key),
                        reason=reason or "rejected",
                        code="OL903",
                    )
                    return ("miss", reason)
                # The fault ordinal counts *served* reads only, so a
                # plan's hit index is independent of how many cold
                # misses preceded the warm traffic.
                ordinal = self._gets
                self._gets += 1
                if ordinal in self._evict_under_read:
                    record_supervisor_fault("evict-under-read", ordinal, "corrupt")
                    try:
                        os.unlink(self.cache._path(key))
                    except OSError:
                        pass
                    self.cache.evictions += 1
                    self.metrics.inc("cacheserver.evictions")
                    obs_events.emit("cache-evict", key=_event_key(key))
                    return ("miss", None)
                self.cache.hits += 1
                self.metrics.inc("cacheserver.hits")
                obs_events.emit("cache-hit", key=_event_key(key))
                try:
                    os.utime(self.cache._path(key))
                except OSError:
                    pass
                return ("entry", entry)
            self.cache.misses += 1
            self.metrics.inc("cacheserver.misses")
            obs_events.emit("cache-miss", key=_event_key(key))
            return ("miss", error)

    def status(self) -> dict:
        """The server's live status payload (served to STATUS queries)."""
        with self._lock:
            summary = self.cache.summary()
        return {
            "kind": "cache-server",
            "protocol": PROTOCOL,
            "address": self.url,
            "pid": os.getpid(),
            "uptime": round(time.time() - self.started, 3),
            "summary": summary,
            "metrics": self.metrics.to_dict(),
        }


def _dial(
    url: str, *, timeout: float, token: Optional[str]
) -> FramedSocket:
    """Dial ``HOST:PORT`` and complete the hello/welcome handshake."""
    try:
        address = parse_address(url)
    except ValueError as exc:
        raise CacheUnavailable(str(exc)) from exc
    try:
        channel = connect(address, timeout=timeout)
    except TransportError as exc:
        raise CacheUnavailable(f"cache server {url}: {exc}") from exc
    try:
        channel.send(("hello", PROTOCOL, token))
        reply = channel.recv(timeout=timeout)
    except TransportError as exc:
        channel.close()
        raise CacheUnavailable(f"cache server {url}: {exc}") from exc
    if not (isinstance(reply, tuple) and reply and reply[0] == "welcome"):
        channel.close()
        reason = reply[1] if isinstance(reply, tuple) and len(reply) > 1 else reply
        raise CacheUnavailable(f"cache server {url} rejected client: {reason}")
    return channel


class RemoteCache:
    """A :class:`ResultCache`-shaped client for a :class:`CacheServer`.

    Drop-in for the checker's cache slot: same ``load``/``store``/
    ``summary`` surface, same ``hits``/``misses``/``stores``/
    ``rejections`` counters (counting *this client's* traffic). After a
    mid-run transport failure the breaker trips (``degraded`` holds the
    reason) and operations become local no-op misses — except that each
    operation first checks whether a half-open reconnect probe is due,
    and a successful probe re-handshakes and closes the breaker again
    (``outages``/``reconnects`` count the transitions).
    """

    def __init__(
        self,
        channel: FramedSocket,
        url: str,
        *,
        token: Optional[str] = None,
        timeout: float = 5.0,
        reconnect_backoff: float = 0.5,
    ):
        self._channel = channel
        self.directory = f"remote:{url}"
        self.url = url
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.rejections: List[Tuple[str, str]] = []
        self.degraded: Optional[str] = None
        self._lock = threading.Lock()
        # Half-open breaker state: the credentials to redial with, the
        # (monotonic) time the next probe is allowed, and the attempt
        # counter driving the exponential backoff. ``reconnect_backoff``
        # is the backoff base in seconds — tests shrink it to make the
        # outage-recovery window short.
        self._token = token
        self._timeout = timeout
        self.reconnect_backoff = reconnect_backoff
        self.outages = 0
        self.reconnects = 0
        self._probe_attempt = 0
        self._probe_at: Optional[float] = None

    @classmethod
    def connect(
        cls,
        url: str,
        *,
        timeout: float = 5.0,
        token: Optional[str] = None,
    ) -> "RemoteCache":
        """Dial ``HOST:PORT`` and shake hands; raises CacheUnavailable."""
        channel = _dial(url, timeout=timeout, token=token)
        return cls(channel, url, token=token, timeout=timeout)

    # ------------------------------------------------------------------

    def _trip(self, reason: str) -> None:
        """Open the breaker and schedule the first half-open probe."""
        self.degraded = reason
        self.outages += 1
        self._probe_attempt = 0
        try:
            self._channel.close()
        except Exception:
            pass
        self._schedule_probe()

    def _schedule_probe(self) -> None:
        from repro.parallel.jobs import backoff_delay

        self._probe_at = time.monotonic() + backoff_delay(
            self.reconnect_backoff,
            self._probe_attempt,
            token=f"{self.url}#{self.outages}.{self._probe_attempt}",
        )

    def _maybe_reconnect(self) -> None:
        """One half-open probe, if one is due. Caller holds the lock.

        A failed probe costs at most the (short) probe timeout and
        pushes the next attempt further out; a successful one swaps the
        fresh connection in and closes the breaker.
        """
        if self._probe_at is None or time.monotonic() < self._probe_at:
            return
        try:
            channel = _dial(
                self.url,
                timeout=min(self._timeout, 2.0),
                token=self._token,
            )
        except CacheUnavailable:
            self._probe_attempt += 1
            self._schedule_probe()
            return
        self._channel = channel
        self.degraded = None
        self.reconnects += 1
        self._probe_at = None
        self._probe_attempt = 0
        obs_events.emit(
            "cache-reconnected",
            address=self.url,
            count=self.reconnects,
            backend="remote",
        )

    def _request(self, message: tuple, *, timeout: float = 10.0):
        """One request/response round trip, tripping the breaker on failure."""
        with self._lock:
            if self.degraded is not None:
                self._maybe_reconnect()
                if self.degraded is not None:
                    return None
            try:
                self._channel.send(message)
                while True:
                    reply = self._channel.recv(timeout=timeout)
                    return reply
            except FrameError as exc:
                # The *response* was damaged in flight. The stream is
                # still aligned, but request/response pairing is lost —
                # safer to degrade than to mis-pair replies.
                self._trip(f"response frame rejected: {exc}")
                return None
            except TransportError as exc:
                self._trip(f"cache connection lost: {exc}")
                return None

    def load(self, key: str) -> Optional[dict]:
        reply = self._request(("get", key))
        if not (isinstance(reply, tuple) and reply):
            self.misses += 1
            obs_events.emit("cache-miss", key=_event_key(key), backend="remote")
            return None
        if reply[0] == "miss":
            reason = reply[1] if len(reply) > 1 else None
            self.misses += 1
            if reason:
                self.rejections.append((key, f"server-side: {reason}"))
                obs_events.emit(
                    "cache-reject",
                    key=_event_key(key),
                    reason=f"server-side: {reason}",
                    code="OL903",
                    backend="remote",
                )
            else:
                obs_events.emit(
                    "cache-miss", key=_event_key(key), backend="remote"
                )
            return None
        if reply[0] != "entry" or len(reply) != 2:
            self.misses += 1
            obs_events.emit("cache-miss", key=_event_key(key), backend="remote")
            return None
        verdict, reason = validate_entry(reply[1], key)
        if verdict is None:
            self.misses += 1
            self.rejections.append((key, reason or "entry rejected"))
            obs_events.emit(
                "cache-reject",
                key=_event_key(key),
                reason=reason or "entry rejected",
                code="OL903",
                backend="remote",
            )
            return None
        self.hits += 1
        try:
            size = len(json.dumps(reply[1]))
        except (TypeError, ValueError):
            size = None
        obs_events.emit(
            "cache-hit", key=_event_key(key), backend="remote", bytes=size
        )
        return verdict

    def store(self, key: str, verdict_payload: dict, *, impl: str, index: int) -> bool:
        reply = self._request(("put", key, verdict_payload, impl, index))
        if isinstance(reply, tuple) and len(reply) == 2 and reply[0] == "ok" and reply[1]:
            self.stores += 1
            obs_events.emit(
                "cache-store", key=_event_key(key), impl=impl, backend="remote"
            )
            return True
        return False

    def close(self) -> None:
        with self._lock:
            if self.degraded is None:
                try:
                    self._channel.send(("bye",))
                except TransportError:
                    pass
        self._channel.close()

    def summary(self) -> dict:
        summary = {
            "directory": self.directory,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "rejections": len(self.rejections),
        }
        if self.degraded is not None:
            summary["degraded"] = self.degraded
        if self.outages:
            summary["outages"] = self.outages
            summary["reconnects"] = self.reconnects
        return summary


def cache_status(
    url: str, *, token: Optional[str] = None, timeout: float = 5.0
) -> dict:
    """One STATUS round-trip against a running :class:`CacheServer`.

    The cache server answers status natively on its own port (no second
    listener), so this speaks the cache protocol: hello, ``("status",)``,
    bye.
    """
    try:
        address = parse_address(url)
    except ValueError as exc:
        raise CacheUnavailable(str(exc)) from exc
    try:
        channel = connect(address, timeout=timeout)
    except TransportError as exc:
        raise CacheUnavailable(f"cache server {url}: {exc}") from exc
    try:
        channel.send(("hello", PROTOCOL, token))
        reply = channel.recv(timeout=timeout)
        if not (isinstance(reply, tuple) and reply and reply[0] == "welcome"):
            reason = (
                reply[1]
                if isinstance(reply, tuple) and len(reply) > 1
                else reply
            )
            raise CacheRejected(
                f"cache server {url} rejected client: {reason}"
            )
        channel.send(("status",))
        reply = channel.recv(timeout=timeout)
        if not (
            isinstance(reply, tuple) and len(reply) == 2 and reply[0] == "status"
        ):
            raise CacheUnavailable(f"cache server {url}: bad status reply")
        try:
            channel.send(("bye",))
        except TransportError:
            pass
        return reply[1]
    except TransportError as exc:
        raise CacheUnavailable(f"cache server {url}: {exc}") from exc
    finally:
        channel.close()


def serve_cache_forever(
    directory: str,
    address: Tuple[str, int],
    *,
    max_bytes: Optional[int] = None,
    token: Optional[str] = None,
    http_address: Optional[Tuple[str, int]] = None,
    drain_timeout: float = 10.0,
) -> None:
    """Blocking entry point for ``oolong-check cache serve``.

    SIGTERM and SIGINT (Ctrl-C) both trigger a graceful drain: the
    listener closes immediately (no new clients), connected clients get
    up to ``drain_timeout`` seconds to finish in-flight requests, and
    the final ``server-stop`` announcement records the signal that
    caused the shutdown plus the drain outcome. Exits normally (status
    0) — a signal-driven stop is the *intended* way to end a server.
    """
    server = CacheServer(
        directory,
        address,
        max_bytes=max_bytes,
        token=token,
        http_address=http_address,
    )
    server.start()
    stop = {"reason": "exit"}

    def _on_term(signum, frame):
        stop["reason"] = "sigterm"
        raise KeyboardInterrupt

    # Install the handler *before* announcing server-start: the
    # announcement is the readiness signal scripts wait on, so a
    # SIGTERM may arrive the instant it is printed.
    previous_term = None
    try:
        previous_term = signal.signal(signal.SIGTERM, _on_term)
    except (ValueError, OSError):  # pragma: no cover — non-main thread
        previous_term = None
    record = {
        "event": "server-start",
        "kind": "cache-server",
        "address": server.url,
        "directory": directory,
        "pid": os.getpid(),
    }
    if server.http_url is not None:
        record["http"] = server.http_url
    outcome = {"drained": 0, "terminated": 0}
    try:
        # The announcement is inside the try: a signal that lands the
        # instant the readiness line is printed must still exit through
        # the drain path below.
        obs_events.announce(record)
        while not server._stop.is_set():
            server._stop.wait(3600)
    except KeyboardInterrupt:
        if stop["reason"] == "exit":
            stop["reason"] = "sigint"
    finally:
        if previous_term is not None:
            try:
                signal.signal(signal.SIGTERM, previous_term)
            except (ValueError, OSError):  # pragma: no cover
                pass
        outcome = server.drain(drain_timeout)
        obs_events.announce(
            {
                "event": "server-stop",
                "kind": "cache-server",
                "address": server.url,
                "pid": os.getpid(),
                "reason": stop["reason"],
                "drained": outcome["drained"],
                "terminated": outcome["terminated"],
            }
        )
