"""A crash-safe write-ahead run ledger for resumable checking runs.

The result cache (:mod:`repro.parallel.cache`) makes *re-running* cheap,
but only for the deterministic statuses it is allowed to keep, and only
entry-by-entry: SIGKILL the coordinator mid-run and the report itself —
which verdicts were already decided, in what order, with what stats — is
gone. The run ledger closes that gap. With ``--run-dir DIR`` every
decided verdict is appended to ``DIR/ledger.jsonl`` as one
``verdict-committed`` record *before* the run can observe it in a
report: the line is written, flushed, and ``fsync``'d, so after any
crash the ledger holds exactly the verdicts the run had decided
(modulo at most one torn final line, which the reader skips).

``oolong check --run-dir DIR --resume`` then replays the ledger:

* every record is keyed by the same content hash the result cache uses
  (:func:`repro.parallel.cache.cache_key` — scope interface + impl body
  + limits + code version), so validating a record against the *current*
  scope is a dictionary lookup: an edited interface, changed limits, or
  a version skew simply makes the old key unreachable and the impl is
  re-checked;
* validated verdicts — **all** statuses, including the transient ones
  the cache refuses (timeouts, quarantines), with their error
  diagnostics round-tripped — are preloaded as *preresolved* jobs, the
  same mechanism OL904 fleet degradation uses, so serial, ``-j``, and
  ``--fleet`` resumes all report them without re-proving;
* damage is contained, not fatal: a torn final line, a checksum-failing
  record, or a duplicated record is counted and skipped (surfaced as an
  ``OL905`` warning on stderr), and only a header-level mismatch
  (format or code version skew) discards the whole ledger.

Commits are deduplicated by key on the write side too — a degraded
fleet re-announces its completed jobs through the local supervisor, and
a resumed run re-announces its preloaded verdicts; neither may grow the
ledger.

The coordinator chaos stages (:data:`repro.testing.faults.COORDINATOR_STAGES`)
are interpreted here and in the checker's merge loop: ``kill-coordinator``
and ``kill-during-merge`` exit with ``os._exit(137)`` (modelling
SIGKILL — nothing but fsync'd data survives), ``truncate-ledger-tail``
tears the ledger mid-record, and ``duplicate-commit`` appends a record
twice. ``tests/test_chaos.py`` drives resume differentials through them.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.diagnostics import diagnostic_from_dict
from repro.obs import events as obs_events
from repro.parallel.cache import (
    _checksum,
    _event_key,
    _obligation_from_dict,
    _obligation_to_dict,
    _stats_from_dict,
    cache_key,
    code_version,
)
from repro.parallel.jobs import build_jobs
from repro.testing.faults import record_supervisor_fault, supervisor_fault_hits

if TYPE_CHECKING:
    from repro.oolong.program import Scope
    from repro.prover.core import Limits
    from repro.vcgen.checker import ImplVerdict

#: Bump when the ledger record layout changes; a resume against an older
#: layout then discards the ledger (full recheck) instead of misreading.
LEDGER_FORMAT = 1

#: The ledger file inside a ``--run-dir``.
LEDGER_NAME = "ledger.jsonl"

#: Where a stale ledger is rotated when a fresh (non-resume) run reuses
#: the directory — atomic ``os.replace``, so a crash mid-rotation leaves
#: either the old ledger or the rotated copy, never a mix.
PREVIOUS_NAME = "ledger.prev.jsonl"

#: The exit code of a chaos-killed coordinator (128 + SIGKILL), shared
#: with the tests so they can tell "chaos fired" from a real crash.
CHAOS_EXIT_CODE = 137


def verdict_to_ledger(verdict: "ImplVerdict") -> dict:
    """The ledger projection of a verdict — **every** status.

    Unlike :func:`repro.parallel.cache.verdict_to_payload` this covers
    transient outcomes too (timeouts, quarantines, internal errors) and
    carries the error :class:`~repro.analysis.diagnostics.Diagnostic`:
    a resumed run must reproduce the interrupted run's report verbatim,
    not re-litigate it.
    """
    failed = verdict.failed_obligation
    error = verdict.error
    return {
        "status": verdict.status.value,
        "stats": verdict.stats.to_dict(),
        "failed_obligation": (
            _obligation_to_dict(failed) if failed is not None else None
        ),
        "error": error.to_dict() if error is not None else None,
    }


def ledger_to_verdict(payload: dict, impl, index: int) -> "ImplVerdict":
    """Rehydrate a :func:`verdict_to_ledger` payload."""
    from repro.vcgen.checker import ImplStatus, ImplVerdict

    status = next(s for s in ImplStatus if s.value == payload["status"])
    failed = payload.get("failed_obligation")
    error = payload.get("error")
    return ImplVerdict(
        impl=impl,
        index=index,
        status=status,
        stats=_stats_from_dict(payload.get("stats", {})),
        failed_obligation=(
            _obligation_from_dict(failed) if failed is not None else None
        ),
        error=diagnostic_from_dict(error) if error is not None else None,
    )


class RunLedger:
    """The write-ahead verdict ledger of one ``--run-dir`` checking run."""

    def __init__(
        self,
        run_dir: str,
        scope: "Scope",
        limits: Optional["Limits"],
        *,
        resume: bool = False,
        run_id: Optional[str] = None,
    ):
        self.run_dir = run_dir
        self.path = os.path.join(run_dir, LEDGER_NAME)
        os.makedirs(run_dir, exist_ok=True)

        # The same content keys the result cache uses: recomputing them
        # against the *current* scope is the interface-hash validation —
        # any record whose key no longer exists is stale by definition.
        self.keys: Dict[Tuple[str, int], str] = {}
        self._by_key: Dict[str, Tuple[str, int, object]] = {}
        for job in build_jobs(scope):
            key = cache_key(scope, job.impl, job.impl_index, limits)
            self.keys[(job.proc_name, job.impl_index)] = key
            self._by_key[key] = (job.proc_name, job.impl_index, job.impl)

        #: Verdicts replayed from a prior run, keyed like ``preresolved``.
        self.preloaded: Dict[Tuple[str, int], "ImplVerdict"] = {}
        #: Keys already durable on disk (write-side dedupe).
        self.committed: set = set()
        #: ``(where, reason)`` pairs for every record recovery skipped —
        #: the CLI renders them as OL905 warnings on stderr.
        self.warnings: List[Tuple[str, str]] = []
        #: Why the whole ledger was discarded, if it was (header skew).
        self.discarded: Optional[str] = None
        self.rotated = False
        self.commits = 0  # records this process appended
        self.deduped = 0  # write-side duplicate commits suppressed
        self.stale = 0  # resume records whose key left the scope
        self.skipped = 0  # resume records dropped (torn/corrupt/dup)

        if resume:
            self._load()
            self._trim_partial_line()
        elif os.path.exists(self.path):
            os.replace(self.path, os.path.join(run_dir, PREVIOUS_NAME))
            self.rotated = True

        self._handle = open(self.path, "a", encoding="utf-8")
        self._commit_ordinal = 0
        self._merge_ordinal = 0
        self._append(
            {
                "record": "run-start",
                "ledger_format": LEDGER_FORMAT,
                "code_version": code_version(),
                "run_id": run_id,
                "impls": len(self.keys),
                "resumed": len(self.preloaded),
            }
        )

    # ------------------------------------------------------------------
    # Recovery (resume)
    # ------------------------------------------------------------------

    def _load(self) -> None:
        """Replay an existing ledger into :attr:`preloaded`."""
        if not os.path.exists(self.path):
            return
        records = obs_events.read_journal(
            self.path,
            strict=False,
            on_skip=lambda lineno, reason: self._warn(
                f"{self.path}:{lineno}", reason
            ),
        )
        for record in records:
            kind = record.get("record")
            if kind == "run-start":
                if (
                    record.get("ledger_format") != LEDGER_FORMAT
                    or record.get("code_version") != code_version()
                ):
                    self._discard(
                        f"version skew: ledger written by "
                        f"{record.get('code_version')!r} format "
                        f"{record.get('ledger_format')!r}, current "
                        f"{code_version()!r} format {LEDGER_FORMAT}"
                    )
                    return
                continue
            if kind != "verdict-committed":
                self.skipped += 1
                self._warn(self.path, f"unknown record kind {kind!r}")
                continue
            self._replay(record)

    def _replay(self, record: dict) -> None:
        payload = record.get("verdict")
        key = record.get("key")
        if not isinstance(payload, dict) or not isinstance(key, str):
            self.skipped += 1
            self._warn(self.path, "malformed verdict-committed record")
            return
        if record.get("checksum") != _checksum(payload):
            self.skipped += 1
            self._warn(
                self.path,
                f"checksum mismatch on record for impl "
                f"{record.get('impl')!r} (corrupted entry)",
            )
            return
        if key not in self._by_key:
            # Interface, impl body, limits, or code version changed
            # since the record was written: re-check, don't replay.
            self.stale += 1
            return
        if key in self.committed:
            self.skipped += 1
            self._warn(
                self.path,
                f"duplicate record for impl {record.get('impl')!r} "
                f"(deduplicated)",
            )
            return
        proc_name, index, impl = self._by_key[key]
        try:
            verdict = ledger_to_verdict(payload, impl, index)
        except Exception as error:
            self.skipped += 1
            self._warn(
                self.path,
                f"unreadable verdict for impl {proc_name!r}: {error}",
            )
            return
        self.preloaded[(proc_name, index)] = verdict
        self.committed.add(key)

    def _trim_partial_line(self) -> None:
        """Drop a torn final line so appended records start clean.

        Without this, appending the resume header to a file whose last
        line lacks its newline would *concatenate* the two — turning
        recoverable crash debris into a genuinely corrupt record.
        """
        if self.discarded is not None or not os.path.exists(self.path):
            return
        try:
            with open(self.path, "rb+") as handle:
                data = handle.read()
                if not data or data.endswith(b"\n"):
                    return
                cut = data.rfind(b"\n") + 1
                handle.truncate(cut)
        except OSError:
            pass  # the append below will surface a real I/O problem

    def _warn(self, where: str, reason: str) -> None:
        self.warnings.append((where, reason))
        obs_events.emit("ledger-skip", reason=reason, code="OL905")

    def _discard(self, reason: str) -> None:
        """Give up on the whole ledger: rotate it aside, recheck all."""
        self.discarded = reason
        self.preloaded.clear()
        self.committed.clear()
        self.stale = 0
        self.skipped = 0
        self.warnings = [(self.path, reason)]
        os.replace(self.path, os.path.join(self.run_dir, PREVIOUS_NAME))
        self.rotated = True

    # ------------------------------------------------------------------
    # Committing
    # ------------------------------------------------------------------

    def commit(self, verdict: "ImplVerdict", *, preresolved: bool = False) -> None:
        """Durably append one decided verdict (write + flush + fsync).

        Idempotent per key: re-announced verdicts (fleet degradation,
        resume preloads) are suppressed, so the ledger carries one
        record per implementation no matter how many times a backend
        reports it.
        """
        key = self.keys.get((verdict.impl.name, verdict.index))
        if key is None:
            return  # not a scope impl (cannot happen via emit_impl_checked)
        if key in self.committed:
            self.deduped += 1
            return
        payload = verdict_to_ledger(verdict)
        record = {
            "record": "verdict-committed",
            "key": key,
            "impl": verdict.impl.name,
            "index": verdict.index,
            "verdict": payload,
            "checksum": _checksum(payload),
        }
        ordinal = self._commit_ordinal
        self._commit_ordinal += 1
        duplicate = supervisor_fault_hits("duplicate-commit").get(ordinal)
        self._append(record, times=2 if duplicate is not None else 1)
        if duplicate is not None:
            record_supervisor_fault("duplicate-commit", ordinal, "corrupt")
        self.committed.add(key)
        self.commits += 1
        obs_events.emit(
            "ledger-commit",
            impl=verdict.impl.name,
            index=verdict.index,
            status=verdict.status.value,
            key=_event_key(key),
        )
        torn = supervisor_fault_hits("truncate-ledger-tail").get(ordinal)
        if torn is not None:
            record_supervisor_fault("truncate-ledger-tail", ordinal, "corrupt")
            self._truncate_tail()
        kill = supervisor_fault_hits("kill-coordinator").get(ordinal)
        if kill is not None:
            record_supervisor_fault("kill-coordinator", ordinal, "raise")
            os._exit(CHAOS_EXIT_CODE)

    def _append(self, record: dict, times: int = 1) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        self._handle.write(line * times)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _truncate_tail(self) -> None:
        """Chop the last record mid-line (simulated torn write)."""
        self._handle.flush()
        size = self._handle.tell()
        self._handle.truncate(max(0, size - 20))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def merge_chaos_point(self) -> None:
        """The ``kill-during-merge`` injection point.

        Called by the checker once per job merged into the report: the
        verdict is already durable in the ledger, but not yet reported —
        the window where a crash loses the report and only a resume can
        recover it.
        """
        ordinal = self._merge_ordinal
        self._merge_ordinal += 1
        kill = supervisor_fault_hits("kill-during-merge").get(ordinal)
        if kill is not None:
            record_supervisor_fault("kill-during-merge", ordinal, "raise")
            os._exit(CHAOS_EXIT_CODE)

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def summary(self) -> dict:
        summary = {
            "path": self.path,
            "impls": len(self.keys),
            "commits": self.commits,
            "resumed": len(self.preloaded),
            "deduped": self.deduped,
            "stale": self.stale,
            "skipped": self.skipped,
        }
        if self.rotated:
            summary["rotated"] = True
        if self.discarded is not None:
            summary["discarded"] = self.discarded
        return summary
