"""Length-prefixed, checksummed message framing over sockets.

Every message between the fleet coordinator, its workers, and the cache
server travels as one *frame*:

====== ======= ==========================================================
bytes  field   meaning
====== ======= ==========================================================
0–3    magic   ``b"OLNG"`` — frame alignment marker
4–7    length  payload size, big-endian uint32 (bounded by MAX_FRAME)
8–15   check   first 8 bytes of ``sha256(payload)``, big-endian uint64
16–    payload the pickled message
====== ======= ==========================================================

The checksum is an *integrity* check, not an authenticity one: it
catches truncation, bit rot, and the ``corrupt-frame`` fault, all of
which must surface as a recoverable :class:`FrameError` rather than a
mis-parsed message. On a framing violation the receiver *resynchronizes*:
it scans the buffered stream for the next magic marker and reports the
skipped garbage, so one corrupt frame costs one message, not the
connection. If no marker appears within a bounded window the stream is
declared unrecoverable and the peer dropped (:class:`ConnectionClosed`).

Payloads are pickled — the peers are trusted cooperating processes of
the same checker installation (the same trust model as the fork-pipe
supervisor this generalizes), and verdicts/AST nodes are already
pickle-shaped from the PR-5 worker protocol. An optional shared token in
the hello message keeps *accidental* cross-talk out; it is not an
authentication scheme.

:class:`FramePolicy` is the deterministic fault hook: the coordinator
threads one through its outbound side so seeded plans can drop, delay,
or corrupt the n-th frame on the wire (see
:data:`repro.testing.faults.FLEET_STAGES`).
"""

from __future__ import annotations

import hashlib
import pickle
import socket
import struct
import threading
import time
from typing import Any, Callable, Optional, Tuple

from repro.obs import events as obs_events

MAGIC = b"OLNG"
HEADER = struct.Struct(">4sIQ")
#: Hard cap on a single payload. Large enough for a pickled scope plus
#: grafted span trees, small enough that a corrupted length field cannot
#: make the receiver allocate unboundedly.
MAX_FRAME = 64 * 1024 * 1024
#: How many bytes of garbage the resync scan will chew through before
#: giving the stream up as unrecoverable.
MAX_RESYNC = 4 * MAX_FRAME


class TransportError(Exception):
    """Base class for framing-layer failures."""


class ConnectionClosed(TransportError):
    """The peer is gone (EOF, reset, or an unrecoverable stream)."""


class StatusRejected(TransportError):
    """The status server answered but refused the handshake.

    Distinct from :class:`ConnectionClosed` (nothing listening) so
    scripted health checks can tell "down" from "wrong server or
    token" — the CLI maps the two onto different exit codes.
    """


class FrameError(TransportError):
    """One frame was rejected (bad checksum, bad length, garbage bytes)
    but the stream was resynchronized — the caller may simply ``recv``
    again for the next frame."""


class ReadTimeout(TransportError):
    """No complete frame arrived within the caller's deadline."""


def checksum64(payload: bytes) -> int:
    """The 64-bit integrity check carried in every frame header."""
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def encode_frame(message: Any) -> bytes:
    """Pickle ``message`` and wrap it in a frame header."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME:
        raise TransportError(
            f"message of {len(payload)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return HEADER.pack(MAGIC, len(payload), checksum64(payload)) + payload


def parse_address(spec: str) -> Tuple[str, int]:
    """Parse ``host:port`` (or ``:port`` / bare ``port``) into a pair."""
    text = spec.strip()
    if text.startswith("tcp://"):
        text = text[len("tcp://"):]
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "", text
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad address {spec!r}: expected HOST:PORT with a numeric port"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"bad address {spec!r}: port out of range")
    return host, port


class FramePolicy:
    """Deterministic outbound-frame faults (drop / delay / corrupt).

    Interprets the active :class:`~repro.testing.faults.FaultPlan`'s
    ``drop-frame`` / ``delay-frame`` / ``corrupt-frame`` stages against a
    single global ordinal of frames sent through sockets carrying this
    policy — the coordinator installs one policy across all its worker
    connections, so "corrupt frame #3" names the third frame the
    coordinator puts on *any* wire, independent of which worker it goes
    to.
    """

    def __init__(self):
        from repro.testing.faults import supervisor_fault_hits

        self._drop = supervisor_fault_hits("drop-frame")
        self._delay = supervisor_fault_hits("delay-frame")
        self._corrupt = supervisor_fault_hits("corrupt-frame")
        self._lock = threading.Lock()
        self._ordinal = 0

    def apply(self, frame: bytes) -> Optional[bytes]:
        """Transform one outbound frame; ``None`` means "do not send"."""
        from repro.testing.faults import record_supervisor_fault

        with self._lock:
            ordinal = self._ordinal
            self._ordinal += 1
        if ordinal in self._drop:
            record_supervisor_fault("drop-frame", ordinal, "drop")
            return None
        if ordinal in self._delay:
            fault = self._delay[ordinal]
            record_supervisor_fault("delay-frame", ordinal, "delay")
            time.sleep(fault.delay or 0.01)
        if ordinal in self._corrupt:
            record_supervisor_fault("corrupt-frame", ordinal, "corrupt")
            # Flip payload bytes but keep the header intact: the frame
            # stays aligned on the wire, so the receiver must detect the
            # damage by checksum, reject the frame, and keep the stream.
            header, payload = frame[: HEADER.size], frame[HEADER.size :]
            mangled = bytes(b ^ 0xFF for b in payload[:16]) + payload[16:]
            return header + mangled
        return frame


class FramedSocket:
    """A message-oriented wrapper around one connected stream socket.

    ``send`` and ``recv`` are each locked, so one writer thread and one
    reader thread may share the object (the fleet's usage pattern);
    concurrent senders serialize cleanly.
    """

    def __init__(self, sock: socket.socket, policy: Optional[FramePolicy] = None):
        self.sock = sock
        self.policy = policy
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._pending = b""
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # e.g. AF_UNIX

    # -- sending ---------------------------------------------------------

    def send(self, message: Any) -> bool:
        """Frame and send one message; False if a fault dropped it."""
        frame = encode_frame(message)
        if self.policy is not None:
            applied = self.policy.apply(frame)
            if applied is None:
                return False
            frame = applied
        with self._send_lock:
            try:
                self.sock.sendall(frame)
            except (OSError, ValueError) as exc:
                raise ConnectionClosed(f"send failed: {exc}") from exc
        return True

    # -- receiving -------------------------------------------------------

    def recv(self, timeout: Optional[float] = None) -> Any:
        """Receive one message.

        Raises :class:`ReadTimeout` if no complete frame arrives in
        ``timeout`` seconds, :class:`FrameError` if a frame was rejected
        (stream already resynchronized — call again), and
        :class:`ConnectionClosed` on EOF or an unrecoverable stream.
        """
        with self._recv_lock:
            deadline = None if timeout is None else time.monotonic() + timeout
            header = self._recv_exact(HEADER.size, deadline)
            magic, length, expected = HEADER.unpack(header)
            if magic != MAGIC or length > MAX_FRAME:
                self._resync(deadline)
                raise FrameError(
                    "frame header rejected "
                    f"(magic={magic!r}, length={length}); resynchronized"
                )
            payload = self._recv_exact(length, deadline)
            if checksum64(payload) != expected:
                # Header framed correctly, so the stream is still aligned:
                # no resync needed, just reject the damaged message.
                raise FrameError("frame checksum mismatch; frame discarded")
            try:
                return pickle.loads(payload)
            except Exception as exc:
                raise FrameError(f"frame payload undecodable: {exc}") from exc

    def _recv_exact(self, count: int, deadline: Optional[float]) -> bytes:
        """Consume exactly ``count`` bytes from pending + the socket."""
        while len(self._pending) < count:
            try:
                if deadline is None:
                    self.sock.settimeout(None)
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ReadTimeout("read deadline exceeded")
                    self.sock.settimeout(remaining)
                chunk = self.sock.recv(65536)
            except socket.timeout:
                raise ReadTimeout("read deadline exceeded") from None
            except (OSError, ValueError) as exc:
                raise ConnectionClosed(f"recv failed: {exc}") from exc
            if not chunk:
                raise ConnectionClosed("peer closed the connection")
            self._pending += chunk
        data, self._pending = self._pending[:count], self._pending[count:]
        return data

    def _resync(self, deadline: Optional[float]) -> None:
        """Scan forward for the next magic marker, bounded by MAX_RESYNC."""
        skipped = 0
        while True:
            index = self._pending.find(MAGIC)
            if index >= 0:
                skipped += index
                self._pending = self._pending[index:]
                obs_events.emit("frame-resync", skipped=skipped)
                return
            # Keep a magic-sized tail in case the marker straddles reads.
            keep = len(MAGIC) - 1
            skipped += max(len(self._pending) - keep, 0)
            self._pending = self._pending[-keep:] if keep else b""
            if skipped > MAX_RESYNC:
                raise ConnectionClosed(
                    f"no frame marker within {skipped} bytes; stream unrecoverable"
                )
            try:
                data = self._recv_exact(len(self._pending) + 1, deadline)
            except ReadTimeout:
                raise ConnectionClosed(
                    "stream desynchronized and no marker arrived in time"
                ) from None
            # _recv_exact removed what it returned from the buffer; put
            # it back in stream order so the scan sees every byte.
            self._pending = data + self._pending

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


def connect(
    address: Tuple[str, int],
    *,
    timeout: float = 5.0,
    policy: Optional[FramePolicy] = None,
) -> FramedSocket:
    """Dial ``address`` and wrap the connection."""
    try:
        sock = socket.create_connection(address, timeout=timeout)
    except OSError as exc:
        raise ConnectionClosed(f"connect to {address} failed: {exc}") from exc
    sock.settimeout(None)
    return FramedSocket(sock, policy=policy)


def serve(address: Tuple[str, int], *, backlog: int = 64) -> socket.socket:
    """Bind a listening socket at ``address`` (port 0 = ephemeral)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        sock.bind(address)
        sock.listen(backlog)
    except OSError as exc:
        sock.close()
        raise ConnectionClosed(f"bind to {address} failed: {exc}") from exc
    return sock


# ----------------------------------------------------------------------
# Clock alignment
#
# Each process's span timestamps live in its own ``perf_counter`` domain
# (an arbitrary epoch). A worker ships one (wall, perf) sample in its
# registration hello; the coordinator compares it against its own pair
# to estimate the additive offset mapping the worker's perf domain into
# the coordinator's, assuming wall clocks agree (exact on one host,
# NTP-accurate across machines). ``Tracer.absorb(offset=...)`` then
# rebases shipped spans so a fleet run over remote pools assembles into
# one coherent trace.


def clock_sample() -> Tuple[float, float]:
    """This process's ``(time.time(), time.perf_counter())`` pair."""
    return (time.time(), time.perf_counter())


def clock_offset(sample: Tuple[float, float]) -> float:
    """Seconds to add to the sampler's perf domain to land in ours.

    For a remote perf timestamp ``p``, ``p + clock_offset(sample)`` is
    the local ``perf_counter`` value at (approximately) the same true
    instant. The estimate is off by the network latency between the
    sample and its receipt plus any wall-clock skew; consumers clamp.
    """
    remote_wall, remote_perf = sample
    return (time.perf_counter() - time.time()) - (remote_perf - remote_wall)


STATUS_PROTOCOL = "oolong-status-1"


class StatusServer:
    """A tiny framed-socket status endpoint for long-running servers.

    Wraps a caller-supplied ``snapshot`` callable (returning a plain
    dict) behind the same frame protocol everything else speaks. The
    worker pool mounts one beside its coordinator rendezvous; the cache
    server answers status natively on its own port instead. Queries are
    read-only and served on daemon threads, so a slow or hostile client
    can never wedge the server it is observing.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        snapshot: Callable[[], dict],
        *,
        token: Optional[str] = None,
    ):
        self.snapshot = snapshot
        self.token = token
        self._listener = serve(address)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)

    def start(self) -> "StatusServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        close_listener(self._listener)
        self._thread.join(timeout=1.0)

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_client,
                args=(FramedSocket(sock),),
                daemon=True,
            ).start()

    def _serve_client(self, channel: "FramedSocket") -> None:
        try:
            hello = channel.recv(timeout=5.0)
            if (
                not isinstance(hello, tuple)
                or len(hello) != 3
                or hello[0] != "hello"
                or hello[1] != STATUS_PROTOCOL
                or hello[2] != self.token
            ):
                channel.send(("error", "bad hello"))
                return
            channel.send(("welcome", STATUS_PROTOCOL))
            while True:
                try:
                    request = channel.recv(timeout=30.0)
                except FrameError:
                    continue
                except (ReadTimeout, ConnectionClosed):
                    return
                if not isinstance(request, tuple) or not request:
                    channel.send(("error", "bad request"))
                elif request[0] == "status":
                    channel.send(("status", self.snapshot()))
                elif request[0] == "bye":
                    return
                else:
                    channel.send(("error", f"unknown request {request[0]!r}"))
        except (TransportError, OSError):
            pass
        finally:
            channel.close()


def query_status(
    address: Tuple[str, int],
    *,
    token: Optional[str] = None,
    timeout: float = 5.0,
) -> dict:
    """One status round-trip against a :class:`StatusServer`."""
    channel = connect(address, timeout=timeout)
    try:
        channel.send(("hello", STATUS_PROTOCOL, token))
        reply = channel.recv(timeout=timeout)
        if not (isinstance(reply, tuple) and reply and reply[0] == "welcome"):
            raise StatusRejected(f"status handshake refused: {reply!r}")
        channel.send(("status",))
        reply = channel.recv(timeout=timeout)
        if not (
            isinstance(reply, tuple) and len(reply) == 2 and reply[0] == "status"
        ):
            raise TransportError(f"bad status reply: {reply!r}")
        try:
            channel.send(("bye",))
        except TransportError:
            pass
        return reply[1]
    finally:
        channel.close()


def close_listener(sock: socket.socket) -> None:
    """Close a listening socket so a blocked ``accept()`` wakes *now*.

    A plain ``close()`` does not interrupt another thread already parked
    in ``accept()`` — it stays in the kernel until a peer connects, and
    every shutdown pays the accept-thread join timeout in full. A
    ``shutdown(SHUT_RDWR)`` first wakes the accept immediately (EINVAL on
    Linux, caught by the accept loop's OSError handler).
    """
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
