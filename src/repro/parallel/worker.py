"""The process-isolated proof worker.

A worker is a long-lived child process owning one end of a duplex pipe.
It receives :class:`JobRequest` messages, proves the named
implementation with the same per-implementation isolation the serial
driver uses (:func:`repro.vcgen.checker._check_impl`), and sends a
:class:`JobResult` back. Everything observable rides along: the
verdict, the advisory explain-crash diagnostic, the worker's span tree
(re-rooted under the supervisor's job span at merge time), and its
metrics registry.

Liveness is reported out-of-band: a daemon thread stamps the current
monotonic time into a shared double at a fixed interval. The supervisor
reads the stamp to distinguish a worker that is *busy* (heartbeat fresh,
job slow → enforce the job timeout) from one that is *gone* (heartbeat
stale → treat as worker death and retry the job elsewhere).

Injected faults (``worker-kill``/``worker-hang``) arrive as part of the
job request — decided by the supervisor from the active
:class:`repro.testing.faults.FaultPlan`, so fault placement is keyed by
deterministic job index, never by which worker happened to pick the job
up. ``kill`` exits the process hard (``os._exit``, modelling SIGKILL by
the OOM killer); ``hang`` stops the heartbeat thread *and* never
returns, modelling a frozen interpreter that no cooperative deadline
can observe.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.prover.core import Limits

#: Exit code used by the ``worker-kill`` injected fault (distinguishable
#: from genuine crashes in tests and logs).
KILL_EXIT_CODE = 113

#: Seconds between heartbeat stamps written by the worker's beat thread.
HEARTBEAT_INTERVAL = 0.05


@dataclass(frozen=True)
class JobRequest:
    """One per-implementation proof job, as sent over the pipe."""

    job_id: int
    proc_name: str
    #: Index among the implementations of ``proc_name`` (the serial
    #: driver's ``enumerate`` index — part of the verdict's identity).
    impl_index: int
    attempt: int = 0
    limits: Optional[Limits] = None
    explain: bool = False
    #: Supervisor-decided fault injection: None, "kill", or "hang".
    inject: Optional[str] = None


@dataclass
class JobResult:
    """What a worker sends back for one completed job."""

    job_id: int
    attempt: int
    #: Pickled-through verdict (``ImplVerdict``); the supervisor swaps
    #: in its own ``ImplDecl`` object on receipt so report identities
    #: match the parent's scope exactly.
    verdict: Any = None
    #: Advisory OL900 warning when the explainer crashed (see
    #: ``_check_impl``); the verdict itself survived.
    explain_crash: Any = None
    #: The worker-side span tree for this job (``Tracer.export_spans``).
    spans: List[dict] = field(default_factory=list)
    #: The worker-side metrics registry (``MetricsRegistry.to_dict``).
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Set when the job raised outside the verdict isolation layer
    #: (should not happen; surfaces as INTERNAL_ERROR parent-side).
    failure: Optional[str] = None


def _beat(heartbeat, stop_event: threading.Event, supervisor_pid: int) -> None:
    """Stamp liveness — and watch for an orphaned worker.

    If the supervisor is SIGKILLed, its ``daemon=True`` cleanup never
    runs (that is atexit machinery), and pipe EOF is not reliable either:
    forked siblings inherit copies of the parent-side pipe ends, keeping
    the write end open. The only robust orphan signal is the parent pid
    changing (re-parented to init), so the beat thread doubles as the
    orphan watchdog and hard-exits the process.
    """
    while not stop_event.is_set():
        heartbeat.value = time.monotonic()
        if os.getppid() != supervisor_pid:
            os._exit(0)
        stop_event.wait(HEARTBEAT_INTERVAL)


def worker_main(
    conn, heartbeat, scope, worker_id: int, supervisor_pid: Optional[int] = None
) -> None:
    """The worker process entry point.

    ``scope`` is the already-desugared scope (inherited via fork, or
    pickled once at spawn); every job only names an implementation
    inside it. The loop exits on EOF, an explicit ``None`` sentinel, or
    the death of the supervisor process (see :func:`_beat`).
    ``supervisor_pid`` is recorded by the supervisor itself at spawn
    time, so the orphan watchdog works even if the supervisor dies
    before this process first runs.
    """
    # A forked child inherits the parent's ambient tracer, event journal
    # and fault plan; all are parent-side concerns (spans are shipped
    # explicitly, supervisor faults are interpreted in the parent, and
    # the journal records the supervisor's view), so drop them.
    from repro.obs import events as events_module
    from repro.obs import tracer as tracer_module
    from repro.testing import faults as faults_module

    tracer_module._ACTIVE = None
    events_module._ACTIVE = None
    events_module._VERDICT_SINK = None
    faults_module._ACTIVE = None

    stop_event = threading.Event()
    beat_thread = threading.Thread(
        target=_beat,
        args=(
            heartbeat,
            stop_event,
            os.getppid() if supervisor_pid is None else supervisor_pid,
        ),
        daemon=True,
    )
    beat_thread.start()

    try:
        while True:
            try:
                request = conn.recv()
            except (EOFError, OSError):
                break
            if request is None:
                break
            result = _run_job(scope, request, stop_event)
            if result is None:
                continue
            try:
                conn.send(result)
            except (OSError, ValueError, TypeError) as error:
                # The payload would not cross the pipe (e.g. an
                # unpicklable object smuggled into an explanation).
                # Degrade: resend without the rich attachments.
                fallback = JobResult(
                    job_id=request.job_id,
                    attempt=request.attempt,
                    failure=(
                        "result not transportable: "
                        f"{type(error).__name__}: {error}"
                    ),
                )
                try:
                    conn.send(fallback)
                except (OSError, ValueError):
                    break
    finally:
        stop_event.set()


def _run_job(scope, request: JobRequest, stop_event) -> Optional[JobResult]:
    from repro.obs import Tracer, tracing
    from repro.vcgen.checker import _check_impl

    if request.inject == "kill":
        os._exit(KILL_EXIT_CODE)
    if request.inject == "hang":
        # An uncooperative freeze: the heartbeat stops and the job never
        # completes. The supervisor must notice via the stale heartbeat
        # (or the hard job timeout) and SIGKILL this process.
        stop_event.set()
        while True:
            time.sleep(3600)

    impls = scope.impls_of(request.proc_name)
    if request.impl_index >= len(impls):
        return JobResult(
            job_id=request.job_id,
            attempt=request.attempt,
            failure=(
                f"no implementation {request.proc_name!r}"
                f"#{request.impl_index} in worker scope"
            ),
        )
    impl = impls[request.impl_index]

    tracer = Tracer()
    try:
        with tracing(tracer):
            verdict, explain_crash = _check_impl(
                scope,
                impl,
                request.impl_index,
                request.limits,
                None,  # the scope deadline is enforced by the supervisor
                request.explain,
            )
        return JobResult(
            job_id=request.job_id,
            attempt=request.attempt,
            verdict=verdict,
            explain_crash=explain_crash,
            spans=tracer.export_spans(),
            metrics=tracer.metrics.to_dict(),
        )
    except Exception as error:  # pragma: no cover — _check_impl isolates
        import traceback

        return JobResult(
            job_id=request.job_id,
            attempt=request.attempt,
            failure="".join(
                traceback.format_exception(
                    type(error), error, error.__traceback__
                )
            ),
        )


#: Public name for the job executor: the fleet worker
#: (:func:`repro.parallel.fleet.fleet_worker_main`) runs the exact same
#: code per job as a pipe worker, so injected ``kill``/``hang`` faults
#: and verdict semantics are identical across transports.
run_job = _run_job
